// Chaos tests: arm each fault-injection site in turn and prove that the
// failure surfaces as a clean Status identifying the failed stage — never
// a crash, never a half-built result handed out as success.

#include <string>

#include <gtest/gtest.h>

#include "extsort/extsort.h"
#include "sxnm/config_xml.h"
#include "sxnm/detector.h"
#include "util/fault_injection.h"
#include "xml/parser.h"

namespace sxnm::core {
namespace {

using util::ScopedFault;
using util::StatusCode;

constexpr const char* kMovies = R"xml(
<db>
  <movies>
    <movie year="1999"><title>The Matrix</title></movie>
    <movie year="1999"><title>The Matrxi</title></movie>
    <movie year="1998"><title>Mask of Zorro</title></movie>
    <movie year="2001"><title>Ocean Storm</title></movie>
  </movies>
</db>
)xml";

constexpr const char* kConfigXml = R"xml(
<sxnm-config>
  <candidate name="movie" path="db/movies/movie" window="4">
    <paths><path id="1" rel="title/text()"/><path id="2" rel="@year"/></paths>
    <od><entry pid="1" relevance="0.8"/><entry pid="2" relevance="0.2"/></od>
    <keys>
      <key><part pid="1" pattern="K1-K5"/></key>
      <key><part pid="2" pattern="D3,D4"/></key>
    </keys>
  </candidate>
</sxnm-config>
)xml";

Config LoadConfig() {
  auto config = ConfigFromXmlString(kConfigXml);
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  return std::move(config).value();
}

class ChaosTest : public ::testing::Test {
 protected:
  // Belt and braces: no fault may leak into or out of a chaos test.
  void SetUp() override { util::FaultInjector::Instance().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Instance().DisarmAll(); }
};

TEST_F(ChaosTest, XmlNodeFaultFailsParseCleanly) {
  ScopedFault fault("xml.node", 3);  // fail allocating the third DOM node
  auto doc = xml::Parse(kMovies);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(doc.status().message().find("xml.node"), std::string::npos);
}

TEST_F(ChaosTest, XmlNodeFaultIsHardEvenInRecoverMode) {
  ScopedFault fault("xml.node", 3);
  auto recovered = xml::ParseRecovering(kMovies);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ChaosTest, ConfigLoadFaultFailsCleanly) {
  ScopedFault fault("config.load");
  auto config = ConfigFromXmlString(kConfigXml);
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kInternal);
  EXPECT_NE(config.status().message().find("configuration load"),
            std::string::npos);
}

TEST_F(ChaosTest, KeyGenerationRowFaultIdentifiesRowAndCandidate) {
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(LoadConfig());
  ScopedFault fault("kg.row", 2);  // fail on the second GK row (index 1)
  auto result = detector.Run(doc.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("key generation"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("row 1"), std::string::npos);
  EXPECT_NE(result.status().message().find("'movie'"), std::string::npos);
}

TEST_F(ChaosTest, DetectorPassFaultIdentifiesPassAndCandidate) {
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(LoadConfig());
  ScopedFault fault("detector.pass", 2);  // fail the second window pass
  auto result = detector.Run(doc.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("window pass"), std::string::npos);
  EXPECT_NE(result.status().message().find("movie"), std::string::npos);
}

TEST_F(ChaosTest, TransitiveClosureFaultFailsCleanly) {
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(LoadConfig());
  ScopedFault fault("tc.closure");
  auto result = detector.Run(doc.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("transitive closure"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("'movie'"), std::string::npos);
}

TEST_F(ChaosTest, EveryFaultSiteLeavesDetectorReusable) {
  // After any injected failure the same Detector must run clean again —
  // no poisoned state survives the error path.
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(LoadConfig());
  for (const char* site : {"kg.row", "detector.pass", "tc.closure"}) {
    {
      ScopedFault fault(site);
      EXPECT_FALSE(detector.Run(doc.value()).ok()) << site;
    }
    auto clean = detector.Run(doc.value());
    ASSERT_TRUE(clean.ok()) << site << ": " << clean.status().ToString();
    EXPECT_FALSE(clean->degraded()) << site;
  }
}

TEST_F(ChaosTest, ExtSortSpillFaultFailsCleanlyAndDetectorStaysReusable) {
  // With a memory budget every pass order goes through the external
  // sorter; an injected spill failure (ENOSPC on the run file) must
  // surface as kResourceExhausted naming the spill — and the same
  // detector must run clean (and still spill) afterwards.
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Config config = LoadConfig();
  config.set_memory_budget_bytes(1);  // every row over budget: spill per Add
  config.set_shards(2);
  Detector detector(config);
  {
    ScopedFault fault(extsort::kSpillFaultSite);
    auto result = detector.Run(doc.value());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(result.status().message().find("spill"), std::string::npos);
  }
  auto clean = detector.Run(doc.value());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_FALSE(clean->degraded());
}

TEST_F(ChaosTest, FaultInParallelKeyGenerationPropagatesDeterministically) {
  // With several worker threads, the error of the lowest-index failing
  // row is the one reported, regardless of scheduling.
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Config config = LoadConfig();
  config.set_num_threads(4);
  Detector detector(config);
  ScopedFault fault("kg.row", 1);
  auto result = detector.Run(doc.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("row 0"), std::string::npos);
}

}  // namespace
}  // namespace sxnm::core
