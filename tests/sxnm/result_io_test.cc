#include "sxnm/result_io.h"

#include <gtest/gtest.h>

#include "sxnm/config.h"
#include "sxnm/detector.h"
#include "xml/parser.h"

namespace sxnm::core {
namespace {

constexpr const char* kDoc = R"(
<db><movies>
  <movie><title>The Matrix</title></movie>
  <movie><title>The Matrxi</title></movie>
  <movie><title>Ocean Storm</title></movie>
  <movie><title>Ocean Stor</title></movie>
  <movie><title>Unique Film Here</title></movie>
</movies></db>
)";

DetectionResult RunDetection(const xml::Document& doc) {
  Config config;
  auto movie = CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K5"}})
                   .Window(5)
                   .OdThreshold(0.8)
                   .Build();
  EXPECT_TRUE(movie.ok());
  EXPECT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  auto result = Detector(config).Run(doc);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(ResultIoTest, RoundTripPreservesClusters) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  DetectionResult result = RunDetection(doc.value());
  ASSERT_EQ(result.Find("movie")->clusters.NonTrivialClusters().size(), 2u);

  std::string serialized = ResultToXmlString(result);
  auto stored = ResultFromXmlString(serialized);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString() << "\n"
                           << serialized;

  const StoredCandidateResult* movie = stored->Find("movie");
  ASSERT_NE(movie, nullptr);
  EXPECT_EQ(movie->num_instances, 5u);
  EXPECT_EQ(movie->clusters.clusters(),
            result.Find("movie")->clusters.clusters());
  // cid lookups agree for every instance.
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(movie->clusters.cid(i) == movie->clusters.cid(j),
                result.Find("movie")->clusters.cid(i) ==
                    result.Find("movie")->clusters.cid(j));
    }
  }
}

TEST(ResultIoTest, EidsPreservedForClusterMembers) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  DetectionResult result = RunDetection(doc.value());
  auto stored = ResultFromXmlString(ResultToXmlString(result));
  ASSERT_TRUE(stored.ok());
  const StoredCandidateResult* movie = stored->Find("movie");
  const CandidateResult* original = result.Find("movie");
  for (const auto& cluster : original->clusters.NonTrivialClusters()) {
    for (size_t ordinal : cluster) {
      EXPECT_EQ(movie->eids[ordinal], original->gk.rows[ordinal].eid);
    }
  }
}

TEST(ResultIoTest, SingletonsImplied) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  DetectionResult result = RunDetection(doc.value());
  std::string serialized = ResultToXmlString(result);
  // The unique movie (ordinal 4) must not appear in the serialization...
  EXPECT_EQ(serialized.find("ordinal=\"4\""), std::string::npos);
  // ...but reappears as a singleton after parsing.
  auto stored = ResultFromXmlString(serialized);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->Find("movie")->clusters.num_instances(), 5u);
}

TEST(ResultIoTest, FindMissingReturnsNull) {
  StoredDetectionResult stored;
  EXPECT_EQ(stored.Find("nope"), nullptr);
}

TEST(ResultIoTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ResultFromXmlString("<wrong-root/>").ok());
  EXPECT_FALSE(ResultFromXmlString(
                   "<sxnm-result><candidate instances=\"2\"/></sxnm-result>")
                   .ok())
      << "candidate without name";
  EXPECT_FALSE(
      ResultFromXmlString(
          "<sxnm-result><candidate name=\"x\" instances=\"abc\"/>"
          "</sxnm-result>")
          .ok())
      << "bad instances";
  EXPECT_FALSE(ResultFromXmlString(R"(
<sxnm-result><candidate name="x" instances="3">
  <cluster cid="0"><member ordinal="9" eid="1"/>
  <member ordinal="1" eid="2"/></cluster>
</candidate></sxnm-result>)")
                   .ok())
      << "ordinal out of range";
  EXPECT_FALSE(ResultFromXmlString(R"(
<sxnm-result><candidate name="x" instances="3">
  <cluster cid="0"><member ordinal="1" eid="1"/></cluster>
</candidate></sxnm-result>)")
                   .ok())
      << "cluster with one member";
  EXPECT_FALSE(ResultFromXmlString(R"(
<sxnm-result><candidate name="x" instances="4">
  <cluster cid="0"><member ordinal="0" eid="1"/>
    <member ordinal="1" eid="2"/></cluster>
  <cluster cid="1"><member ordinal="1" eid="2"/>
    <member ordinal="2" eid="3"/></cluster>
</candidate></sxnm-result>)")
                   .ok())
      << "ordinal in two clusters";
}

TEST(ResultIoTest, EmptyResultRoundTrips) {
  DetectionResult empty;
  auto stored = ResultFromXmlString(ResultToXmlString(empty));
  ASSERT_TRUE(stored.ok());
  EXPECT_TRUE(stored->candidates.empty());
}

}  // namespace
}  // namespace sxnm::core
