#include "sxnm/config.h"

#include <gtest/gtest.h>

namespace sxnm::core {
namespace {

util::Result<CandidateConfig> MinimalCandidate() {
  return CandidateBuilder("movie", "db/movies/movie")
      .Path(1, "title/text()")
      .Od(1, 1.0)
      .Key({{1, "K1-K5"}})
      .Build();
}

TEST(CandidateBuilderTest, BuildsValidCandidate) {
  auto cand = MinimalCandidate();
  ASSERT_TRUE(cand.ok()) << cand.status().ToString();
  EXPECT_EQ(cand->name, "movie");
  EXPECT_EQ(cand->absolute_path.ToString(), "db/movies/movie");
  EXPECT_EQ(cand->paths.size(), 1u);
  EXPECT_EQ(cand->od.size(), 1u);
  EXPECT_EQ(cand->keys.size(), 1u);
  EXPECT_TRUE(cand->use_descendants);
  EXPECT_FALSE(cand->exact_od_prepass);
}

TEST(CandidateBuilderTest, AllKnobs) {
  auto cand = CandidateBuilder("disc", "freedb/disc")
                  .Path(1, "did/text()")
                  .Path(2, "artist[1]/text()")
                  .Od(1, 0.4)
                  .Od(2, 0.6, "jaro_winkler")
                  .Key({{1, "C1-C4"}, {2, "K1,K2"}})
                  .Key({{2, "K1-K4"}})
                  .Window(7)
                  .OdThreshold(0.65)
                  .DescThreshold(0.3)
                  .OdWeight(0.7)
                  .Mode(CombineMode::kDescGate)
                  .UseDescendants(false)
                  .ExactOdPrepass(true)
                  .Build();
  ASSERT_TRUE(cand.ok()) << cand.status().ToString();
  EXPECT_EQ(cand->window_size, 7u);
  EXPECT_DOUBLE_EQ(cand->classifier.od_threshold, 0.65);
  EXPECT_DOUBLE_EQ(cand->classifier.desc_threshold, 0.3);
  EXPECT_DOUBLE_EQ(cand->classifier.od_weight, 0.7);
  EXPECT_EQ(cand->classifier.mode, CombineMode::kDescGate);
  EXPECT_FALSE(cand->use_descendants);
  EXPECT_TRUE(cand->exact_od_prepass);
  ASSERT_EQ(cand->keys[0].parts.size(), 2u);
  EXPECT_EQ(cand->keys[0].parts[0].order, 1);
  EXPECT_EQ(cand->keys[0].parts[1].order, 2);
  EXPECT_EQ(cand->od[1].similarity_name, "jaro_winkler");
}

TEST(CandidateBuilderTest, BadAbsolutePathFails) {
  auto cand = CandidateBuilder("x", "a//").Path(1, "t/text()").Od(1, 1.0)
                  .Key({{1, "C1"}}).Build();
  EXPECT_FALSE(cand.ok());
}

TEST(CandidateBuilderTest, ValueSelectingAbsolutePathFails) {
  auto cand = CandidateBuilder("x", "a/b/text()")
                  .Path(1, "t/text()").Od(1, 1.0).Key({{1, "C1"}}).Build();
  EXPECT_FALSE(cand.ok());
}

TEST(CandidateBuilderTest, BadRelativePathFails) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t[0]/text()").Od(1, 1.0)
                  .Key({{1, "C1"}}).Build();
  EXPECT_FALSE(cand.ok());
}

TEST(CandidateBuilderTest, UnknownSimilarityFails) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()")
                  .Od(1, 1.0, "nope").Key({{1, "C1"}}).Build();
  EXPECT_FALSE(cand.ok());
  EXPECT_EQ(cand.status().code(), util::StatusCode::kNotFound);
}

TEST(CandidateBuilderTest, BadPatternFails) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()").Od(1, 1.0)
                  .Key({{1, "Q9"}}).Build();
  EXPECT_FALSE(cand.ok());
}

TEST(CandidateBuilderTest, FirstErrorWins) {
  auto cand = CandidateBuilder("x", "a//")          // error 1
                  .Path(1, "also bad [")            // error 2
                  .Od(1, 1.0, "nope")               // error 3
                  .Key({{1, "C1"}})
                  .Build();
  ASSERT_FALSE(cand.ok());
  EXPECT_NE(cand.status().message().find("a//"), std::string::npos)
      << "first error should be about the absolute path: "
      << cand.status().ToString();
}

TEST(ConfigTest, AddAndFind) {
  Config config;
  ASSERT_TRUE(config.AddCandidate(MinimalCandidate().value()).ok());
  EXPECT_NE(config.Find("movie"), nullptr);
  EXPECT_EQ(config.Find("other"), nullptr);
  EXPECT_EQ(config.candidates().size(), 1u);
}

TEST(ConfigTest, DuplicateNameRejected) {
  Config config;
  ASSERT_TRUE(config.AddCandidate(MinimalCandidate().value()).ok());
  EXPECT_FALSE(config.AddCandidate(MinimalCandidate().value()).ok());
}

TEST(ConfigValidateTest, ValidConfigPasses) {
  Config config;
  ASSERT_TRUE(config.AddCandidate(MinimalCandidate().value()).ok());
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigValidateTest, EmptyConfigFails) {
  Config config;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, OdReferencingUnknownPathFails) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()")
                  .Od(99, 1.0).Key({{1, "C1"}}).Build();
  ASSERT_TRUE(cand.ok());
  Config config;
  ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
  auto status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown path id 99"), std::string::npos);
}

TEST(ConfigValidateTest, KeyReferencingUnknownPathFails) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()")
                  .Od(1, 1.0).Key({{7, "C1"}}).Build();
  ASSERT_TRUE(cand.ok());
  Config config;
  ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, MissingOdFails) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()")
                  .Key({{1, "C1"}}).Build();
  ASSERT_TRUE(cand.ok());
  Config config;
  ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, MissingKeyFails) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()")
                  .Od(1, 1.0).Build();
  ASSERT_TRUE(cand.ok());
  Config config;
  ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, WindowTooSmallFails) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()")
                  .Od(1, 1.0).Key({{1, "C1"}}).Window(1).Build();
  ASSERT_TRUE(cand.ok());
  Config config;
  ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, ThresholdOutOfRangeFails) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()")
                  .Od(1, 1.0).Key({{1, "C1"}}).OdThreshold(1.5).Build();
  ASSERT_TRUE(cand.ok());
  Config config;
  ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, DuplicatePathIdFails) {
  auto cand = CandidateBuilder("x", "a/b")
                  .Path(1, "t/text()").Path(1, "u/text()")
                  .Od(1, 1.0).Key({{1, "C1"}}).Build();
  ASSERT_TRUE(cand.ok());
  Config config;
  ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, SharedAbsolutePathFails) {
  auto a = CandidateBuilder("a", "db/item").Path(1, "t/text()")
               .Od(1, 1.0).Key({{1, "C1"}}).Build();
  auto b = CandidateBuilder("b", "db/item").Path(1, "t/text()")
               .Od(1, 1.0).Key({{1, "C1"}}).Build();
  Config config;
  ASSERT_TRUE(config.AddCandidate(std::move(a).value()).ok());
  ASSERT_TRUE(config.AddCandidate(std::move(b).value()).ok());
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, BatchScoringWithoutFastPathsFails) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()")
                  .Od(1, 1.0).Key({{1, "C1"}}).Build();
  ASSERT_TRUE(cand.ok());
  CandidateConfig c = std::move(cand).value();
  c.enable_fast_paths = false;
  c.batch_scoring = true;  // the SoA screen mirrors the bounded kernel
  Config config;
  ASSERT_TRUE(config.AddCandidate(std::move(c)).ok());
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, FastPathsOffBuilderClearsBatchScoring) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()")
                  .Od(1, 1.0).Key({{1, "C1"}}).FastPaths(false).Build();
  ASSERT_TRUE(cand.ok());
  EXPECT_FALSE(cand->batch_scoring);
  EXPECT_TRUE(cand->dag_compression)
      << "the DAG shortcut is exact and independent of the fast paths";
  Config config;
  ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigValidateTest, DagAndBatchScoringDefaultOn) {
  auto cand = CandidateBuilder("x", "a/b").Path(1, "t/text()")
                  .Od(1, 1.0).Key({{1, "C1"}}).Build();
  ASSERT_TRUE(cand.ok());
  EXPECT_TRUE(cand->dag_compression);
  EXPECT_TRUE(cand->batch_scoring);
}

TEST(CombineModeTest, NamesRoundTrip) {
  for (CombineMode mode :
       {CombineMode::kOdOnly, CombineMode::kAverage, CombineMode::kWeighted,
        CombineMode::kDescBoost, CombineMode::kDescGate}) {
    auto parsed = ParseCombineMode(CombineModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), mode);
  }
  EXPECT_FALSE(ParseCombineMode("bogus").ok());
}

TEST(CandidateConfigTest, FindPath) {
  auto cand = MinimalCandidate().value();
  ASSERT_NE(cand.FindPath(1), nullptr);
  EXPECT_EQ(cand.FindPath(1)->rel_path, "title/text()");
  EXPECT_EQ(cand.FindPath(42), nullptr);
}

}  // namespace
}  // namespace sxnm::core
