#include "sxnm/similarity_measure.h"

#include <gtest/gtest.h>

namespace sxnm::core {
namespace {

// Builds a minimal candidate with two OD entries (edit 0.8, exact 0.2).
CandidateConfig TwoFieldCandidate() {
  return CandidateBuilder("m", "db/m")
      .Path(1, "a/text()")
      .Path(2, "b/text()")
      .Od(1, 0.8)
      .Od(2, 0.2, "exact")
      .Key({{1, "C1"}})
      .OdThreshold(0.75)
      .Build()
      .value();
}

GkRow Row(size_t ordinal, std::vector<std::string> ods) {
  GkRow row;
  row.ordinal = ordinal;
  row.eid = static_cast<xml::ElementId>(ordinal);
  row.ods = std::move(ods);
  return row;
}

// Instances record with a single child type slot holding the given
// per-instance descendant lists.
CandidateInstances WithDescendants(
    const CandidateConfig* config,
    std::vector<std::vector<size_t>> per_instance) {
  CandidateInstances instances;
  instances.config = config;
  instances.elements.resize(per_instance.size(), nullptr);
  instances.eids.resize(per_instance.size(), 0);
  instances.child_types = {1};  // dummy type index
  instances.desc_instances = {std::move(per_instance)};
  return instances;
}

CandidateInstances NoDescendants(const CandidateConfig* config, size_t n) {
  CandidateInstances instances;
  instances.config = config;
  instances.elements.resize(n, nullptr);
  instances.eids.resize(n, 0);
  return instances;
}

TEST(OdSimilarityTest, WeightedSumPerDef2) {
  CandidateConfig cand = TwoFieldCandidate();
  CandidateInstances instances = NoDescendants(&cand, 2);
  SimilarityMeasure measure(cand, instances, {});

  // Field 1 identical (sim 1), field 2 different (exact -> 0):
  // 0.8*1 + 0.2*0 = 0.8.
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"same", "x"}),
                                   Row(1, {"same", "y"})),
              0.8, 1e-12);
  // Both identical: 1.0.
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"same", "x"}),
                                   Row(1, {"same", "x"})),
              1.0, 1e-12);
}

TEST(OdSimilarityTest, RelevanciesNormalized) {
  // Relevancies 8 and 2 behave like 0.8 and 0.2.
  CandidateConfig cand = CandidateBuilder("m", "db/m")
                             .Path(1, "a/text()")
                             .Path(2, "b/text()")
                             .Od(1, 8.0)
                             .Od(2, 2.0, "exact")
                             .Key({{1, "C1"}})
                             .Build()
                             .value();
  CandidateInstances instances = NoDescendants(&cand, 2);
  SimilarityMeasure measure(cand, instances, {});
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"same", "x"}),
                                   Row(1, {"same", "y"})),
              0.8, 1e-12);
}

TEST(OdSimilarityTest, MissingValueHandling) {
  CandidateConfig cand = TwoFieldCandidate();
  CandidateInstances instances = NoDescendants(&cand, 2);
  SimilarityMeasure measure(cand, instances, {});
  // Nothing comparable at all: not a duplicate signal.
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"", ""}), Row(1, {"", ""})), 0.0,
              1e-12);
  // One empty vs non-empty: component counts with similarity 0.
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"", "x"}), Row(1, {"abc", "x"})),
              0.2, 1e-12);
  // Both-empty component is skipped and weights renormalize: the second
  // field alone decides.
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"", "x"}), Row(1, {"", "x"})),
              1.0, 1e-12);
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"", "x"}), Row(1, {"", "y"})),
              0.0, 1e-12);
}

TEST(DescendantSimilarityTest, JaccardOfClusterIdSets) {
  CandidateConfig cand = TwoFieldCandidate();
  // Child clusters: {0,1} share a cluster, 2 and 3 are singletons.
  ClusterSet child = ClusterSet::FromClusters({{0, 1}}, 4);
  // Instance 0 has descendants {0, 2}; instance 1 has {1, 3}.
  // Cluster-id sets: {cid0, cid2} and {cid0, cid3} -> overlap 1, union 3.
  CandidateInstances instances =
      WithDescendants(&cand, {{0, 2}, {1, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  EXPECT_NEAR(measure.DescendantSimilarity(0, 1), 1.0 / 3.0, 1e-12);
}

TEST(DescendantSimilarityTest, DisjointAndIdentical) {
  CandidateConfig cand = TwoFieldCandidate();
  ClusterSet child = ClusterSet::Singletons(4);
  CandidateInstances disjoint = WithDescendants(&cand, {{0, 1}, {2, 3}});
  SimilarityMeasure m1(cand, disjoint, {&child});
  EXPECT_DOUBLE_EQ(m1.DescendantSimilarity(0, 1), 0.0);

  CandidateInstances same = WithDescendants(&cand, {{0, 1}, {0, 1}});
  SimilarityMeasure m2(cand, same, {&child});
  EXPECT_DOUBLE_EQ(m2.DescendantSimilarity(0, 1), 1.0);
}

TEST(DescendantSimilarityTest, PaperFig2bScenario) {
  // e1 and e2 are movies with three persons each; two persons coincide
  // (Tab. 2(b)): l_e1 = (1, 4, 1), l_e2 = (4, 1, 8).
  // Cluster-id sets {1,4} and {4,1,8}: overlap 2, union 3.
  CandidateConfig cand = TwoFieldCandidate();
  // persons 0..5; clusters: {0,2,4} (id 0... construct to match).
  // Build clusters so that cid(p0)=cid(p2)=cid(p4)=A, cid(p1)=cid(p3)=B,
  // cid(p5)=C.
  ClusterSet child = ClusterSet::FromClusters({{0, 2, 4}, {1, 3}}, 6);
  CandidateInstances instances =
      WithDescendants(&cand, {{0, 1, 2}, {3, 4, 5}});
  SimilarityMeasure measure(cand, instances, {&child});
  // Sets: e1 -> {A, B}; e2 -> {B, A, C}. Overlap 2, union 3.
  EXPECT_NEAR(measure.DescendantSimilarity(0, 1), 2.0 / 3.0, 1e-12);
}

TEST(DescendantSimilarityTest, NoDescendantInfoReturnsMinusOne) {
  CandidateConfig cand = TwoFieldCandidate();
  CandidateInstances instances = NoDescendants(&cand, 2);
  SimilarityMeasure measure(cand, instances, {});
  EXPECT_DOUBLE_EQ(measure.DescendantSimilarity(0, 1), -1.0);
}

TEST(DescendantSimilarityTest, BothEmptyListsSkipType) {
  CandidateConfig cand = TwoFieldCandidate();
  ClusterSet child = ClusterSet::Singletons(2);
  CandidateInstances instances = WithDescendants(&cand, {{}, {}});
  SimilarityMeasure measure(cand, instances, {&child});
  EXPECT_DOUBLE_EQ(measure.DescendantSimilarity(0, 1), -1.0)
      << "no comparable type -> no descendant information";
}

TEST(DescendantSimilarityTest, OneEmptyListIsZero) {
  CandidateConfig cand = TwoFieldCandidate();
  ClusterSet child = ClusterSet::Singletons(2);
  CandidateInstances instances = WithDescendants(&cand, {{0}, {}});
  SimilarityMeasure measure(cand, instances, {&child});
  EXPECT_DOUBLE_EQ(measure.DescendantSimilarity(0, 1), 0.0);
}

TEST(CompareTest, OdOnlyMode) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kOdOnly;
  ClusterSet child = ClusterSet::Singletons(2);
  CandidateInstances instances = WithDescendants(&cand, {{0}, {1}});
  SimilarityMeasure measure(cand, instances, {&child});
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_FALSE(verdict.used_descendants);
  EXPECT_TRUE(verdict.is_duplicate);
  EXPECT_DOUBLE_EQ(verdict.combined, 1.0);
}

TEST(CompareTest, AverageMode) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kAverage;
  cand.classifier.od_threshold = 0.7;
  ClusterSet child = ClusterSet::FromClusters({{0, 1}}, 2);
  CandidateInstances instances = WithDescendants(&cand, {{0}, {1}});
  SimilarityMeasure measure(cand, instances, {&child});
  // od = 1.0, desc = 1.0 -> combined 1.0.
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_TRUE(verdict.used_descendants);
  EXPECT_DOUBLE_EQ(verdict.desc_sim, 1.0);
  EXPECT_DOUBLE_EQ(verdict.combined, 1.0);
  EXPECT_TRUE(verdict.is_duplicate);
}

TEST(CompareTest, WeightedMode) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kWeighted;
  cand.classifier.od_weight = 0.75;
  cand.classifier.od_threshold = 0.9;
  ClusterSet child = ClusterSet::Singletons(2);
  CandidateInstances instances = WithDescendants(&cand, {{0}, {1}});
  SimilarityMeasure measure(cand, instances, {&child});
  // od = 1.0, desc = 0 -> 0.75*1 + 0.25*0 = 0.75 < 0.9.
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_NEAR(verdict.combined, 0.75, 1e-12);
  EXPECT_FALSE(verdict.is_duplicate);
}

TEST(CompareTest, DescBoostMode) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kDescBoost;
  cand.classifier.od_threshold = 0.7;
  cand.classifier.desc_threshold = 0.3;
  // desc jaccard = 1/3 >= 0.3 -> boosted to 1.0.
  ClusterSet child = ClusterSet::FromClusters({{0, 1}}, 4);
  CandidateInstances instances = WithDescendants(&cand, {{0, 2}, {1, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  // od = 0.8*edit("aaaa","aaxx")+0.2*0 = 0.8*0.5 = 0.4; boosted desc -> 1;
  // combined = (0.4 + 1)/2 = 0.7 -> duplicate at threshold 0.7.
  auto verdict =
      measure.Compare(Row(0, {"aaaa", "p"}), Row(1, {"aaxx", "q"}));
  EXPECT_TRUE(verdict.used_descendants);
  EXPECT_NEAR(verdict.combined, 0.7, 1e-12);
  EXPECT_TRUE(verdict.is_duplicate);
}

TEST(CompareTest, DescGateVetoesDisjointChildren) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kDescGate;
  cand.classifier.od_threshold = 0.7;
  cand.classifier.desc_threshold = 0.3;
  ClusterSet child = ClusterSet::Singletons(4);
  CandidateInstances instances = WithDescendants(&cand, {{0, 1}, {2, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  // od passes (1.0) but children disjoint -> vetoed.
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_FALSE(verdict.is_duplicate);
}

TEST(CompareTest, DescGatePassesWithOverlap) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kDescGate;
  cand.classifier.od_threshold = 0.7;
  cand.classifier.desc_threshold = 0.3;
  ClusterSet child = ClusterSet::FromClusters({{0, 2}, {1, 3}}, 4);
  CandidateInstances instances = WithDescendants(&cand, {{0, 1}, {2, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_TRUE(verdict.is_duplicate) << "full cluster overlap passes gate";
}

TEST(CompareTest, LeafFallsBackToOdInEveryMode) {
  for (CombineMode mode :
       {CombineMode::kAverage, CombineMode::kWeighted, CombineMode::kDescBoost,
        CombineMode::kDescGate}) {
    CandidateConfig cand = TwoFieldCandidate();
    cand.classifier.mode = mode;
    CandidateInstances instances = NoDescendants(&cand, 2);
    SimilarityMeasure measure(cand, instances, {});
    auto verdict =
        measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
    EXPECT_FALSE(verdict.used_descendants);
    EXPECT_TRUE(verdict.is_duplicate)
        << "mode " << CombineModeName(mode);
  }
}

TEST(CompareTest, UseDescendantsFalseIgnoresChildren) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kDescGate;
  cand.use_descendants = false;
  ClusterSet child = ClusterSet::Singletons(4);
  CandidateInstances instances = WithDescendants(&cand, {{0, 1}, {2, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_FALSE(verdict.used_descendants);
  EXPECT_TRUE(verdict.is_duplicate)
      << "gate disabled because descendants are disabled";
}

}  // namespace
}  // namespace sxnm::core
