#include "sxnm/similarity_measure.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace sxnm::core {
namespace {

// Builds a minimal candidate with two OD entries (edit 0.8, exact 0.2).
CandidateConfig TwoFieldCandidate() {
  return CandidateBuilder("m", "db/m")
      .Path(1, "a/text()")
      .Path(2, "b/text()")
      .Od(1, 0.8)
      .Od(2, 0.2, "exact")
      .Key({{1, "C1"}})
      .OdThreshold(0.75)
      .Build()
      .value();
}

GkRow Row(size_t ordinal, std::vector<std::string> ods) {
  GkRow row;
  row.ordinal = ordinal;
  row.eid = static_cast<xml::ElementId>(ordinal);
  row.ods = std::move(ods);
  return row;
}

// Instances record with a single child type slot holding the given
// per-instance descendant lists.
CandidateInstances WithDescendants(
    const CandidateConfig* config,
    std::vector<std::vector<size_t>> per_instance) {
  CandidateInstances instances;
  instances.config = config;
  instances.elements.resize(per_instance.size(), nullptr);
  instances.eids.resize(per_instance.size(), 0);
  instances.child_types = {1};  // dummy type index
  instances.desc_instances = {std::move(per_instance)};
  return instances;
}

CandidateInstances NoDescendants(const CandidateConfig* config, size_t n) {
  CandidateInstances instances;
  instances.config = config;
  instances.elements.resize(n, nullptr);
  instances.eids.resize(n, 0);
  return instances;
}

TEST(OdSimilarityTest, WeightedSumPerDef2) {
  CandidateConfig cand = TwoFieldCandidate();
  CandidateInstances instances = NoDescendants(&cand, 2);
  SimilarityMeasure measure(cand, instances, {});

  // Field 1 identical (sim 1), field 2 different (exact -> 0):
  // 0.8*1 + 0.2*0 = 0.8.
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"same", "x"}),
                                   Row(1, {"same", "y"})),
              0.8, 1e-12);
  // Both identical: 1.0.
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"same", "x"}),
                                   Row(1, {"same", "x"})),
              1.0, 1e-12);
}

TEST(OdSimilarityTest, RelevanciesNormalized) {
  // Relevancies 8 and 2 behave like 0.8 and 0.2.
  CandidateConfig cand = CandidateBuilder("m", "db/m")
                             .Path(1, "a/text()")
                             .Path(2, "b/text()")
                             .Od(1, 8.0)
                             .Od(2, 2.0, "exact")
                             .Key({{1, "C1"}})
                             .Build()
                             .value();
  CandidateInstances instances = NoDescendants(&cand, 2);
  SimilarityMeasure measure(cand, instances, {});
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"same", "x"}),
                                   Row(1, {"same", "y"})),
              0.8, 1e-12);
}

TEST(OdSimilarityTest, MissingValueHandling) {
  CandidateConfig cand = TwoFieldCandidate();
  CandidateInstances instances = NoDescendants(&cand, 2);
  SimilarityMeasure measure(cand, instances, {});
  // Nothing comparable at all: not a duplicate signal.
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"", ""}), Row(1, {"", ""})), 0.0,
              1e-12);
  // One empty vs non-empty: component counts with similarity 0.
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"", "x"}), Row(1, {"abc", "x"})),
              0.2, 1e-12);
  // Both-empty component is skipped and weights renormalize: the second
  // field alone decides.
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"", "x"}), Row(1, {"", "x"})),
              1.0, 1e-12);
  EXPECT_NEAR(measure.OdSimilarity(Row(0, {"", "x"}), Row(1, {"", "y"})),
              0.0, 1e-12);
}

TEST(DescendantSimilarityTest, JaccardOfClusterIdSets) {
  CandidateConfig cand = TwoFieldCandidate();
  // Child clusters: {0,1} share a cluster, 2 and 3 are singletons.
  ClusterSet child = ClusterSet::FromClusters({{0, 1}}, 4);
  // Instance 0 has descendants {0, 2}; instance 1 has {1, 3}.
  // Cluster-id sets: {cid0, cid2} and {cid0, cid3} -> overlap 1, union 3.
  CandidateInstances instances =
      WithDescendants(&cand, {{0, 2}, {1, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  EXPECT_NEAR(measure.DescendantSimilarity(0, 1), 1.0 / 3.0, 1e-12);
}

TEST(DescendantSimilarityTest, DisjointAndIdentical) {
  CandidateConfig cand = TwoFieldCandidate();
  ClusterSet child = ClusterSet::Singletons(4);
  CandidateInstances disjoint = WithDescendants(&cand, {{0, 1}, {2, 3}});
  SimilarityMeasure m1(cand, disjoint, {&child});
  EXPECT_DOUBLE_EQ(m1.DescendantSimilarity(0, 1), 0.0);

  CandidateInstances same = WithDescendants(&cand, {{0, 1}, {0, 1}});
  SimilarityMeasure m2(cand, same, {&child});
  EXPECT_DOUBLE_EQ(m2.DescendantSimilarity(0, 1), 1.0);
}

TEST(DescendantSimilarityTest, PaperFig2bScenario) {
  // e1 and e2 are movies with three persons each; two persons coincide
  // (Tab. 2(b)): l_e1 = (1, 4, 1), l_e2 = (4, 1, 8).
  // Cluster-id sets {1,4} and {4,1,8}: overlap 2, union 3.
  CandidateConfig cand = TwoFieldCandidate();
  // persons 0..5; clusters: {0,2,4} (id 0... construct to match).
  // Build clusters so that cid(p0)=cid(p2)=cid(p4)=A, cid(p1)=cid(p3)=B,
  // cid(p5)=C.
  ClusterSet child = ClusterSet::FromClusters({{0, 2, 4}, {1, 3}}, 6);
  CandidateInstances instances =
      WithDescendants(&cand, {{0, 1, 2}, {3, 4, 5}});
  SimilarityMeasure measure(cand, instances, {&child});
  // Sets: e1 -> {A, B}; e2 -> {B, A, C}. Overlap 2, union 3.
  EXPECT_NEAR(measure.DescendantSimilarity(0, 1), 2.0 / 3.0, 1e-12);
}

TEST(DescendantSimilarityTest, NoDescendantInfoReturnsMinusOne) {
  CandidateConfig cand = TwoFieldCandidate();
  CandidateInstances instances = NoDescendants(&cand, 2);
  SimilarityMeasure measure(cand, instances, {});
  EXPECT_DOUBLE_EQ(measure.DescendantSimilarity(0, 1), -1.0);
}

TEST(DescendantSimilarityTest, BothEmptyListsSkipType) {
  CandidateConfig cand = TwoFieldCandidate();
  ClusterSet child = ClusterSet::Singletons(2);
  CandidateInstances instances = WithDescendants(&cand, {{}, {}});
  SimilarityMeasure measure(cand, instances, {&child});
  EXPECT_DOUBLE_EQ(measure.DescendantSimilarity(0, 1), -1.0)
      << "no comparable type -> no descendant information";
}

TEST(DescendantSimilarityTest, OneEmptyListIsZero) {
  CandidateConfig cand = TwoFieldCandidate();
  ClusterSet child = ClusterSet::Singletons(2);
  CandidateInstances instances = WithDescendants(&cand, {{0}, {}});
  SimilarityMeasure measure(cand, instances, {&child});
  EXPECT_DOUBLE_EQ(measure.DescendantSimilarity(0, 1), 0.0);
}

TEST(DescendantSimilarityTest, SortedVectorMatchesSetBasedReference) {
  // The precomputed sorted-vector Jaccard (fast paths on) against the
  // original per-pair std::set implementation (fast paths off), over
  // random descendant lists with duplicates and empties.
  std::mt19937 rng(9001);
  constexpr size_t kInstances = 24;
  constexpr size_t kChildren = 40;
  std::uniform_int_distribution<size_t> list_len(0, 8);
  std::uniform_int_distribution<size_t> child(0, kChildren - 1);

  std::vector<std::vector<size_t>> per_instance(kInstances);
  for (auto& list : per_instance) {
    list.resize(list_len(rng));
    for (size_t& d : list) d = child(rng);  // duplicates allowed
  }
  ClusterSet clusters = ClusterSet::FromClusters(
      {{0, 5, 11}, {1, 2}, {7, 13, 21, 33}, {8, 39}}, kChildren);

  CandidateConfig fast = TwoFieldCandidate();
  CandidateConfig slow = TwoFieldCandidate();
  slow.enable_fast_paths = false;

  CandidateInstances instances = WithDescendants(&fast, per_instance);
  SimilarityMeasure fast_measure(fast, instances, {&clusters});
  CandidateInstances instances_slow = WithDescendants(&slow, per_instance);
  SimilarityMeasure slow_measure(slow, instances_slow, {&clusters});

  for (size_t a = 0; a < kInstances; ++a) {
    for (size_t b = a + 1; b < kInstances; ++b) {
      ASSERT_DOUBLE_EQ(fast_measure.DescendantSimilarity(a, b),
                       slow_measure.DescendantSimilarity(a, b))
          << "ordinals " << a << ", " << b;
    }
  }
}

// Random GK rows with properly interned normalized ODs, as key
// generation would produce them.
GkRow RandomRow(size_t ordinal, std::mt19937& rng, OdPool& pool) {
  static const std::vector<std::string> kWords = {
      "The  Matrix", "the matrix", "The Matrix Reloaded", "Mask of Zorro",
      "MASK OF ZORRO", "Keanu Reeves", "Keanu Reevs", "", "1999", "1998",
      "12 Monkeys", "Twelve Monkeys", "zzzz"};
  std::uniform_int_distribution<size_t> word(0, kWords.size() - 1);
  GkRow row = Row(ordinal, {kWords[word(rng)], kWords[word(rng)]});
  for (const std::string& od : row.ods) {
    row.norm_ods.push_back(
        pool.Intern(util::ToLower(util::NormalizeWhitespace(od))));
  }
  return row;
}

TEST(CompareFastTest, ClassifiesIdenticallyToExactAcrossModes) {
  // CompareFast may report pruned upper bounds, but is_duplicate must
  // match Compare exactly — for every combine mode, with and without
  // descendant information.
  std::mt19937 rng(31337);
  ClusterSet child = ClusterSet::FromClusters({{0, 1}, {2, 3}}, 6);
  std::uniform_int_distribution<size_t> desc(0, 5);

  for (CombineMode mode :
       {CombineMode::kOdOnly, CombineMode::kAverage, CombineMode::kWeighted,
        CombineMode::kDescBoost, CombineMode::kDescGate}) {
    CandidateConfig cand = TwoFieldCandidate();
    cand.classifier.mode = mode;
    cand.classifier.od_threshold = 0.72;
    cand.classifier.desc_threshold = 0.4;
    cand.classifier.od_weight = 0.7;

    std::vector<std::vector<size_t>> per_instance(2);
    for (auto& list : per_instance) list = {desc(rng), desc(rng)};
    CandidateInstances instances = WithDescendants(&cand, per_instance);
    OdPool pool;
    SimilarityMeasure measure(cand, instances, {&child}, &pool);

    for (int iter = 0; iter < 300; ++iter) {
      GkRow a = RandomRow(0, rng, pool);
      GkRow b = RandomRow(1, rng, pool);
      SimilarityVerdict exact = measure.Compare(a, b);
      SimilarityVerdict fast = measure.CompareFast(a, b);
      ASSERT_EQ(fast.is_duplicate, exact.is_duplicate)
          << CombineModeName(mode) << ": \"" << a.ods[0] << "\"/\""
          << a.ods[1] << "\" vs \"" << b.ods[0] << "\"/\"" << b.ods[1]
          << "\" (exact combined " << exact.combined << ")";
      if (!fast.pruned) {
        ASSERT_DOUBLE_EQ(fast.od_sim, exact.od_sim);
      } else {
        ASSERT_FALSE(fast.is_duplicate);
        ASSERT_GE(fast.od_sim + 1e-12, exact.od_sim)
            << "pruned od_sim must be an upper bound";
      }
    }
  }
}

TEST(CompareFastTest, InternedEqualScoresOneWithoutKernel) {
  // Raw values that differ only in case/whitespace intern to the same
  // pool ID; CompareFast must score those components exactly 1.0 and
  // report them in interned_equal.
  CandidateConfig cand = TwoFieldCandidate();
  CandidateInstances instances = NoDescendants(&cand, 2);
  OdPool pool;
  GkRow a = Row(0, {"The  Matrix", "1999"});
  GkRow b = Row(1, {"the MATRIX", "1999"});
  for (GkRow* row : {&a, &b}) {
    for (const std::string& od : row->ods) {
      row->norm_ods.push_back(
          pool.Intern(util::ToLower(util::NormalizeWhitespace(od))));
    }
  }
  ASSERT_EQ(a.norm_ods[0].id, b.norm_ods[0].id);

  SimilarityMeasure measure(cand, instances, {}, &pool);
  SimilarityVerdict fast = measure.CompareFast(a, b);
  EXPECT_TRUE(fast.is_duplicate);
  EXPECT_DOUBLE_EQ(fast.od_sim, 1.0);
  // Only the first component uses the "edit" φ; the "exact" year is never
  // routed through the interned fast path.
  EXPECT_EQ(fast.interned_equal, 1u);

  // An unequal edit component runs the kernel and is not counted.
  GkRow c = Row(2, {"The Matrix Reloaded", "1999"});
  for (const std::string& od : c.ods) {
    c.norm_ods.push_back(
        pool.Intern(util::ToLower(util::NormalizeWhitespace(od))));
  }
  SimilarityVerdict mixed = measure.CompareFast(a, c);
  EXPECT_EQ(mixed.interned_equal, 0u);
}

TEST(CompareFastTest, FallsBackWithoutPrecomputedNormOds) {
  // Hand-built rows without norm_ods must take the exact path.
  CandidateConfig cand = TwoFieldCandidate();
  CandidateInstances instances = NoDescendants(&cand, 2);
  SimilarityMeasure measure(cand, instances, {});
  GkRow a = Row(0, {"The  Matrix", "x"});
  GkRow b = Row(1, {"the matrix", "x"});
  SimilarityVerdict fast = measure.CompareFast(a, b);
  SimilarityVerdict exact = measure.Compare(a, b);
  EXPECT_DOUBLE_EQ(fast.od_sim, exact.od_sim);
  EXPECT_DOUBLE_EQ(fast.combined, exact.combined);
  EXPECT_EQ(fast.is_duplicate, exact.is_duplicate);
  EXPECT_TRUE(fast.is_duplicate) << "normalization still applies on the fly";
}

TEST(CompareTest, DescendantJaccardSkippedWhenVerdictDecided) {
  // od = 1.0 with threshold 0.7 in kAverage: every descendant value
  // (including "no info") accepts, so the Jaccard is skipped and the
  // verdict reports used_descendants == false.
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kAverage;
  cand.classifier.od_threshold = 0.5;
  ClusterSet child = ClusterSet::Singletons(4);
  CandidateInstances instances = WithDescendants(&cand, {{0, 1}, {2, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_TRUE(verdict.is_duplicate);
  EXPECT_FALSE(verdict.used_descendants)
      << "desc cannot change an od=1.0 accept at threshold 0.5";

  // Conversely at threshold 0.9, od = 0 rejects in every branch: even a
  // perfect descendant score only reaches (0 + 1)/2 = 0.5.
  CandidateConfig strict = TwoFieldCandidate();
  strict.classifier.mode = CombineMode::kAverage;
  strict.classifier.od_threshold = 0.9;
  CandidateInstances strict_instances =
      WithDescendants(&strict, {{0, 1}, {2, 3}});
  SimilarityMeasure strict_measure(strict, strict_instances, {&child});
  auto reject = strict_measure.Compare(Row(0, {"aaaa", "x"}),
                                       Row(1, {"zzzz", "y"}));
  EXPECT_FALSE(reject.is_duplicate);
  EXPECT_FALSE(reject.used_descendants);
}

TEST(CompareTest, OdOnlyMode) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kOdOnly;
  ClusterSet child = ClusterSet::Singletons(2);
  CandidateInstances instances = WithDescendants(&cand, {{0}, {1}});
  SimilarityMeasure measure(cand, instances, {&child});
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_FALSE(verdict.used_descendants);
  EXPECT_TRUE(verdict.is_duplicate);
  EXPECT_DOUBLE_EQ(verdict.combined, 1.0);
}

TEST(CompareTest, AverageMode) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kAverage;
  cand.classifier.od_threshold = 0.7;
  ClusterSet child = ClusterSet::FromClusters({{0, 1}}, 2);
  CandidateInstances instances = WithDescendants(&cand, {{0}, {1}});
  SimilarityMeasure measure(cand, instances, {&child});
  // od = 1.0, desc = 1.0 -> combined 1.0.
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_TRUE(verdict.used_descendants);
  EXPECT_DOUBLE_EQ(verdict.desc_sim, 1.0);
  EXPECT_DOUBLE_EQ(verdict.combined, 1.0);
  EXPECT_TRUE(verdict.is_duplicate);
}

TEST(CompareTest, WeightedMode) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kWeighted;
  cand.classifier.od_weight = 0.75;
  cand.classifier.od_threshold = 0.9;
  ClusterSet child = ClusterSet::Singletons(2);
  CandidateInstances instances = WithDescendants(&cand, {{0}, {1}});
  SimilarityMeasure measure(cand, instances, {&child});
  // od = 1.0, desc = 0 -> 0.75*1 + 0.25*0 = 0.75 < 0.9.
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_NEAR(verdict.combined, 0.75, 1e-12);
  EXPECT_FALSE(verdict.is_duplicate);
}

TEST(CompareTest, DescBoostMode) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kDescBoost;
  cand.classifier.od_threshold = 0.7;
  cand.classifier.desc_threshold = 0.3;
  // desc jaccard = 1/3 >= 0.3 -> boosted to 1.0.
  ClusterSet child = ClusterSet::FromClusters({{0, 1}}, 4);
  CandidateInstances instances = WithDescendants(&cand, {{0, 2}, {1, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  // od = 0.8*edit("aaaa","aaxx")+0.2*0 = 0.8*0.5 = 0.4; boosted desc -> 1;
  // combined = (0.4 + 1)/2 = 0.7 -> duplicate at threshold 0.7.
  auto verdict =
      measure.Compare(Row(0, {"aaaa", "p"}), Row(1, {"aaxx", "q"}));
  EXPECT_TRUE(verdict.used_descendants);
  EXPECT_NEAR(verdict.combined, 0.7, 1e-12);
  EXPECT_TRUE(verdict.is_duplicate);
}

TEST(CompareTest, DescGateVetoesDisjointChildren) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kDescGate;
  cand.classifier.od_threshold = 0.7;
  cand.classifier.desc_threshold = 0.3;
  ClusterSet child = ClusterSet::Singletons(4);
  CandidateInstances instances = WithDescendants(&cand, {{0, 1}, {2, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  // od passes (1.0) but children disjoint -> vetoed.
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_FALSE(verdict.is_duplicate);
}

TEST(CompareTest, DescGatePassesWithOverlap) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kDescGate;
  cand.classifier.od_threshold = 0.7;
  cand.classifier.desc_threshold = 0.3;
  ClusterSet child = ClusterSet::FromClusters({{0, 2}, {1, 3}}, 4);
  CandidateInstances instances = WithDescendants(&cand, {{0, 1}, {2, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_TRUE(verdict.is_duplicate) << "full cluster overlap passes gate";
}

TEST(CompareTest, LeafFallsBackToOdInEveryMode) {
  for (CombineMode mode :
       {CombineMode::kAverage, CombineMode::kWeighted, CombineMode::kDescBoost,
        CombineMode::kDescGate}) {
    CandidateConfig cand = TwoFieldCandidate();
    cand.classifier.mode = mode;
    CandidateInstances instances = NoDescendants(&cand, 2);
    SimilarityMeasure measure(cand, instances, {});
    auto verdict =
        measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
    EXPECT_FALSE(verdict.used_descendants);
    EXPECT_TRUE(verdict.is_duplicate)
        << "mode " << CombineModeName(mode);
  }
}

TEST(CompareTest, UseDescendantsFalseIgnoresChildren) {
  CandidateConfig cand = TwoFieldCandidate();
  cand.classifier.mode = CombineMode::kDescGate;
  cand.use_descendants = false;
  ClusterSet child = ClusterSet::Singletons(4);
  CandidateInstances instances = WithDescendants(&cand, {{0, 1}, {2, 3}});
  SimilarityMeasure measure(cand, instances, {&child});
  auto verdict =
      measure.Compare(Row(0, {"same", "x"}), Row(1, {"same", "x"}));
  EXPECT_FALSE(verdict.used_descendants);
  EXPECT_TRUE(verdict.is_duplicate)
      << "gate disabled because descendants are disabled";
}

}  // namespace
}  // namespace sxnm::core
