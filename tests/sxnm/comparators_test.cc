#include "sxnm/comparators.h"

#include <gtest/gtest.h>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "sxnm/detector.h"
#include "xml/parser.h"

namespace sxnm::core {
namespace {

Config MovieOnlyConfig(size_t window, double threshold = 0.75) {
  Config config;
  auto movie = CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K5"}})
                   .Window(window)
                   .OdThreshold(threshold)
                   .Build();
  EXPECT_TRUE(movie.ok());
  EXPECT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  return config;
}

constexpr const char* kSmall = R"(
<db><movies>
  <movie><title>Silent Harbor</title></movie>
  <movie><title>Silent Harbour</title></movie>
  <movie><title>Ocean Storm</title></movie>
  <movie><title>Q</title></movie>
</movies></db>
)";

TEST(AllPairsDetectorTest, ComparesEveryPairWithoutFilter) {
  auto doc = xml::Parse(kSmall);
  ASSERT_TRUE(doc.ok());
  AllPairsOptions options;
  options.use_filter = false;
  AllPairsDetector detector(MovieOnlyConfig(2), options);
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->Find("movie")->comparisons, 6u);  // C(4,2)
  EXPECT_EQ(result->Find("movie")->duplicate_pairs,
            (std::vector<OrdinalPair>{{0, 1}}));
}

TEST(AllPairsDetectorTest, FilterSkipsHopelessPairsOnly) {
  auto doc = xml::Parse(kSmall);
  ASSERT_TRUE(doc.ok());
  AllPairsDetector with_filter(MovieOnlyConfig(2));
  AllPairsOptions no_filter_options;
  no_filter_options.use_filter = false;
  AllPairsDetector without(MovieOnlyConfig(2), no_filter_options);

  auto filtered = with_filter.Run(doc.value());
  auto unfiltered = without.Run(doc.value());
  ASSERT_TRUE(filtered.ok());
  ASSERT_TRUE(unfiltered.ok());
  EXPECT_EQ(filtered->Find("movie")->duplicate_pairs,
            unfiltered->Find("movie")->duplicate_pairs)
      << "the filter must not change the result";
  EXPECT_LT(filtered->Find("movie")->comparisons,
            unfiltered->Find("movie")->comparisons)
      << "length-incompatible pairs skipped";
}

TEST(AllPairsDetectorTest, RecallCeilingOverSxnm) {
  // All-pairs accepts a superset of what any window accepts.
  datagen::MovieDataOptions gen;
  gen.num_movies = 120;
  gen.seed = 3;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(5));
  ASSERT_TRUE(dirty.ok());

  auto sxnm_config = datagen::MovieConfig(4).value();
  auto result_sxnm = Detector(sxnm_config).Run(dirty.value());
  ASSERT_TRUE(result_sxnm.ok());
  auto result_all = AllPairsDetector(sxnm_config).Run(dirty.value());
  ASSERT_TRUE(result_all.ok());

  const auto& all_pairs = result_all->Find("movie")->duplicate_pairs;
  for (const auto& pair : result_sxnm->Find("movie")->duplicate_pairs) {
    EXPECT_NE(std::find(all_pairs.begin(), all_pairs.end(), pair),
              all_pairs.end());
  }
  EXPECT_GE(all_pairs.size(),
            result_sxnm->Find("movie")->duplicate_pairs.size());
}

// The paper's Sec. 2 motivating scenario: two movies share an actor; the
// movies themselves are NOT duplicates. Bottom-up SXNM finds the
// duplicate actors; DELPHI-style top-down cannot, because it only
// compares actors whose movies were clustered together.
constexpr const char* kMnScenario = R"(
<db><movies>
  <movie><title>First Unrelated Film</title>
    <cast><actor>Keanu Reeves</actor><actor>Don Davis</actor></cast>
  </movie>
  <movie><title>Second Distinct Movie</title>
    <cast><actor>Keanu Reeves</actor><actor>Hugo Weaving</actor></cast>
  </movie>
</movies></db>
)";

Config MovieActorConfig() {
  Config config;
  auto actor = CandidateBuilder("actor", "db/movies/movie/cast/actor")
                   .Path(1, "text()")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K4"}})
                   .Window(4)
                   .OdThreshold(0.9)
                   .Build();
  EXPECT_TRUE(actor.ok());
  EXPECT_TRUE(config.AddCandidate(std::move(actor).value()).ok());
  auto movie = CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K5"}})
                   .Window(4)
                   .OdThreshold(0.8)
                   .Build();
  EXPECT_TRUE(movie.ok());
  EXPECT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  return config;
}

TEST(TopDownDetectorTest, MissesMnActorDuplicates) {
  auto doc = xml::Parse(kMnScenario);
  ASSERT_TRUE(doc.ok());
  Config config = MovieActorConfig();

  // Bottom-up SXNM: the two Keanu Reeves instances cluster.
  auto bottom_up = Detector(config).Run(doc.value());
  ASSERT_TRUE(bottom_up.ok());
  EXPECT_EQ(bottom_up->Find("actor")->duplicate_pairs.size(), 1u);

  // Top-down: movies are not duplicates, so their actors are never
  // compared with each other.
  auto top_down = TopDownDetector(config).Run(doc.value());
  ASSERT_TRUE(top_down.ok());
  EXPECT_TRUE(top_down->Find("movie")->duplicate_pairs.empty());
  EXPECT_TRUE(top_down->Find("actor")->duplicate_pairs.empty())
      << "the 1:N pruning assumption misses the shared actor";
  EXPECT_EQ(top_down->Find("actor")->comparisons, 2u)
      << "only the intra-movie actor pairs are compared (one per movie)";
}

TEST(TopDownDetectorTest, FindsChildrenOfDuplicateParents) {
  constexpr const char* kDupMovies = R"(
<db><movies>
  <movie><title>The Matrix</title>
    <cast><actor>Keanu Reeves</actor></cast>
  </movie>
  <movie><title>The Matrxi</title>
    <cast><actor>Keanu Reevs</actor></cast>
  </movie>
</movies></db>
)";
  auto doc = xml::Parse(kDupMovies);
  ASSERT_TRUE(doc.ok());
  auto result = TopDownDetector(MovieActorConfig()).Run(doc.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("movie")->duplicate_pairs.size(), 1u);
  EXPECT_EQ(result->Find("actor")->duplicate_pairs.size(), 1u)
      << "actors of clustered movies are compared and matched";
}

TEST(TopDownDetectorTest, ProcessesParentsBeforeChildren) {
  auto doc = xml::Parse(kMnScenario);
  ASSERT_TRUE(doc.ok());
  auto result = TopDownDetector(MovieActorConfig()).Run(doc.value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 2u);
  EXPECT_EQ(result->candidates[0].name, "movie");
  EXPECT_EQ(result->candidates[1].name, "actor");
}

TEST(TopDownDetectorTest, RootWindowValidated) {
  auto doc = xml::Parse(kMnScenario);
  ASSERT_TRUE(doc.ok());
  TopDownOptions options;
  options.root_window = 1;
  auto result =
      TopDownDetector(MovieActorConfig(), options).Run(doc.value());
  EXPECT_FALSE(result.ok());
}

TEST(ComparatorsTest, AllDetectorsAgreeOnGeneratedDataQualityOrder) {
  // All-pairs recall >= SXNM recall >= top-down recall for descendants-
  // free movie config (top-down == SXNM for a root-only candidate with
  // same window, so use the movie/actor config on dirty data).
  datagen::MovieDataOptions gen;
  gen.num_movies = 150;
  gen.seed = 77;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(clean, datagen::FewDuplicatesPreset(7));
  ASSERT_TRUE(dirty.ok());

  Config config;
  auto person = CandidateBuilder(
                    "person", "movie_database/movies/movie/people/person")
                    .Path(1, "lastname/text()")
                    .Path(2, "firstname[1]/text()")
                    .Od(1, 0.6)
                    .Od(2, 0.4)
                    .Key({{1, "K1-K4"}})
                    .Window(6)
                    .OdThreshold(0.8)
                    .Build();
  ASSERT_TRUE(person.ok());
  ASSERT_TRUE(config.AddCandidate(std::move(person).value()).ok());
  auto movie = CandidateBuilder("movie", "movie_database/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K5"}})
                   .Window(6)
                   .OdThreshold(0.75)
                   .Build();
  ASSERT_TRUE(movie.ok());
  ASSERT_TRUE(config.AddCandidate(std::move(movie).value()).ok());

  auto gold = eval::GoldClusterSet(dirty.value(),
                                   "movie_database/movies/movie/people/person");
  ASSERT_TRUE(gold.ok());

  auto recall_of = [&](const DetectionResult& r) {
    return eval::PairwiseMetrics(gold.value(), r.Find("person")->clusters)
        .recall;
  };

  auto all = AllPairsDetector(config).Run(dirty.value());
  auto sxnm = Detector(config).Run(dirty.value());
  auto top = TopDownDetector(config).Run(dirty.value());
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(sxnm.ok());
  ASSERT_TRUE(top.ok());

  // All-pairs is the recall ceiling for both windowed/pruned algorithms.
  EXPECT_GE(recall_of(all.value()), recall_of(sxnm.value()));
  EXPECT_GE(recall_of(all.value()), recall_of(top.value()));
  // And it pays for that with the most comparisons.
  EXPECT_GE(all->Find("person")->comparisons,
            sxnm->Find("person")->comparisons);
  EXPECT_GE(all->Find("person")->comparisons,
            top->Find("person")->comparisons);
}

}  // namespace
}  // namespace sxnm::core
