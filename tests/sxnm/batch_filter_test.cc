// Batched SoA pre-filter soundness: BatchFilter may only reject a pair
// the comparison kernel would reject too — over random and adversarial
// OD values (embedded NULs, high-bit bytes, empties), every combine mode,
// with and without descendant information — and the SIMD kernels must
// agree with their scalar references to the last ulp. The "Batched"
// suite names place these under the sanitizer presets' ctest filters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "sxnm/similarity_measure.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace sxnm::core {
namespace {

TEST(BatchedSimdTest, AccumulateWeightedBoundMatchesScalarReference) {
  std::mt19937 rng(4242);
  std::uniform_real_distribution<float> mdist(1.0f, 64.0f);
  std::uniform_real_distribution<float> wdist(0.0f, 1.0f);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                   size_t{8}, size_t{13}, size_t{64}, size_t{257}}) {
    std::vector<float> d(n), m(n), w(n);
    for (size_t i = 0; i < n; ++i) {
      m[i] = mdist(rng);
      d[i] = std::uniform_real_distribution<float>(0.0f, m[i])(rng);
      w[i] = wdist(rng);
      if (i % 7 == 0) {  // parked zero-weight slot, per the contract
        d[i] = 0.0f;
        m[i] = 1.0f;
        w[i] = 0.0f;
      }
    }
    std::vector<float> acc(n, 0.25f), wsum(n, 0.5f);
    std::vector<float> acc_ref = acc, wsum_ref = wsum;
    util::simd::AccumulateWeightedBound(n, d.data(), m.data(), w.data(),
                                        acc.data(), wsum.data());
    util::simd::AccumulateWeightedBoundScalar(n, d.data(), m.data(), w.data(),
                                              acc_ref.data(),
                                              wsum_ref.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(acc[i], acc_ref[i]) << "n=" << n << " lane " << i;
      ASSERT_EQ(wsum[i], wsum_ref[i]) << "n=" << n << " lane " << i;
    }
  }
}

TEST(BatchedSimdTest, LessThanMaskMatchesScalarReference) {
  std::mt19937 rng(777);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  const float threshold = -1e-5f;
  for (size_t n : {size_t{1}, size_t{4}, size_t{7}, size_t{16}, size_t{129}}) {
    std::vector<float> x(n);
    for (float& v : x) v = dist(rng);
    // Edge lanes: exact threshold (strict compare), signed zeros,
    // infinities, NaN (never less-than in either backend).
    if (n >= 7) {
      x[0] = threshold;
      x[1] = 0.0f;
      x[2] = -0.0f;
      x[3] = std::numeric_limits<float>::infinity();
      x[4] = -std::numeric_limits<float>::infinity();
      x[5] = std::numeric_limits<float>::quiet_NaN();
      x[6] = std::nextafter(threshold, -1.0f);
    }
    std::vector<uint8_t> out(n, 0xcc), out_ref(n, 0xaa);
    util::simd::LessThanMask(n, x.data(), threshold, out.data());
    util::simd::LessThanMaskScalar(n, x.data(), threshold, out_ref.data());
    ASSERT_EQ(std::memcmp(out.data(), out_ref.data(), n), 0) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Differential soundness of the batched screen against the kernel.

GkRow Row(size_t ordinal, std::vector<std::string> ods, OdPool& pool) {
  GkRow row;
  row.ordinal = ordinal;
  row.eid = static_cast<xml::ElementId>(ordinal + 1);
  row.ods = std::move(ods);
  for (const std::string& od : row.ods) {
    row.norm_ods.push_back(
        pool.Intern(util::ToLower(util::NormalizeWhitespace(od))));
  }
  return row;
}

// Adversarial value pool: empties, near-duplicates, embedded NULs,
// high-bit bytes, single characters, long strings, values equal after
// normalization.
const std::vector<std::string>& Values() {
  static const std::vector<std::string> kValues = {
      "",
      "a",
      "b",
      "zz",
      "The  Matrix",
      "the matrix",
      "The Matrix Reloaded",
      "Mask of Zorro",
      "MASK OF ZORRO",
      "qxzz zz",
      "1999",
      "2000",
      std::string("nul\0inside", 10),
      std::string("nul\0insidf", 10),
      std::string("\0", 1),
      "\xff\xfe\x80",
      "tr\xc3\xa8s long titre avec beaucoup de caract\xc3\xa8res",
      "a very long object description that shares no characters",
  };
  return kValues;
}

std::vector<GkRow> RandomRows(size_t n, unsigned seed, size_t num_ods,
                              OdPool& pool) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> pick(0, Values().size() - 1);
  std::vector<GkRow> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> ods;
    for (size_t o = 0; o < num_ods; ++o) ods.push_back(Values()[pick(rng)]);
    rows.push_back(Row(i, std::move(ods), pool));
  }
  return rows;
}

std::vector<OrdinalPair> AllPairs(size_t n) {
  std::vector<OrdinalPair> pairs;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) pairs.push_back({i, j});
  }
  return pairs;
}

CandidateInstances Leaves(const CandidateConfig* config, size_t n) {
  CandidateInstances instances;
  instances.config = config;
  instances.elements.resize(n, nullptr);
  instances.eids.resize(n, 0);
  return instances;
}

// Runs the screen on every pair of `rows` and checks: (1) every rejected
// pair is rejected by CompareFast too (soundness); (2) at least one pair
// was rejected and one survived (the test bites both ways). Returns the
// reject count.
size_t CheckSoundness(const SimilarityMeasure& measure,
                      const std::vector<GkRow>& rows) {
  std::vector<OrdinalPair> pairs = AllPairs(rows.size());
  BatchFilterScratch scratch;
  measure.BatchFilter(rows, pairs.data(), pairs.size(), &scratch);

  size_t rejects = 0;
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (!scratch.reject[p]) continue;
    ++rejects;
    const GkRow& a = rows[pairs[p].first];
    const GkRow& b = rows[pairs[p].second];
    SimilarityVerdict verdict = measure.CompareFast(a, b);
    EXPECT_FALSE(verdict.is_duplicate)
        << "screen rejected a kernel-accepted pair: \"" << a.ods[0]
        << "\" vs \"" << b.ods[0] << "\" (ordinals " << pairs[p].first
        << ", " << pairs[p].second << ")";
  }
  EXPECT_GT(rejects, 0u) << "screen never fired; the test checks nothing";
  EXPECT_LT(rejects, pairs.size()) << "screen rejected everything";
  return rejects;
}

TEST(BatchedFilterTest, SoundOnEditOnlyCandidate) {
  CandidateConfig cand = CandidateBuilder("m", "db/m")
                             .Path(1, "t/text()")
                             .Od(1, 1.0)
                             .Key({{1, "C1"}})
                             .OdThreshold(0.9)
                             .Build()
                             .value();
  OdPool pool;
  std::vector<GkRow> rows = RandomRows(48, 1, 1, pool);
  CandidateInstances instances = Leaves(&cand, rows.size());
  SimilarityMeasure measure(cand, instances, {}, &pool);
  ASSERT_TRUE(measure.BatchFilterEligible(rows));
  CheckSoundness(measure, rows);
}

TEST(BatchedFilterTest, SoundWithNonEditComponentInTheMix) {
  // The second component's "exact" φ has no cheap bound: the screen must
  // park it at upper bound 1.0 and stay sound.
  CandidateConfig cand = CandidateBuilder("m", "db/m")
                             .Path(1, "t/text()")
                             .Path(2, "y/text()")
                             .Od(1, 0.8)
                             .Od(2, 0.2, "exact")
                             .Key({{1, "C1"}})
                             .OdThreshold(0.95)
                             .Build()
                             .value();
  OdPool pool;
  std::vector<GkRow> rows = RandomRows(40, 2, 2, pool);
  CandidateInstances instances = Leaves(&cand, rows.size());
  SimilarityMeasure measure(cand, instances, {}, &pool);
  ASSERT_TRUE(measure.BatchFilterEligible(rows));
  CheckSoundness(measure, rows);
}

TEST(BatchedFilterTest, SoundAcrossCombineModesWithDescendants) {
  std::mt19937 rng(5150);
  std::uniform_int_distribution<size_t> num_desc(0, 4);
  std::uniform_int_distribution<size_t> child(0, 11);

  for (CombineMode mode :
       {CombineMode::kAverage, CombineMode::kWeighted, CombineMode::kDescBoost,
        CombineMode::kDescGate}) {
    CandidateConfig cand = CandidateBuilder("m", "db/m")
                               .Path(1, "t/text()")
                               .Od(1, 1.0)
                               .Key({{1, "C1"}})
                               .OdThreshold(0.9)
                               .Mode(mode)
                               .Build()
                               .value();
    cand.classifier.desc_threshold = 0.6;
    cand.classifier.od_weight = 0.7;

    OdPool pool;
    std::vector<GkRow> rows = RandomRows(36, 3, 1, pool);
    CandidateInstances instances = Leaves(&cand, rows.size());
    instances.child_types = {1};
    std::vector<std::vector<size_t>> per_instance(rows.size());
    for (auto& list : per_instance) {
      list.resize(num_desc(rng));
      for (size_t& d : list) d = child(rng);
    }
    instances.desc_instances = {std::move(per_instance)};
    ClusterSet clusters = ClusterSet::FromClusters({{0, 1}, {2, 3, 4}}, 12);

    SimilarityMeasure measure(cand, instances, {&clusters}, &pool);
    ASSERT_TRUE(measure.BatchFilterEligible(rows));
    SCOPED_TRACE(CombineModeName(mode));
    CheckSoundness(measure, rows);
  }
}

TEST(BatchedFilterTest, RejectsAreStableAcrossBlockSplits) {
  // Element-wise screening: filtering the same pairs in one call or in
  // arbitrary sub-blocks must produce identical reject flags, so the
  // detector's batch size never shows in the results.
  CandidateConfig cand = CandidateBuilder("m", "db/m")
                             .Path(1, "t/text()")
                             .Od(1, 1.0)
                             .Key({{1, "C1"}})
                             .OdThreshold(0.9)
                             .Build()
                             .value();
  OdPool pool;
  std::vector<GkRow> rows = RandomRows(32, 4, 1, pool);
  CandidateInstances instances = Leaves(&cand, rows.size());
  SimilarityMeasure measure(cand, instances, {}, &pool);
  std::vector<OrdinalPair> pairs = AllPairs(rows.size());

  BatchFilterScratch whole;
  measure.BatchFilter(rows, pairs.data(), pairs.size(), &whole);
  std::vector<uint8_t> expected(whole.reject.begin(),
                                whole.reject.begin() +
                                    static_cast<long>(pairs.size()));

  BatchFilterScratch split;  // reused across blocks, like the detector's
  for (size_t block : {size_t{1}, size_t{7}, size_t{64}}) {
    std::vector<uint8_t> got;
    for (size_t start = 0; start < pairs.size(); start += block) {
      size_t n = std::min(block, pairs.size() - start);
      measure.BatchFilter(rows, pairs.data() + start, n, &split);
      got.insert(got.end(), split.reject.begin(),
                 split.reject.begin() + static_cast<long>(n));
    }
    EXPECT_EQ(got, expected) << "block=" << block;
  }
}

TEST(BatchedFilterTest, EligibilityGates) {
  CandidateConfig cand = CandidateBuilder("m", "db/m")
                             .Path(1, "t/text()")
                             .Od(1, 1.0)
                             .Key({{1, "C1"}})
                             .OdThreshold(0.9)
                             .Build()
                             .value();
  OdPool pool;
  std::vector<GkRow> rows = RandomRows(4, 5, 1, pool);
  CandidateInstances instances = Leaves(&cand, rows.size());

  {
    SimilarityMeasure measure(cand, instances, {}, &pool);
    EXPECT_TRUE(measure.BatchFilterEligible(rows));
  }
  {
    CandidateConfig off = cand;
    off.batch_scoring = false;
    SimilarityMeasure measure(off, instances, {}, &pool);
    EXPECT_FALSE(measure.BatchFilterEligible(rows));
  }
  {
    CandidateConfig off = cand;
    off.enable_fast_paths = false;
    off.batch_scoring = false;
    SimilarityMeasure measure(off, instances, {}, &pool);
    EXPECT_FALSE(measure.BatchFilterEligible(rows));
  }
  {
    // No pool: the rows' interned ids have nothing to resolve against.
    SimilarityMeasure measure(cand, instances, {});
    EXPECT_FALSE(measure.BatchFilterEligible(rows));
  }
  {
    // Hand-built rows without interned normalized ODs.
    std::vector<GkRow> bare = rows;
    bare[2].norm_ods.clear();
    SimilarityMeasure measure(cand, instances, {}, &pool);
    EXPECT_FALSE(measure.BatchFilterEligible(bare));
  }
}

}  // namespace
}  // namespace sxnm::core
