// Detector-level telemetry contract: enabling the live sampler must not
// perturb detection output for any thread count (the sampler only reads
// the registry), the stream's final sample must equal the end-of-run
// MetricsSnapshot, and config validation gates the new attributes. The
// suite name contains "Telemetry" so the tsan preset exercises the
// sampler thread against the engine's worker pool.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "sxnm/detector.h"
#include "xml/node.h"

namespace sxnm::core {
namespace {

xml::Document DirtyMovies(size_t num_movies, unsigned data_seed,
                          unsigned dirty_seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = data_seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty =
      datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(dirty_seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(TelemetryDetectorTest, TelemetryDoesNotPerturbDetection) {
  // Determinism across telemetry on/off and every thread count: the
  // sampler is read-only over the registry, so the duplicate pairs,
  // comparison counts, and every engine counter must be bit-identical.
  xml::Document dirty = DirtyMovies(150, 41, 7);
  auto config = datagen::MovieConfig(/*window=*/8);
  ASSERT_TRUE(config.ok());

  Config off_cfg = config.value();
  off_cfg.mutable_observability().metrics = true;
  auto baseline = Detector(off_cfg).Run(dirty);
  ASSERT_TRUE(baseline.ok());

  for (size_t threads : {size_t{1}, size_t{4}}) {
    Config cfg = config.value();
    cfg.set_num_threads(threads);
    cfg.mutable_observability().metrics = true;
    cfg.mutable_observability().telemetry_path =
        ::testing::TempDir() + "/telemetry_perturb_" +
        std::to_string(threads) + ".tlm.ndjsonl";
    // An aggressive interval maximizes sampler/engine overlap.
    cfg.mutable_observability().telemetry_interval_ms = 1.0;
    auto sampled = Detector(cfg).Run(dirty);
    ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
    SCOPED_TRACE("num_threads=" + std::to_string(threads));

    ASSERT_EQ(sampled->candidates.size(), baseline->candidates.size());
    for (size_t i = 0; i < baseline->candidates.size(); ++i) {
      EXPECT_EQ(sampled->candidates[i].duplicate_pairs,
                baseline->candidates[i].duplicate_pairs);
      EXPECT_EQ(sampled->candidates[i].comparisons,
                baseline->candidates[i].comparisons);
      EXPECT_EQ(sampled->candidates[i].clusters.clusters(),
                baseline->candidates[i].clusters.clusters());
    }
    // Every counter the baseline run collected is unchanged; the
    // telemetry run adds no counters beyond the progress family the
    // baseline also has (metrics on registers them either way).
    // Wall-clock timing counters (the `*_us` family) are the one
    // exception: they measure elapsed time, not work done.
    for (const auto& counter : baseline->metrics.counters) {
      if (counter.name.size() > 3 &&
          counter.name.compare(counter.name.size() - 3, 3, "_us") == 0) {
        continue;
      }
      EXPECT_EQ(sampled->metrics.CounterOr(counter.name), counter.value)
          << counter.name;
    }
  }
}

TEST(TelemetryDetectorTest, FinalSampleEqualsEndOfRunSnapshot) {
  xml::Document dirty = DirtyMovies(120, 21, 5);
  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  std::string path = ::testing::TempDir() + "/telemetry_final.tlm.ndjsonl";
  cfg.mutable_observability().telemetry_path = path;
  cfg.mutable_observability().telemetry_interval_ms = 1.0;
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_GE(lines.size(), 2u);  // header + at least the final sample
  EXPECT_NE(lines[0].find("\"type\": \"header\""), std::string::npos);
  const std::string& final_line = lines.back();
  EXPECT_NE(final_line.find("\"final\": true"), std::string::npos);
  EXPECT_NE(final_line.find("\"phase\": 4"), std::string::npos);
  EXPECT_NE(final_line.find("\"phase_name\": \"done\""), std::string::npos);

  // Stop() takes the final sample after the worker joined and before
  // the detector snapshots the registry into the result: the stream's
  // last line must carry exactly the result's counters.
  for (const char* name :
       {"sw.comparisons", "sw.pairs_windowed", "sw.pairs_done", "kg.rows",
        "kg.rows_done", "tc.pairs", "tc.edges_done"}) {
    uint64_t value = result->metrics.CounterOr(name);
    std::string needle = "\"" + std::string(name) + "\": " +
                         std::to_string(value);
    EXPECT_NE(final_line.find(needle), std::string::npos) << needle;
  }

  // Progress closure at quiescence: done == planned for every phase.
  EXPECT_EQ(result->metrics.CounterOr("kg.rows_done"),
            result->metrics.CounterOr("kg.rows"));
  EXPECT_EQ(result->metrics.CounterOr("sw.pairs_done"),
            result->metrics.CounterOr("sw.pairs_windowed"));
  EXPECT_EQ(result->metrics.CounterOr("tc.edges_done"),
            result->metrics.CounterOr("tc.pairs"));
}

TEST(TelemetryDetectorTest, ProgressGaugesPublishPlannedTotals) {
  xml::Document dirty = DirtyMovies(100, 31, 3);
  auto config = datagen::MovieConfig(/*window=*/8);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok());

  // kg.rows_total is set from the forest before key generation; with an
  // ungoverned run every planned row materializes.
  EXPECT_EQ(uint64_t(result->metrics.GaugeOr("kg.rows_total", 0.0)),
            result->metrics.CounterOr("kg.rows"));
  // The pre-governance pair plan bounds the work actually windowed.
  EXPECT_GE(uint64_t(result->metrics.GaugeOr("sw.pairs_planned_total", 0.0)),
            result->metrics.CounterOr("sw.pairs_done"));
  EXPECT_EQ(int(result->metrics.GaugeOr("progress.phase", -1.0)), 4);
  // The verdict-cache occupancy gauge lands in [0, 1].
  double occupancy = result->metrics.GaugeOr("cache.verdict_occupancy", -1.0);
  EXPECT_GE(occupancy, 0.0);
  EXPECT_LE(occupancy, 1.0);
}

TEST(TelemetryDetectorTest, TelemetryWithoutMetricsFailsValidation) {
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().telemetry_path = "/tmp/never_written.ndjsonl";
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.mutable_observability().metrics = true;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.mutable_observability().telemetry_interval_ms = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.mutable_observability().telemetry_interval_ms = -5.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(TelemetryDetectorTest, UnwritableTelemetryPathFailsTheRun) {
  xml::Document dirty = DirtyMovies(40, 11, 1);
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  cfg.mutable_observability().telemetry_path =
      "/nonexistent-dir-sxnm/run.tlm.ndjsonl";
  auto result = Detector(cfg).Run(dirty);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace sxnm::core
