#include "sxnm/key_generation.h"

#include <gtest/gtest.h>

#include "sxnm/candidate_tree.h"
#include "xml/parser.h"

namespace sxnm::core {
namespace {

constexpr const char* kDoc = R"(
<movie_database>
  <movies>
    <movie ID="5342" year="1999">
      <title>Matrix</title>
    </movie>
    <movie year="1998">
      <title>Mask of Zorro</title>
    </movie>
    <movie>
      <title></title>
    </movie>
  </movies>
</movie_database>
)";

// The paper's Tab. 1 configuration for <movie>.
CandidateConfig Table1Movie() {
  return CandidateBuilder("movie", "movie_database/movies/movie")
      .Path(1, "title/text()")
      .Path(2, "@ID")
      .Path(3, "@year")
      .Od(1, 0.8)
      .Od(3, 0.2)
      .Key({{1, "K1,K2"}, {3, "D3,D4"}})  // KEY_movie,1
      .Key({{2, "D1"}, {1, "C1,C2"}})     // KEY_movie,2
      .Build()
      .value();
}

GkTable BuildGk(const xml::Document& doc, const CandidateConfig& cand) {
  Config config;
  EXPECT_TRUE(config.AddCandidate(cand).ok());
  auto forest = CandidateForest::Build(config, doc);
  EXPECT_TRUE(forest.ok());
  return GenerateKeys(*forest->candidates()[0].config,
                      forest->candidates()[0]);
}

TEST(KeyGenerationTest, PaperTable2Example) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  GkTable gk = BuildGk(doc.value(), Table1Movie());

  ASSERT_EQ(gk.rows.size(), 3u);
  EXPECT_EQ(gk.num_keys, 2u);
  EXPECT_EQ(gk.num_od, 2u);

  // Tab. 2(a): the Matrix movie yields keys MT99 and 5MA, ODs Matrix/1999.
  const GkRow& matrix = gk.rows[0];
  EXPECT_EQ(matrix.keys[0], "MT99");
  EXPECT_EQ(matrix.keys[1], "5MA");
  EXPECT_EQ(matrix.ods[0], "Matrix");
  EXPECT_EQ(matrix.ods[1], "1999");
}

TEST(KeyGenerationTest, MissingValuesYieldShortKeys) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  GkTable gk = BuildGk(doc.value(), Table1Movie());

  // Movie 2 has no @ID: key 2 degenerates to the title part only.
  const GkRow& zorro = gk.rows[1];
  EXPECT_EQ(zorro.keys[0], "MS98");
  EXPECT_EQ(zorro.keys[1], "MA");

  // Movie 3 has an empty title and no attributes at all.
  const GkRow& empty = gk.rows[2];
  EXPECT_EQ(empty.keys[0], "");
  EXPECT_EQ(empty.keys[1], "");
  EXPECT_EQ(empty.ods[0], "");
  EXPECT_EQ(empty.ods[1], "");
}

TEST(KeyGenerationTest, EidsMatchDocumentIds) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  GkTable gk = BuildGk(doc.value(), Table1Movie());
  for (const GkRow& row : gk.rows) {
    const xml::Element* e = doc->ElementById(row.eid);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->name(), "movie");
  }
  EXPECT_EQ(gk.rows[0].ordinal, 0u);
  EXPECT_EQ(gk.rows[2].ordinal, 2u);
}

TEST(KeyGenerationTest, PartsConcatenatedInOrderAttribute) {
  // Same parts, reversed order attribute: key reverses.
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  CandidateConfig cand =
      CandidateBuilder("movie", "movie_database/movies/movie")
          .Path(1, "title/text()")
          .Path(3, "@year")
          .Od(1, 1.0)
          .Key({{3, "D3,D4"}, {1, "K1,K2"}})
          .Build()
          .value();
  GkTable gk = BuildGk(doc.value(), cand);
  EXPECT_EQ(gk.rows[0].keys[0], "99MT");
}

TEST(GkTableTest, SortedOrderLexicographic) {
  GkTable table;
  table.num_keys = 1;
  table.rows = {{0, 0, {"MT99"}, {}, {}, {}},
                {1, 1, {"AB12"}, {}, {}, {}},
                {2, 2, {"ZZ"}, {}, {}, {}},
                {3, 3, {""}, {}, {}, {}}};
  auto order = table.SortedOrder(0);
  EXPECT_EQ(order, (std::vector<size_t>{3, 1, 0, 2}))
      << "empty key sorts first";
}

TEST(GkTableTest, SortIsStableOnTies) {
  GkTable table;
  table.num_keys = 1;
  table.rows = {{0, 0, {"X"}, {}, {}, {}},
                {1, 1, {"X"}, {}, {}, {}},
                {2, 2, {"A"}, {}, {}, {}}};
  auto order = table.SortedOrder(0);
  EXPECT_EQ(order, (std::vector<size_t>{2, 0, 1}))
      << "equal keys keep instance order";
}

TEST(KeyGenerationTest, EmptyInstanceList) {
  CandidateConfig cand = Table1Movie();
  GkTable gk = GenerateKeys(cand, {}, {});
  EXPECT_TRUE(gk.rows.empty());
  EXPECT_EQ(gk.num_keys, 2u);
}

TEST(KeyGenerationTest, FirstValueUsedWhenPathMatchesMany) {
  auto doc = xml::Parse(
      "<db><m><t>First Title</t><t>Second Title</t></m></db>");
  ASSERT_TRUE(doc.ok());
  CandidateConfig cand = CandidateBuilder("m", "db/m")
                             .Path(1, "t/text()")
                             .Od(1, 1.0)
                             .Key({{1, "C1-C5"}})
                             .Build()
                             .value();
  GkTable gk = BuildGk(doc.value(), cand);
  ASSERT_EQ(gk.rows.size(), 1u);
  EXPECT_EQ(gk.rows[0].keys[0], "FIRST");
  EXPECT_EQ(gk.rows[0].ods[0], "First Title");
}

}  // namespace
}  // namespace sxnm::core
