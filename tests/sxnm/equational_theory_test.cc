#include "sxnm/equational_theory.h"

#include <gtest/gtest.h>

#include "sxnm/config.h"
#include "sxnm/config_xml.h"
#include "sxnm/detector.h"
#include "xml/parser.h"

namespace sxnm::core {
namespace {

TEST(EquationalTheoryTest, EmptyTheoryNeverFires) {
  EquationalTheory theory;
  EXPECT_TRUE(theory.empty());
  EXPECT_FALSE(theory.Fires({1.0}, {1}, 1.0));
}

TEST(EquationalTheoryTest, SingleConditionRule) {
  EquationalTheory theory({Rule{{{1, 0.9}}}});
  EXPECT_TRUE(theory.Fires({0.95}, {1}, -1.0));
  EXPECT_TRUE(theory.Fires({0.9}, {1}, -1.0)) << "boundary inclusive";
  EXPECT_FALSE(theory.Fires({0.89}, {1}, -1.0));
}

TEST(EquationalTheoryTest, ConjunctionWithinRule) {
  EquationalTheory theory({Rule{{{1, 0.8}, {2, 0.7}}}});
  EXPECT_TRUE(theory.Fires({0.9, 0.75}, {1, 2}, -1.0));
  EXPECT_FALSE(theory.Fires({0.9, 0.6}, {1, 2}, -1.0));
  EXPECT_FALSE(theory.Fires({0.7, 0.9}, {1, 2}, -1.0));
}

TEST(EquationalTheoryTest, DisjunctionAcrossRules) {
  EquationalTheory theory({
      Rule{{{1, 0.95}}},            // near-exact id match suffices...
      Rule{{{2, 0.8}, {3, 0.8}}},   // ...or both names match well
  });
  EXPECT_TRUE(theory.Fires({0.99, 0.0, 0.0}, {1, 2, 3}, -1.0));
  EXPECT_TRUE(theory.Fires({0.0, 0.85, 0.82}, {1, 2, 3}, -1.0));
  EXPECT_FALSE(theory.Fires({0.9, 0.85, 0.5}, {1, 2, 3}, -1.0));
}

TEST(EquationalTheoryTest, DescendantCondition) {
  EquationalTheory theory(
      {Rule{{{1, 0.7}, {RuleCondition::kDescendants, 0.3}}}});
  EXPECT_TRUE(theory.Fires({0.8}, {1}, 0.5));
  EXPECT_FALSE(theory.Fires({0.8}, {1}, 0.1));
  EXPECT_FALSE(theory.Fires({0.8}, {1}, -1.0))
      << "no descendant info -> descendant condition fails";
}

TEST(EquationalTheoryTest, UnknownPidFailsCondition) {
  EquationalTheory theory({Rule{{{99, 0.1}}}});
  EXPECT_FALSE(theory.Fires({1.0}, {1}, 1.0));
}

TEST(EquationalTheoryTest, ValidateCatchesProblems) {
  EXPECT_TRUE(EquationalTheory({Rule{{{1, 0.5}}}}).Validate({1, 2}).ok());
  EXPECT_FALSE(EquationalTheory({Rule{}}).Validate({1}).ok())
      << "empty rule";
  EXPECT_FALSE(EquationalTheory({Rule{{{7, 0.5}}}}).Validate({1}).ok())
      << "unknown pid";
  EXPECT_FALSE(EquationalTheory({Rule{{{1, 1.5}}}}).Validate({1}).ok())
      << "similarity out of range";
  EXPECT_TRUE(EquationalTheory(
                  {Rule{{{RuleCondition::kDescendants, 0.3}}}})
                  .Validate({1})
                  .ok())
      << "descendant condition needs no pid";
}

// --- Integration: theory drives the detector ------------------------------

constexpr const char* kDoc = R"(
<db>
  <disc><did>abc12345</did><dtitle>Silent Harbor</dtitle></disc>
  <disc><did>abc12345</did><dtitle>Completely Other</dtitle></disc>
  <disc><did>zzz99999</did><dtitle>Silent Harbour</dtitle></disc>
  <disc><did>qqq11111</did><dtitle>Unrelated Disc</dtitle></disc>
</db>
)";

Config TheoryConfig() {
  Config config;
  auto disc = CandidateBuilder("disc", "db/disc")
                  .Path(1, "did/text()")
                  .Path(2, "dtitle/text()")
                  .Od(1, 0.5)
                  .Od(2, 0.5)
                  .Key({{2, "K1-K5"}})
                  .Window(4)
                  .OdThreshold(0.99)  // would find almost nothing alone
                  .TheoryRule({{1, 1.0}})          // exact disc id match
                  .TheoryRule({{2, 0.9}})          // or near-equal title
                  .Build()
                  .value();
  EXPECT_TRUE(config.AddCandidate(std::move(disc)).ok());
  return config;
}

TEST(EquationalTheoryDetectorTest, RulesReplaceThreshold) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  Detector detector(TheoryConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const CandidateResult* disc = result->Find("disc");
  // Rule 1 links discs 0 and 1 (same did, very different titles, so the
  // 0.99 OD threshold alone would reject); rule 2 links 0 and 2 (titles
  // within edit sim 0.9, different dids). Disc 3 stays alone.
  ASSERT_EQ(disc->duplicate_pairs.size(), 2u);
  EXPECT_EQ(disc->duplicate_pairs[0], (OrdinalPair{0, 1}));
  EXPECT_EQ(disc->duplicate_pairs[1], (OrdinalPair{0, 2}));
}

TEST(EquationalTheoryDetectorTest, InvalidTheoryRejectedByValidate) {
  Config config;
  auto disc = CandidateBuilder("disc", "db/disc")
                  .Path(1, "did/text()")
                  .Od(1, 1.0)
                  .Key({{1, "C1-C4"}})
                  .TheoryRule({{42, 0.5}})  // pid 42 is not an OD entry
                  .Build()
                  .value();
  ASSERT_TRUE(config.AddCandidate(std::move(disc)).ok());
  EXPECT_FALSE(config.Validate().ok());
}

TEST(EquationalTheoryDetectorTest, RoundTripsThroughConfigXml) {
  Config config = TheoryConfig();
  // Serialize, reparse, compare theories.
  auto reparsed = ConfigFromXmlString(ConfigToXmlString(config));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->Find("disc")->theory, config.Find("disc")->theory);

  // Same detection outcome.
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  auto a = Detector(config).Run(doc.value());
  auto b = Detector(reparsed.value()).Run(doc.value());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Find("disc")->duplicate_pairs,
            b->Find("disc")->duplicate_pairs);
}

}  // namespace
}  // namespace sxnm::core
