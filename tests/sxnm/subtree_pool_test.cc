// SubtreePool hash-consing must realize exactly the xml::StructurallyEqual
// relation: equal interned ids if and only if the subtrees are
// structurally identical. These tests probe the canonical encoding with
// clones, single-aspect perturbations, concatenation-ambiguous shapes,
// and random trees over a tiny vocabulary (so shape collisions actually
// occur). The "Dag" suite name places them under the sanitizer presets'
// ctest filters together with the detector-level DAG tests.

#include "sxnm/subtree_pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "xml/node.h"
#include "xml/structure.h"

namespace sxnm::core {
namespace {

std::unique_ptr<xml::Element> MovieTree() {
  auto movie = std::make_unique<xml::Element>("movie");
  movie->SetAttribute("year", "1999");
  movie->SetAttribute("length", "136");
  movie->AddElement("title")->AddText("The Matrix");
  xml::Element* people = movie->AddElement("people");
  xml::Element* person = people->AddElement("person");
  person->AddElement("lastname")->AddText("Reeves");
  person->AddElement("firstname")->AddText("Keanu");
  movie->AddChild(std::make_unique<xml::CommentNode>("re-release"));
  return movie;
}

TEST(DagSubtreePoolTest, CloneInternsToSameId) {
  SubtreePool pool;
  std::unique_ptr<xml::Element> original = MovieTree();
  std::unique_ptr<xml::Element> clone = original->Clone();
  ASSERT_TRUE(xml::StructurallyEqual(*original, *clone));

  SubtreeRef a = pool.Intern(*original);
  size_t distinct_after_first = pool.num_nodes();
  SubtreeRef b = pool.Intern(*clone);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.num_nodes(), distinct_after_first)
      << "re-interning a clone must add no DAG nodes";
  EXPECT_EQ(pool.nodes_seen(), 2 * distinct_after_first)
      << "every DOM node of the clone was walked again";
  EXPECT_GT(pool.bytes(), 0u);
}

TEST(DagSubtreePoolTest, DefaultRefIsInvalid) {
  SubtreeRef ref;
  EXPECT_FALSE(ref.valid());
  SubtreePool pool;
  EXPECT_NE(pool.Intern(*MovieTree()), ref);
}

// Each perturbation touches exactly one aspect of node identity; all of
// them must both break StructurallyEqual and produce a fresh id.
TEST(DagSubtreePoolTest, EveryIdentityAspectChangesTheId) {
  std::vector<std::pair<const char*, std::unique_ptr<xml::Element>>> variants;

  {
    auto t = MovieTree();
    t->set_name("film");
    variants.emplace_back("element name", std::move(t));
  }
  {
    auto t = MovieTree();
    t->SetAttribute("year", "1998");
    variants.emplace_back("attribute value", std::move(t));
  }
  {
    auto t = MovieTree();
    t->RemoveAttribute("length");
    t->SetAttribute("runtime", "136");
    variants.emplace_back("attribute name", std::move(t));
  }
  {
    auto t = MovieTree();
    t->RemoveAttribute("year");
    variants.emplace_back("attribute dropped", std::move(t));
  }
  {
    auto t = std::make_unique<xml::Element>("movie");
    // Same attributes in the opposite order.
    t->SetAttribute("length", "136");
    t->SetAttribute("year", "1999");
    auto reference = MovieTree();
    for (size_t i = reference->NumChildren(); i > 0; --i) {
      t->AddChild(reference->TakeChild(0));
    }
    variants.emplace_back("attribute order", std::move(t));
  }
  {
    auto t = MovieTree();
    static_cast<xml::TextNode*>(
        t->FirstChildElement("title")->children()[0].get())
        ->set_text("The Matrix Reloaded");
    variants.emplace_back("text payload", std::move(t));
  }
  {
    auto t = MovieTree();
    // Same payload as the comment, but as a text node.
    t->RemoveChild(t->NumChildren() - 1);
    t->AddText("re-release");
    variants.emplace_back("comment vs text kind", std::move(t));
  }
  {
    auto t = MovieTree();
    // Swap <title> and <people>.
    std::unique_ptr<xml::Node> title = t->TakeChild(0);
    std::unique_ptr<xml::Node> people = t->TakeChild(0);
    t->AddChild(std::move(people));
    t->AddChild(std::move(title));
    variants.emplace_back("child order", std::move(t));
  }
  {
    auto t = MovieTree();
    t->AddElement("review")->AddText("ok");
    variants.emplace_back("extra child", std::move(t));
  }

  SubtreePool pool;
  std::unique_ptr<xml::Element> base = MovieTree();
  SubtreeRef base_id = pool.Intern(*base);
  for (auto& [what, tree] : variants) {
    EXPECT_FALSE(xml::StructurallyEqual(*base, *tree)) << what;
    EXPECT_NE(pool.Intern(*tree), base_id) << what;
  }
}

// Text and CDATA carry the same payload type but different node kinds.
TEST(DagSubtreePoolTest, TextAndCdataAreDistinct) {
  auto text = std::make_unique<xml::Element>("e");
  text->AddChild(std::make_unique<xml::TextNode>("payload", /*cdata=*/false));
  auto cdata = std::make_unique<xml::Element>("e");
  cdata->AddChild(std::make_unique<xml::TextNode>("payload", /*cdata=*/true));

  EXPECT_FALSE(xml::StructurallyEqual(*text, *cdata));
  SubtreePool pool;
  EXPECT_NE(pool.Intern(*text), pool.Intern(*cdata));
}

// Shapes whose naive (unprefixed) concatenations coincide: the canonical
// encoding must keep field boundaries.
TEST(DagSubtreePoolTest, ConcatenationAmbiguitiesDoNotCollide) {
  std::vector<std::pair<std::unique_ptr<xml::Element>,
                        std::unique_ptr<xml::Element>>> pairs;

  {
    // <ab>c</ab> vs <a>bc</a>.
    auto left = std::make_unique<xml::Element>("ab");
    left->AddText("c");
    auto right = std::make_unique<xml::Element>("a");
    right->AddText("bc");
    pairs.emplace_back(std::move(left), std::move(right));
  }
  {
    // x="yz" vs xy="z".
    auto left = std::make_unique<xml::Element>("e");
    left->SetAttribute("x", "yz");
    auto right = std::make_unique<xml::Element>("e");
    right->SetAttribute("xy", "z");
    pairs.emplace_back(std::move(left), std::move(right));
  }
  {
    // Two text children "ab"+"c" vs one text child "abc".
    auto left = std::make_unique<xml::Element>("e");
    left->AddText("ab");
    left->AddText("c");
    auto right = std::make_unique<xml::Element>("e");
    right->AddText("abc");
    pairs.emplace_back(std::move(left), std::move(right));
  }
  {
    // One attribute "a"="" + name "b" vs attribute "ab"="" — empty values
    // must still delimit.
    auto left = std::make_unique<xml::Element>("e");
    left->SetAttribute("a", "");
    left->SetAttribute("b", "");
    auto right = std::make_unique<xml::Element>("e");
    right->SetAttribute("ab", "");
    pairs.emplace_back(std::move(left), std::move(right));
  }

  SubtreePool pool;
  for (auto& [left, right] : pairs) {
    ASSERT_FALSE(xml::StructurallyEqual(*left, *right));
    EXPECT_NE(pool.Intern(*left), pool.Intern(*right));
  }
}

// Embedded NULs and high-bit bytes are ordinary payload bytes.
TEST(DagSubtreePoolTest, NulAndHighBitBytesParticipateInIdentity) {
  const std::string with_nul("a\0b", 3);
  const std::string with_other_nul("a\0c", 3);
  const std::string high_bit = "a\xff\x80";

  auto e1 = std::make_unique<xml::Element>("e");
  e1->AddText(with_nul);
  auto e2 = std::make_unique<xml::Element>("e");
  e2->AddText(with_other_nul);
  auto e3 = std::make_unique<xml::Element>("e");
  e3->AddText("ab");
  auto e4 = std::make_unique<xml::Element>("e");
  e4->AddText(high_bit);
  auto e5 = std::make_unique<xml::Element>("e");
  e5->SetAttribute("k", with_nul);

  SubtreePool pool;
  SubtreeRef r1 = pool.Intern(*e1);
  SubtreeRef r2 = pool.Intern(*e2);
  SubtreeRef r3 = pool.Intern(*e3);
  SubtreeRef r4 = pool.Intern(*e4);
  SubtreeRef r5 = pool.Intern(*e5);
  EXPECT_NE(r1, r2);
  EXPECT_NE(r1, r3);
  EXPECT_NE(r1, r4);
  EXPECT_NE(r1, r5);
  EXPECT_NE(r2, r3);

  // And clones with the same weird bytes still coincide.
  EXPECT_EQ(pool.Intern(*e1->Clone()), r1);
  EXPECT_EQ(pool.Intern(*e4->Clone()), r4);
}

// The core property, over random trees drawn from a vocabulary small
// enough that structurally identical trees are frequent: for every pair,
// id equality must coincide with xml::StructurallyEqual.
TEST(DagSubtreePoolTest, IdEqualityMatchesStructuralEqualityOnRandomTrees) {
  std::mt19937 rng(20260808);
  const std::vector<std::string> names = {"a", "b"};
  const std::vector<std::string> texts = {"", "x", std::string("n\0l", 3),
                                          "\xff\x80"};
  const std::vector<std::string> attr_values = {"", "1"};

  auto coin = [&rng](double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng) < p;
  };
  auto pick = [&rng](const std::vector<std::string>& v) -> const std::string& {
    return v[std::uniform_int_distribution<size_t>(0, v.size() - 1)(rng)];
  };

  // Recursive lambda via explicit self-parameter.
  auto build = [&](auto&& self, int depth) -> std::unique_ptr<xml::Element> {
    auto e = std::make_unique<xml::Element>(pick(names));
    if (coin(0.4)) e->SetAttribute("k", pick(attr_values));
    std::uniform_int_distribution<int> num_children(0, depth > 0 ? 2 : 0);
    int children = num_children(rng);
    for (int c = 0; c < children; ++c) {
      switch (std::uniform_int_distribution<int>(0, 3)(rng)) {
        case 0:
          e->AddChild(self(self, depth - 1));
          break;
        case 1:
          e->AddChild(std::make_unique<xml::TextNode>(pick(texts)));
          break;
        case 2:
          e->AddChild(
              std::make_unique<xml::TextNode>(pick(texts), /*cdata=*/true));
          break;
        case 3:
          e->AddChild(std::make_unique<xml::CommentNode>(pick(texts)));
          break;
      }
    }
    return e;
  };

  constexpr size_t kTrees = 64;
  std::vector<std::unique_ptr<xml::Element>> trees;
  trees.reserve(kTrees);
  for (size_t i = 0; i < kTrees; ++i) trees.push_back(build(build, 3));

  SubtreePool pool;
  std::vector<SubtreeRef> ids;
  ids.reserve(kTrees);
  for (const auto& tree : trees) ids.push_back(pool.Intern(*tree));

  size_t equal_pairs = 0;
  for (size_t i = 0; i < kTrees; ++i) {
    for (size_t j = i + 1; j < kTrees; ++j) {
      const bool structural = xml::StructurallyEqual(*trees[i], *trees[j]);
      ASSERT_EQ(ids[i] == ids[j], structural)
          << "trees " << i << " and " << j;
      if (structural) ++equal_pairs;
    }
  }
  // The vocabulary is tiny on purpose; without collisions the test would
  // only ever exercise the inequality direction.
  EXPECT_GT(equal_pairs, 0u) << "vocabulary too large to collide";
  EXPECT_LT(pool.num_nodes(), pool.nodes_seen())
      << "random trees over two tags must share some subtree shapes";
}

}  // namespace
}  // namespace sxnm::core
