#include "sxnm/sliding_window.h"

#include <gtest/gtest.h>

#include <set>

namespace sxnm::core {
namespace {

std::vector<std::pair<size_t, size_t>> Collect(const std::vector<size_t>& order,
                                               size_t window) {
  std::vector<std::pair<size_t, size_t>> pairs;
  ForEachWindowPair(order, window, [&](size_t a, size_t b) {
    pairs.emplace_back(a, b);
  });
  return pairs;
}

TEST(SlidingWindowTest, WindowTwoIsAdjacentPairs) {
  auto pairs = Collect({10, 20, 30, 40}, 2);
  EXPECT_EQ(pairs, (std::vector<std::pair<size_t, size_t>>{
                       {10, 20}, {20, 30}, {30, 40}}));
}

TEST(SlidingWindowTest, WindowThree) {
  auto pairs = Collect({0, 1, 2, 3}, 3);
  // i=1: (0,1); i=2: (0,2),(1,2); i=3: (1,3),(2,3).
  EXPECT_EQ(pairs, (std::vector<std::pair<size_t, size_t>>{
                       {0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}));
}

TEST(SlidingWindowTest, WindowCoversExactlyDistanceLessThanW) {
  // Property: pair (i, j) with |i - j| < w visited exactly once.
  const size_t n = 20;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  for (size_t w : {2u, 3u, 5u, 7u, 19u, 50u}) {
    std::set<std::pair<size_t, size_t>> seen;
    size_t visits = 0;
    ForEachWindowPair(order, w, [&](size_t a, size_t b) {
      ++visits;
      EXPECT_LT(a, b);
      EXPECT_LT(b - a, w) << "pair outside window";
      EXPECT_TRUE(seen.insert({a, b}).second) << "pair visited twice";
    });
    // Every pair within distance < w is present.
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n && j - i < w; ++j) {
        EXPECT_TRUE(seen.count({i, j})) << i << "," << j << " w=" << w;
      }
    }
    EXPECT_EQ(visits, WindowPairCount(n, w));
  }
}

TEST(SlidingWindowTest, WindowAtLeastNIsAllPairs) {
  std::vector<size_t> order = {0, 1, 2, 3, 4};
  auto pairs = Collect(order, 5);
  EXPECT_EQ(pairs.size(), 10u);  // C(5,2)
  auto pairs_larger = Collect(order, 100);
  EXPECT_EQ(pairs_larger.size(), 10u);
}

TEST(SlidingWindowTest, EmptyAndSingleton) {
  EXPECT_TRUE(Collect({}, 3).empty());
  EXPECT_TRUE(Collect({7}, 3).empty());
}

TEST(WindowPairCountTest, ClosedForm) {
  EXPECT_EQ(WindowPairCount(0, 2), 0u);
  EXPECT_EQ(WindowPairCount(1, 2), 0u);
  EXPECT_EQ(WindowPairCount(5, 2), 4u);
  EXPECT_EQ(WindowPairCount(5, 5), 10u);
  EXPECT_EQ(WindowPairCount(5, 50), 10u);
  // n=10, w=3: 1 + 2*8 = 17.
  EXPECT_EQ(WindowPairCount(10, 3), 17u);
}

TEST(SlidingWindowTest, LinearInNForFixedWindow) {
  // Comparisons grow linearly with n (the paper's efficiency argument):
  // doubling n roughly doubles the count for fixed w.
  size_t c1 = WindowPairCount(1000, 10);
  size_t c2 = WindowPairCount(2000, 10);
  EXPECT_NEAR(static_cast<double>(c2) / static_cast<double>(c1), 2.0, 0.02);
}

}  // namespace
}  // namespace sxnm::core
