#include "sxnm/dedup_writer.h"

#include <gtest/gtest.h>

#include "sxnm/detector.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xml/xpath.h"

namespace sxnm::core {
namespace {

constexpr const char* kDoc = R"(
<db>
  <movies>
    <movie><title>The Matrix</title><note>rich version with extras</note></movie>
    <movie><title>The Matrxi</title></movie>
    <movie><title>Unique Film</title></movie>
  </movies>
</db>
)";

Config MovieConfig() {
  Config config;
  auto movie = CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K5"}})
                   .Window(3)
                   .OdThreshold(0.8)
                   .Build();
  EXPECT_TRUE(movie.ok());
  EXPECT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  return config;
}

TEST(DedupWriterTest, RemovesAllButRepresentative) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->Find("movie")->duplicate_pairs.size(), 1u);

  DedupStats stats;
  auto deduped = Deduplicate(doc.value(), result.value(),
                             RepresentativeStrategy::kFirst, &stats);
  ASSERT_TRUE(deduped.ok()) << deduped.status().ToString();
  EXPECT_EQ(stats.clusters_collapsed, 1u);
  EXPECT_EQ(stats.elements_removed, 1u);

  auto movies = xml::XPath::Parse("db/movies/movie")
                    .value()
                    .SelectFromRoot(deduped.value());
  ASSERT_TRUE(movies.ok());
  EXPECT_EQ(movies->size(), 2u);
}

TEST(DedupWriterTest, FirstStrategyKeepsDocumentOrderFirst) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  auto deduped =
      Deduplicate(doc.value(), result.value(), RepresentativeStrategy::kFirst);
  ASSERT_TRUE(deduped.ok());
  std::string out = xml::WriteDocument(deduped.value());
  EXPECT_NE(out.find("The Matrix"), std::string::npos);
  EXPECT_EQ(out.find("The Matrxi"), std::string::npos);
}

TEST(DedupWriterTest, RichestStrategyKeepsMostContent) {
  // Make the *second* instance the rich one.
  constexpr const char* kRichSecond = R"(
<db><movies>
  <movie><title>The Matrix</title></movie>
  <movie><title>The Matrxi</title><note>much longer subtree text here</note></movie>
</movies></db>
)";
  auto doc = xml::Parse(kRichSecond);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->Find("movie")->duplicate_pairs.size(), 1u);

  auto deduped = Deduplicate(doc.value(), result.value(),
                             RepresentativeStrategy::kRichest);
  ASSERT_TRUE(deduped.ok());
  std::string out = xml::WriteDocument(deduped.value());
  EXPECT_NE(out.find("The Matrxi"), std::string::npos)
      << "richest member kept";
  EXPECT_EQ(out.find("<title>The Matrix</title>"), std::string::npos);
}

TEST(DedupWriterTest, OriginalDocumentUntouched) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  size_t before = doc->element_count();
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  auto deduped = Deduplicate(doc.value(), result.value());
  ASSERT_TRUE(deduped.ok());
  EXPECT_EQ(doc->element_count(), before);
  EXPECT_LT(deduped->element_count(), before);
}

TEST(DedupWriterTest, NoDuplicatesIsIdentityModuloClone) {
  auto doc = xml::Parse("<db><movies><movie><title>Only One</title></movie>"
                        "</movies></db>");
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  DedupStats stats;
  auto deduped = Deduplicate(doc.value(), result.value(),
                             RepresentativeStrategy::kRichest, &stats);
  ASSERT_TRUE(deduped.ok());
  EXPECT_EQ(stats.clusters_collapsed, 0u);
  EXPECT_EQ(stats.elements_removed, 0u);
  EXPECT_EQ(xml::WriteDocument(deduped.value()),
            xml::WriteDocument(doc.value()));
}

TEST(DedupWriterTest, OutputIsWellFormed) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  auto deduped = Deduplicate(doc.value(), result.value());
  ASSERT_TRUE(deduped.ok());
  auto reparsed = xml::Parse(xml::WriteDocument(deduped.value()));
  EXPECT_TRUE(reparsed.ok()) << reparsed.status().ToString();
}

TEST(DedupWriterTest, EmptyDocumentRejected) {
  xml::Document empty;
  DetectionResult result;
  EXPECT_FALSE(Deduplicate(empty, result).ok());
}

}  // namespace
}  // namespace sxnm::core
