// Shard/out-of-core identity: key-range sharded window passes and the
// external-sort order stage must be invisible in every observable
// output. The suite pins shards ∈ {1,2,4} × threads ∈ {1,4} × memory
// budget ∈ {0, tiny} against the unsharded in-memory baseline —
// duplicate pairs, clusters, comparison counts, deterministic counters,
// and the explain byte stream all bit-identical.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "extsort/extsort.h"
#include "persist/io.h"
#include "sxnm/detector.h"
#include "util/fault_injection.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::core {
namespace {

xml::Document DirtyMovies(size_t num_movies, unsigned data_seed,
                          unsigned dirty_seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = data_seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty =
      datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(dirty_seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

std::string SpillDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void ExpectIdenticalResults(const DetectionResult& a,
                            const DetectionResult& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    const CandidateResult& ca = a.candidates[i];
    const CandidateResult& cb = b.candidates[i];
    SCOPED_TRACE(ca.name);
    EXPECT_EQ(ca.name, cb.name);
    EXPECT_EQ(ca.num_instances, cb.num_instances);
    EXPECT_EQ(ca.duplicate_pairs, cb.duplicate_pairs);
    EXPECT_EQ(ca.duplicate_eid_pairs, cb.duplicate_eid_pairs);
    EXPECT_EQ(ca.comparisons, cb.comparisons);
    EXPECT_EQ(ca.clusters.clusters(), cb.clusters.clusters());
  }
  EXPECT_EQ(a.TotalComparisons(), b.TotalComparisons());
}

// The deterministic counting counters: totals must not depend on the
// shard count, thread count, or memory budget. (Run-shape families —
// extsort.*, shard.*, persist.*, wall-time — are excluded by contract.)
void ExpectIdenticalCounters(const DetectionResult& a,
                             const DetectionResult& b) {
  for (const char* name :
       {"sw.pairs_windowed", "sw.comparisons", "sw.hits", "sw.prepass_skips",
        "sw.verdict_cache_hits", "sw.dag_equal", "sw.batch_rejects",
        "sw.unique_comparisons", "sw.unique_duplicates", "sw.prepass_pairs",
        "kg.rows_done"}) {
    EXPECT_EQ(a.metrics.CounterOr(name, 0), b.metrics.CounterOr(name, 0))
        << name;
  }
}

TEST(ShardedDetectorTest, ShardsThreadsAndBudgetDoNotChangeResults) {
  xml::Document dirty = DirtyMovies(300, 101, 7);
  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());
  Config baseline_config = config.value();
  baseline_config.mutable_observability().metrics = true;

  auto baseline = Detector(baseline_config).Run(dirty);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string dir = SpillDir("sharded_identity");
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      for (uint64_t budget : {uint64_t{0}, uint64_t{16 * 1024}}) {
        Config c = baseline_config;
        c.set_shards(shards);
        c.set_num_threads(threads);
        c.set_memory_budget_bytes(budget);
        c.set_spill_dir(dir);
        auto sharded = Detector(c).Run(dirty);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads) +
                     " budget=" + std::to_string(budget));
        ExpectIdenticalResults(baseline.value(), sharded.value());
        ExpectIdenticalCounters(baseline.value(), sharded.value());
        if (budget > 0) {
          EXPECT_GT(sharded->metrics.CounterOr("extsort.rows", 0), 0u);
          EXPECT_GT(sharded->metrics.CounterOr("extsort.spilled_runs", 0), 0u)
              << "a 16KiB budget must spill on 300 movies";
        }
        if (shards > 1) {
          EXPECT_EQ(sharded->metrics.GaugeOr("shard.count", 0.0),
                    static_cast<double>(shards));
          EXPECT_GT(sharded->metrics.CounterOr("shard.overlap_rows", 0), 0u);
        } else {
          EXPECT_EQ(sharded->metrics.CounterOr("shard.tasks", 0), 0u)
              << "shards=1 must not publish shard.* telemetry";
        }
      }
    }
  }
  EXPECT_TRUE(std::filesystem::is_empty(dir))
      << "spill files must not outlive their pass";
}

TEST(ShardedDetectorTest, ExplainBytesIdenticalAcrossShardsAndBudget) {
  xml::Document dirty = DirtyMovies(120, 55, 9);
  auto config = datagen::MovieConfig(/*window=*/8);
  ASSERT_TRUE(config.ok());
  std::string dir = SpillDir("sharded_explain");

  Config base = config.value();
  base.mutable_observability().metrics = true;
  base.mutable_observability().explain_path = dir + "/baseline.ndjson";
  auto baseline = Detector(base).Run(dirty);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto baseline_bytes =
      persist::ReadFileToString(base.observability().explain_path);
  ASSERT_TRUE(baseline_bytes.ok());

  for (size_t shards : {size_t{2}, size_t{4}}) {
    Config c = config.value();
    c.set_shards(shards);
    c.set_num_threads(4);
    c.set_memory_budget_bytes(8 * 1024);
    c.set_spill_dir(dir);
    c.mutable_observability().metrics = true;
    c.mutable_observability().explain_path =
        dir + "/sharded" + std::to_string(shards) + ".ndjson";
    auto sharded = Detector(c).Run(dirty);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    auto sharded_bytes =
        persist::ReadFileToString(c.observability().explain_path);
    ASSERT_TRUE(sharded_bytes.ok());
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(*baseline_bytes, *sharded_bytes)
        << "explain byte stream must not depend on the shard count";
  }
}

TEST(ShardedDetectorTest, MultiCandidateForestShardsIdentically) {
  // Three candidates across two forest depths (title and person feed
  // movie through descendant similarity): sharding must compose with
  // the bottom-up level scheduling and cluster-set reuse.
  xml::Document dirty = DirtyMovies(200, 41, 6);
  auto config = datagen::MovieScalabilityConfig(/*window=*/5);
  ASSERT_TRUE(config.ok());

  auto baseline = Detector(config.value()).Run(dirty);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->candidates.size(), 3u);

  Config c = config.value();
  c.set_shards(3);
  c.set_num_threads(4);
  c.set_memory_budget_bytes(32 * 1024);
  c.set_spill_dir(SpillDir("sharded_forest"));
  auto sharded = Detector(c).Run(dirty);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectIdenticalResults(baseline.value(), sharded.value());
}

TEST(ShardedDetectorTest, AdaptiveWindowsShardIdentically) {
  xml::Document dirty = DirtyMovies(150, 77, 2);
  auto config = datagen::MovieConfig(/*window=*/4);
  ASSERT_TRUE(config.ok());
  Config adaptive = config.value();
  for (CandidateConfig& cand : adaptive.mutable_candidates()) {
    cand.window_policy = WindowPolicy::kAdaptivePrefix;
    cand.max_window = 20;
    cand.adaptive_prefix_len = 4;
  }

  auto baseline = Detector(adaptive).Run(dirty);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (size_t shards : {size_t{2}, size_t{5}}) {
    Config c = adaptive;
    c.set_shards(shards);
    c.set_num_threads(4);
    c.set_memory_budget_bytes(8 * 1024);
    c.set_spill_dir(SpillDir("sharded_adaptive"));
    auto sharded = Detector(c).Run(dirty);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ExpectIdenticalResults(baseline.value(), sharded.value());
  }
}

TEST(ShardedDetectorTest, GovernanceBudgetComposesWithShards) {
  // A comparison budget plans per pass, before sharding: the shrunk
  // boundary pass and the shed tail must be the same set for any shard
  // count, and the degradation report with them.
  xml::Document dirty = DirtyMovies(200, 31, 4);
  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());
  Config governed = config.value();
  governed.mutable_limits().max_comparisons = 5000;

  auto baseline = Detector(governed).Run(dirty);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  Config c = governed;
  c.set_shards(4);
  c.set_num_threads(4);
  auto sharded = Detector(c).Run(dirty);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectIdenticalResults(baseline.value(), sharded.value());
  ASSERT_EQ(baseline->degradation.passes.size(),
            sharded->degradation.passes.size());
  for (size_t i = 0; i < baseline->degradation.passes.size(); ++i) {
    const PassDegradation& pa = baseline->degradation.passes[i];
    const PassDegradation& pb = sharded->degradation.passes[i];
    EXPECT_EQ(pa.candidate, pb.candidate);
    EXPECT_EQ(pa.key_index, pb.key_index);
    EXPECT_EQ(pa.skipped, pb.skipped);
    EXPECT_EQ(pa.window_used, pb.window_used);
    EXPECT_EQ(pa.pairs_elided, pb.pairs_elided);
  }
}

TEST(ShardedDetectorTest, SpillFaultAbortsTheRunCleanly) {
  xml::Document dirty = DirtyMovies(100, 11, 1);
  auto config = datagen::MovieConfig(/*window=*/5);
  ASSERT_TRUE(config.ok());
  Config c = config.value();
  c.set_memory_budget_bytes(1024);
  std::string dir = SpillDir("sharded_spill_fault");
  c.set_spill_dir(dir);
  util::ScopedFault fault(extsort::kSpillFaultSite);
  auto result = Detector(c).Run(dirty);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_TRUE(std::filesystem::is_empty(dir))
      << "a failed run must not leak spill files";
}

TEST(ShardedDetectorTest, CheckpointResumeAllowsDifferentShardCount) {
  // shards / memory-budget are run-shape knobs excluded from the config
  // fingerprint: a snapshot taken unsharded must resume sharded (and
  // vice versa) with identical output, exactly like num_threads.
  xml::Document dirty = DirtyMovies(150, 23, 8);
  auto config = datagen::MovieScalabilityConfig(/*window=*/5);
  ASSERT_TRUE(config.ok());

  auto baseline = Detector(config.value()).Run(dirty);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string dir = SpillDir("sharded_resume");
  std::string ckpt = dir + "/engine.ckpt";
  {
    // First attempt: checkpoint every level, then die at the second
    // level's window stage (title and person each run one pass at the
    // first level; hit 3 is movie's pass).
    Config c = config.value();
    RunOptions options;
    options.checkpoint_path = ckpt;
    options.checkpoint_every_pass = true;
    util::ScopedFault fault("detector.pass", /*fire_on_hit=*/3);
    auto first = Detector(c).Run(dirty, options);
    ASSERT_FALSE(first.ok());
  }
  ASSERT_TRUE(persist::PathExists(ckpt));
  Config resumed_config = config.value();
  resumed_config.set_shards(4);
  resumed_config.set_memory_budget_bytes(16 * 1024);
  resumed_config.set_spill_dir(dir);
  RunOptions options;
  options.checkpoint_path = ckpt;
  auto resumed = Detector(resumed_config).Run(dirty, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdenticalResults(baseline.value(), resumed.value());
}

}  // namespace
}  // namespace sxnm::core
