#include "sxnm/config_xml.h"

#include <gtest/gtest.h>

namespace sxnm::core {
namespace {

constexpr const char* kConfigXml = R"xml(
<sxnm-config>
  <candidate name="movie" path="movie_database/movies/movie" window="10"
             use-descendants="true">
    <paths>
      <path id="1" rel="title/text()"/>
      <path id="2" rel="@ID"/>
      <path id="3" rel="@year"/>
    </paths>
    <od>
      <entry pid="1" relevance="0.8"/>
      <entry pid="3" relevance="0.2" similarity="numeric:10"/>
    </od>
    <keys>
      <key>
        <part pid="1" order="1" pattern="K1,K2"/>
        <part pid="3" order="2" pattern="D3,D4"/>
      </key>
      <key>
        <part pid="2" order="1" pattern="D1"/>
        <part pid="1" order="2" pattern="C1,C2"/>
      </key>
    </keys>
    <classifier mode="average" od-threshold="0.7" desc-threshold="0.4"
                od-weight="0.6"/>
  </candidate>
  <candidate name="person" path="movie_database/movies/movie/people/person"
             window="4">
    <paths><path id="1" rel="text()"/></paths>
    <od><entry pid="1" relevance="1"/></od>
    <keys><key><part pid="1" pattern="K1-K4"/></key></keys>
  </candidate>
</sxnm-config>
)xml";

TEST(ConfigXmlTest, ParsesPaperStyleConfig) {
  auto config = ConfigFromXmlString(kConfigXml);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  ASSERT_EQ(config->candidates().size(), 2u);

  const CandidateConfig* movie = config->Find("movie");
  ASSERT_NE(movie, nullptr);
  EXPECT_EQ(movie->absolute_path.ToString(), "movie_database/movies/movie");
  EXPECT_EQ(movie->window_size, 10u);
  EXPECT_EQ(movie->paths.size(), 3u);
  EXPECT_EQ(movie->od.size(), 2u);
  EXPECT_DOUBLE_EQ(movie->od[0].relevance, 0.8);
  EXPECT_EQ(movie->od[1].similarity_name, "numeric:10");
  ASSERT_EQ(movie->keys.size(), 2u);
  EXPECT_EQ(movie->keys[0].parts[0].pattern.ToString(), "K1,K2");
  EXPECT_EQ(movie->keys[1].parts[0].pid, 2);
  EXPECT_EQ(movie->classifier.mode, CombineMode::kAverage);
  EXPECT_DOUBLE_EQ(movie->classifier.od_threshold, 0.7);
  EXPECT_DOUBLE_EQ(movie->classifier.desc_threshold, 0.4);
  EXPECT_DOUBLE_EQ(movie->classifier.od_weight, 0.6);

  const CandidateConfig* person = config->Find("person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(person->window_size, 4u);
}

TEST(ConfigXmlTest, PartsSortedByExplicitOrder) {
  auto config = ConfigFromXmlString(R"xml(
<sxnm-config>
  <candidate name="m" path="db/m">
    <paths><path id="1" rel="a/text()"/><path id="2" rel="b/text()"/></paths>
    <od><entry pid="1" relevance="1"/></od>
    <keys>
      <key>
        <part pid="2" order="2" pattern="C1"/>
        <part pid="1" order="1" pattern="K1"/>
      </key>
    </keys>
  </candidate>
</sxnm-config>)xml");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const auto& parts = config->Find("m")->keys[0].parts;
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].pid, 1) << "order=1 part first";
  EXPECT_EQ(parts[1].pid, 2);
}

TEST(ConfigXmlTest, RoundTripsThroughXml) {
  auto original = ConfigFromXmlString(kConfigXml);
  ASSERT_TRUE(original.ok());
  std::string serialized = ConfigToXmlString(original.value());
  auto reparsed = ConfigFromXmlString(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString()
                             << "\n" << serialized;
  ASSERT_EQ(reparsed->candidates().size(), original->candidates().size());
  for (size_t i = 0; i < original->candidates().size(); ++i) {
    const CandidateConfig& a = original->candidates()[i];
    const CandidateConfig& b = reparsed->candidates()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.absolute_path, b.absolute_path);
    EXPECT_EQ(a.window_size, b.window_size);
    EXPECT_EQ(a.use_descendants, b.use_descendants);
    EXPECT_EQ(a.classifier.mode, b.classifier.mode);
    EXPECT_DOUBLE_EQ(a.classifier.od_threshold, b.classifier.od_threshold);
    ASSERT_EQ(a.paths.size(), b.paths.size());
    for (size_t p = 0; p < a.paths.size(); ++p) {
      EXPECT_EQ(a.paths[p].id, b.paths[p].id);
      EXPECT_EQ(a.paths[p].path, b.paths[p].path);
    }
    ASSERT_EQ(a.keys.size(), b.keys.size());
    for (size_t k = 0; k < a.keys.size(); ++k) {
      ASSERT_EQ(a.keys[k].parts.size(), b.keys[k].parts.size());
      for (size_t q = 0; q < a.keys[k].parts.size(); ++q) {
        EXPECT_EQ(a.keys[k].parts[q].pid, b.keys[k].parts[q].pid);
        EXPECT_EQ(a.keys[k].parts[q].pattern, b.keys[k].parts[q].pattern);
      }
    }
  }
}

TEST(ConfigXmlTest, ParsesObservabilityElement) {
  std::string xml = kConfigXml;
  std::string insert =
      "  <observability metrics=\"on\" trace=\"/tmp/t.json\" "
      "report=\"/tmp/r.json\"/>\n  <candidate";
  xml.replace(xml.find("  <candidate"), 12, insert);
  auto config = ConfigFromXmlString(xml);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_TRUE(config->observability().metrics);
  EXPECT_EQ(config->observability().trace_path, "/tmp/t.json");
  EXPECT_EQ(config->observability().report_path, "/tmp/r.json");
}

TEST(ConfigXmlTest, ObservabilityRoundTripsThroughXml) {
  auto original = ConfigFromXmlString(kConfigXml);
  ASSERT_TRUE(original.ok());
  // Default (everything off) serializes without the element.
  EXPECT_EQ(ConfigToXmlString(original.value()).find("observability"),
            std::string::npos);

  original->mutable_observability().metrics = true;
  original->mutable_observability().trace_path = "trace.json";
  original->mutable_observability().report_path = "report.json";
  std::string serialized = ConfigToXmlString(original.value());
  auto reparsed = ConfigFromXmlString(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << serialized;
  EXPECT_TRUE(reparsed->observability().metrics);
  EXPECT_EQ(reparsed->observability().trace_path, "trace.json");
  EXPECT_EQ(reparsed->observability().report_path, "report.json");
}

TEST(ConfigXmlTest, ExplainAttributeRoundTripsThroughXml) {
  std::string xml = kConfigXml;
  std::string insert =
      "  <observability metrics=\"on\" explain=\"explain.ndjson\"/>\n"
      "  <candidate";
  xml.replace(xml.find("  <candidate"), 12, insert);
  auto config = ConfigFromXmlString(xml);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->observability().explain_path, "explain.ndjson");

  std::string serialized = ConfigToXmlString(config.value());
  EXPECT_NE(serialized.find("explain=\"explain.ndjson\""),
            std::string::npos)
      << serialized;
  auto reparsed = ConfigFromXmlString(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->observability().explain_path, "explain.ndjson");
}

TEST(ConfigXmlTest, ExplainWithoutMetricsRejected) {
  // The explain log rides on the metrics layer (pass stats, counters);
  // asking for it with metrics off is a config error, same as report.
  std::string xml = kConfigXml;
  std::string insert =
      "  <observability metrics=\"off\" explain=\"/tmp/e.ndjson\"/>\n"
      "  <candidate";
  xml.replace(xml.find("  <candidate"), 12, insert);
  EXPECT_FALSE(ConfigFromXmlString(xml).ok());
}

TEST(ConfigXmlTest, ObservabilityReportWithoutMetricsRejected) {
  std::string xml = kConfigXml;
  std::string insert =
      "  <observability metrics=\"off\" report=\"/tmp/r.json\"/>\n"
      "  <candidate";
  xml.replace(xml.find("  <candidate"), 12, insert);
  auto config = ConfigFromXmlString(xml);
  EXPECT_FALSE(config.ok());
}

TEST(ConfigXmlTest, WrongRootRejected) {
  auto config = ConfigFromXmlString("<not-a-config/>");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), util::StatusCode::kParseError);
}

TEST(ConfigXmlTest, MissingRequiredAttributesRejected) {
  EXPECT_FALSE(ConfigFromXmlString(
                   "<sxnm-config><candidate name=\"x\"/></sxnm-config>")
                   .ok())
      << "missing path attribute";
  EXPECT_FALSE(ConfigFromXmlString(
                   "<sxnm-config><candidate path=\"a/b\"/></sxnm-config>")
                   .ok())
      << "missing name attribute";
}

TEST(ConfigXmlTest, InvalidConfigFailsValidation) {
  // Parses but has no OD/keys: Validate() must reject.
  auto config = ConfigFromXmlString(R"xml(
<sxnm-config>
  <candidate name="m" path="db/m">
    <paths><path id="1" rel="t/text()"/></paths>
  </candidate>
</sxnm-config>)xml");
  EXPECT_FALSE(config.ok());
}

TEST(ConfigXmlTest, BadWindowRejected) {
  auto config = ConfigFromXmlString(R"xml(
<sxnm-config>
  <candidate name="m" path="db/m" window="1">
    <paths><path id="1" rel="t/text()"/></paths>
    <od><entry pid="1"/></od>
    <keys><key><part pid="1" pattern="C1"/></key></keys>
  </candidate>
</sxnm-config>)xml");
  EXPECT_FALSE(config.ok());
}

TEST(ConfigXmlTest, BadBooleanRejected) {
  auto config = ConfigFromXmlString(R"xml(
<sxnm-config>
  <candidate name="m" path="db/m" use-descendants="maybe">
    <paths><path id="1" rel="t/text()"/></paths>
    <od><entry pid="1"/></od>
    <keys><key><part pid="1" pattern="C1"/></key></keys>
  </candidate>
</sxnm-config>)xml");
  EXPECT_FALSE(config.ok());
}

TEST(ConfigXmlTest, BadCombineModeRejected) {
  auto config = ConfigFromXmlString(R"xml(
<sxnm-config>
  <candidate name="m" path="db/m">
    <paths><path id="1" rel="t/text()"/></paths>
    <od><entry pid="1"/></od>
    <keys><key><part pid="1" pattern="C1"/></key></keys>
    <classifier mode="nonsense"/>
  </candidate>
</sxnm-config>)xml");
  EXPECT_FALSE(config.ok());
}

TEST(ConfigXmlTest, MalformedXmlRejected) {
  EXPECT_FALSE(ConfigFromXmlString("<sxnm-config>").ok());
}

TEST(ConfigXmlTest, MissingFileRejected) {
  EXPECT_FALSE(ConfigFromXmlFile("/no/such/config.xml").ok());
}

TEST(ConfigXmlTest, DefaultsApplied) {
  auto config = ConfigFromXmlString(R"xml(
<sxnm-config>
  <candidate name="m" path="db/m">
    <paths><path id="1" rel="t/text()"/></paths>
    <od><entry pid="1"/></od>
    <keys><key><part pid="1" pattern="C1"/></key></keys>
  </candidate>
</sxnm-config>)xml");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const CandidateConfig* m = config->Find("m");
  EXPECT_EQ(m->window_size, 10u) << "builder default";
  EXPECT_TRUE(m->use_descendants);
  EXPECT_DOUBLE_EQ(m->od[0].relevance, 1.0);
  EXPECT_EQ(m->od[0].similarity_name, "edit");
  EXPECT_TRUE(m->dag_compression) << "dag defaults on";
  EXPECT_TRUE(m->batch_scoring) << "batch-scoring default follows fast-paths";
}

// The dag / batch-scoring candidate attributes (see docs/CONFIG.md):
// parse, defaulting, and the coupling to fast-paths.
std::string DagCandidateXml(const std::string& attrs) {
  return R"xml(
<sxnm-config>
  <candidate name="m" path="db/m" )xml" +
         attrs + R"xml(>
    <paths><path id="1" rel="t/text()"/></paths>
    <od><entry pid="1"/></od>
    <keys><key><part pid="1" pattern="C1"/></key></keys>
  </candidate>
</sxnm-config>)xml";
}

TEST(ConfigXmlTest, DagAndBatchScoringAttributesParse) {
  struct Case {
    const char* attrs;
    bool dag;
    bool batch;
  };
  const Case cases[] = {
      {"", true, true},
      {"dag=\"false\"", false, true},
      {"batch-scoring=\"false\"", true, false},
      {"dag=\"false\" batch-scoring=\"false\"", false, false},
      // Turning fast paths off drops the batch default with it; the DAG
      // shortcut is independent of the fast paths.
      {"fast-paths=\"false\"", true, false},
      {"fast-paths=\"false\" dag=\"false\"", false, false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.attrs);
    auto config = ConfigFromXmlString(DagCandidateXml(c.attrs));
    ASSERT_TRUE(config.ok()) << config.status().ToString();
    const CandidateConfig* m = config->Find("m");
    EXPECT_EQ(m->dag_compression, c.dag);
    EXPECT_EQ(m->batch_scoring, c.batch);
  }
}

TEST(ConfigXmlTest, DagAndBatchScoringRoundTripThroughXml) {
  for (const char* attrs :
       {"", "dag=\"false\"", "batch-scoring=\"false\"",
        "dag=\"false\" batch-scoring=\"false\"", "fast-paths=\"false\""}) {
    SCOPED_TRACE(attrs);
    auto original = ConfigFromXmlString(DagCandidateXml(attrs));
    ASSERT_TRUE(original.ok()) << original.status().ToString();
    auto reparsed = ConfigFromXmlString(ConfigToXmlString(original.value()));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    const CandidateConfig* a = original->Find("m");
    const CandidateConfig* b = reparsed->Find("m");
    EXPECT_EQ(a->enable_fast_paths, b->enable_fast_paths);
    EXPECT_EQ(a->dag_compression, b->dag_compression);
    EXPECT_EQ(a->batch_scoring, b->batch_scoring);
  }
}

TEST(ConfigXmlTest, BatchScoringWithoutFastPathsRejected) {
  // batch-scoring="true" explicitly contradicts fast-paths="false": the
  // SoA screen reproduces the bounded kernel's decisions, so it cannot
  // run against the exact-only kernel (Config::Validate rule).
  auto config = ConfigFromXmlString(
      DagCandidateXml("fast-paths=\"false\" batch-scoring=\"true\""));
  EXPECT_FALSE(config.ok());
}

std::string OutOfCoreConfigXml(const std::string& root_attrs) {
  return "<sxnm-config " + root_attrs + R"xml(>
  <candidate name="m" path="db/m">
    <paths><path id="1" rel="a/text()"/></paths>
    <od><entry pid="1" relevance="1"/></od>
    <keys><key><part pid="1" pattern="K1"/></key></keys>
  </candidate>
</sxnm-config>)xml";
}

TEST(ConfigXmlTest, OutOfCoreAttributesParse) {
  auto config = ConfigFromXmlString(OutOfCoreConfigXml(
      "shards=\"4\" memory-budget=\"64M\" spill-dir=\"/tmp/sxnm\""));
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->shards(), 4u);
  EXPECT_EQ(config->memory_budget_bytes(), 64ull * 1024 * 1024);
  EXPECT_EQ(config->spill_dir(), "/tmp/sxnm");
}

TEST(ConfigXmlTest, MemoryBudgetSuffixesAreCaseInsensitive) {
  struct Case {
    const char* text;
    uint64_t bytes;
  };
  for (const Case& c : {Case{"4096", 4096ull}, Case{"64k", 64ull * 1024},
                        Case{"64K", 64ull * 1024},
                        Case{"256m", 256ull * 1024 * 1024},
                        Case{"2G", 2ull * 1024 * 1024 * 1024}}) {
    SCOPED_TRACE(c.text);
    auto config = ConfigFromXmlString(OutOfCoreConfigXml(
        std::string("memory-budget=\"") + c.text + "\""));
    ASSERT_TRUE(config.ok()) << config.status().ToString();
    EXPECT_EQ(config->memory_budget_bytes(), c.bytes);
  }
}

TEST(ConfigXmlTest, OutOfCoreAttributesRoundTripThroughXml) {
  for (const char* attrs :
       {"", "shards=\"3\"", "memory-budget=\"128K\"",
        "shards=\"8\" memory-budget=\"1G\" spill-dir=\"/var/tmp\""}) {
    SCOPED_TRACE(attrs);
    auto original = ConfigFromXmlString(OutOfCoreConfigXml(attrs));
    ASSERT_TRUE(original.ok()) << original.status().ToString();
    std::string serialized = ConfigToXmlString(original.value());
    auto reparsed = ConfigFromXmlString(serialized);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(reparsed->shards(), original->shards());
    EXPECT_EQ(reparsed->memory_budget_bytes(),
              original->memory_budget_bytes());
    EXPECT_EQ(reparsed->spill_dir(), original->spill_dir());
    if (std::string(attrs).empty()) {
      // Defaults stay implicit: no new attributes on legacy configs.
      EXPECT_EQ(serialized.find("shards"), std::string::npos);
      EXPECT_EQ(serialized.find("memory-budget"), std::string::npos);
      EXPECT_EQ(serialized.find("spill-dir"), std::string::npos);
    }
  }
}

TEST(ConfigXmlTest, BadOutOfCoreAttributesRejected) {
  EXPECT_FALSE(
      ConfigFromXmlString(OutOfCoreConfigXml("shards=\"0\"")).ok());
  EXPECT_FALSE(
      ConfigFromXmlString(OutOfCoreConfigXml("shards=\"-2\"")).ok());
  EXPECT_FALSE(
      ConfigFromXmlString(OutOfCoreConfigXml("memory-budget=\"abc\"")).ok());
  EXPECT_FALSE(
      ConfigFromXmlString(OutOfCoreConfigXml("memory-budget=\"64Q\"")).ok());
  EXPECT_FALSE(
      ConfigFromXmlString(OutOfCoreConfigXml("memory-budget=\"\"")).ok());
}

TEST(ConfigXmlTest, BadDagBooleanRejected) {
  EXPECT_FALSE(ConfigFromXmlString(DagCandidateXml("dag=\"maybe\"")).ok());
  EXPECT_FALSE(
      ConfigFromXmlString(DagCandidateXml("batch-scoring=\"0.5\"")).ok());
}

}  // namespace
}  // namespace sxnm::core
