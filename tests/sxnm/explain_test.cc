// Decision-provenance explain log: every unique duplicate pair shows up
// with an accepting classification, per-provenance record counts
// reconcile with the engine counters, the NDJSON byte stream is
// identical for any thread count (the "Parallel" names put these under
// the tsan preset), and governed runs log their shed passes.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "obs/explain.h"
#include "sxnm/detector.h"
#include "xml/node.h"

namespace sxnm::core {
namespace {

xml::Document DirtyMovies(size_t num_movies, unsigned data_seed,
                          unsigned dirty_seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = data_seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty =
      datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(dirty_seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream content;
  content << in.rdbuf();
  return content.str();
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// Value of an integer field on one NDJSON line; requires the key to be
// present (keys like "a" are safe: every occurrence is quoted, so "a":
// cannot match inside "eid_a").
long long ExtractInt(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " in " << line;
  return std::strtoll(line.c_str() + pos + needle.size(), nullptr, 10);
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

Config ExplainConfig(size_t window, const std::string& path) {
  auto config = datagen::MovieConfig(window);
  EXPECT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  cfg.mutable_observability().explain_path = path;
  return cfg;
}

TEST(ExplainLogTest, DisabledLogIsInert) {
  obs::ExplainLog log(/*enabled=*/false);
  log.AppendCandidate("movie", 0, 10, 2, 5, "fixed", 0.75);
  log.AppendPair("movie", 0, 1, 2, 11, 12, 1,
                 obs::PairProvenance::kOwned, nullptr, true);
  log.AppendMerge("movie", 1, 2, 1, 2, 1, true);
  EXPECT_TRUE(log.text().empty());
  EXPECT_EQ(log.pair_records(), 0u);
}

TEST(ExplainLogTest, TalliesFollowProvenance) {
  obs::ExplainLog log(/*enabled=*/true);
  log.AppendPair("m", 0, 0, 1, 5, 6, 1, obs::PairProvenance::kOwned,
                 nullptr, true);
  log.AppendPair("m", 1, 0, 1, 5, 6, 2, obs::PairProvenance::kVerdictCache,
                 nullptr, true);
  log.AppendPair("m", -1, 2, 3, 7, 8, 0, obs::PairProvenance::kPrepass,
                 nullptr, true);
  EXPECT_EQ(log.owned_pairs(), 1u);
  EXPECT_EQ(log.cache_pairs(), 1u);
  EXPECT_EQ(log.prepass_pairs(), 1u);
  EXPECT_EQ(log.pair_records(), 3u);
  // NDJSON: one record per line, every line a closed object.
  std::vector<std::string> lines = Lines(log.text());
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(ExplainLogTest, ExplainPathWithoutMetricsFailsValidation) {
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().explain_path = "/tmp/never_written.ndjson";
  auto status = cfg.Validate();
  EXPECT_FALSE(status.ok());
}

TEST(ExplainLogTest, EveryUniqueDuplicatePairIsClassifiedAccepted) {
  xml::Document dirty = DirtyMovies(200, 81, 3);
  std::string path = ::testing::TempDir() + "/sxnm_explain_pairs.ndjson";
  Config cfg = ExplainConfig(/*window=*/10, path);
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::set<OrdinalPair> accepted;
  std::set<OrdinalPair> merged;
  for (const std::string& line : Lines(ReadFile(path))) {
    if (line.rfind("{\"type\":\"pair\"", 0) == 0) {
      if (line.find("\"verdict\":true") != std::string::npos) {
        accepted.insert({static_cast<size_t>(ExtractInt(line, "a")),
                         static_cast<size_t>(ExtractInt(line, "b"))});
      }
    } else if (line.rfind("{\"type\":\"merge\"", 0) == 0) {
      merged.insert({static_cast<size_t>(ExtractInt(line, "a")),
                     static_cast<size_t>(ExtractInt(line, "b"))});
    }
  }
  const CandidateResult* movie = result->Find("movie");
  ASSERT_NE(movie, nullptr);
  ASSERT_FALSE(movie->duplicate_pairs.empty());
  std::set<OrdinalPair> expected(movie->duplicate_pairs.begin(),
                                 movie->duplicate_pairs.end());
  // The deduplicated accepted set and the TC lineage both replay exactly
  // the result's duplicate pairs.
  EXPECT_EQ(accepted, expected);
  EXPECT_EQ(merged, expected);
}

TEST(ExplainLogTest, ProvenanceCountsReconcileWithCounters) {
  xml::Document dirty = DirtyMovies(180, 91, 5);
  std::string path = ::testing::TempDir() + "/sxnm_explain_prov.ndjson";
  Config cfg = ExplainConfig(/*window=*/10, path);
  // Exercise all three provenance tags: multi-pass windows give cache
  // replays, the exact-OD prepass gives prepass records.
  cfg.mutable_candidates()[0].exact_od_prepass = true;
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::string text = ReadFile(path);
  size_t owned = CountOccurrences(text, "\"provenance\":\"owned\"");
  size_t cache = CountOccurrences(text, "\"provenance\":\"verdict_cache\"");
  size_t prepass = CountOccurrences(text, "\"provenance\":\"prepass\"");
  size_t dag = CountOccurrences(text, "\"provenance\":\"dag_equal\"");
  size_t filter = CountOccurrences(text, "\"provenance\":\"batch_filter\"");
  EXPECT_EQ(owned + cache + dag + filter,
            result->metrics.CounterOr("sw.comparisons"));
  EXPECT_EQ(cache, result->metrics.CounterOr("sw.verdict_cache_hits"));
  EXPECT_EQ(prepass, result->metrics.CounterOr("sw.prepass_pairs"));
  EXPECT_EQ(dag, result->metrics.CounterOr("sw.dag_equal"));
  EXPECT_EQ(filter, result->metrics.CounterOr("sw.batch_rejects"));
  EXPECT_GT(cache, 0u);
}

TEST(ExplainLogTest, ParallelExplainLogsAreByteIdentical) {
  xml::Document dirty = DirtyMovies(150, 101, 7);
  std::string baseline;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    std::string path = ::testing::TempDir() + "/sxnm_explain_t" +
                       std::to_string(threads) + ".ndjson";
    Config cfg = ExplainConfig(/*window=*/8, path);
    cfg.set_num_threads(threads);
    auto result = Detector(cfg).Run(dirty);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::string text = ReadFile(path);
    ASSERT_FALSE(text.empty());
    if (baseline.empty()) {
      baseline = std::move(text);
    } else {
      SCOPED_TRACE("num_threads=" + std::to_string(threads));
      EXPECT_EQ(text, baseline);
    }
  }
}

TEST(ExplainLogTest, GovernedRunLogsShedPasses) {
  xml::Document dirty = DirtyMovies(150, 111, 9);
  std::string path = ::testing::TempDir() + "/sxnm_explain_shed.ndjson";
  Config cfg = ExplainConfig(/*window=*/10, path);
  cfg.mutable_limits().max_comparisons = 800;
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded());

  std::string text = ReadFile(path);
  EXPECT_EQ(CountOccurrences(text, "{\"type\":\"shed\""),
            result->degradation.passes.size());
  EXPECT_GT(result->degradation.passes.size(), 0u);
  EXPECT_NE(text.find("\"provenance\":\"shed\""), std::string::npos);
}

TEST(ExplainLogTest, OwnedRecordsCarryExactScoringDetail) {
  xml::Document dirty = DirtyMovies(80, 121, 1);
  std::string path = ::testing::TempDir() + "/sxnm_explain_detail.ndjson";
  Config cfg = ExplainConfig(/*window=*/6, path);
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  bool saw_owned = false;
  for (const std::string& line : Lines(ReadFile(path))) {
    if (line.rfind("{\"type\":\"pair\"", 0) != 0) continue;
    const bool owned =
        line.find("\"provenance\":\"owned\"") != std::string::npos;
    if (owned) {
      saw_owned = true;
      // The full breakdown rides only on owned records.
      EXPECT_NE(line.find("\"components\":"), std::string::npos);
      EXPECT_NE(line.find("\"score\":"), std::string::npos);
      EXPECT_NE(line.find("\"threshold\":"), std::string::npos);
    } else {
      EXPECT_EQ(line.find("\"components\":"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_owned);
}

}  // namespace
}  // namespace sxnm::core
