// Artifact export under failure: degraded and cancelled runs still
// return ok() results, so every observability artifact — trace, report,
// explain log, telemetry stream — must be written and well-formed, and
// the telemetry stream must still end in a final sample that equals the
// end-of-run snapshot. Suite name contains "Telemetry" so the tsan
// preset runs it with the sampler thread live.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "sxnm/detector.h"
#include "util/cancellation.h"
#include "xml/node.h"

namespace sxnm::core {
namespace {

using util::StatusCode;

xml::Document DirtyMovies(size_t num_movies, unsigned data_seed,
                          unsigned dirty_seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = data_seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty =
      datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(dirty_seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream content;
  content << in.rdbuf();
  return content.str();
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Points every artifact at TempDir under `tag` and returns the config.
Config ArtifactConfig(const std::string& tag, size_t window) {
  auto config = datagen::MovieConfig(window);
  EXPECT_TRUE(config.ok());
  Config cfg = config.value();
  std::string base = ::testing::TempDir() + "/" + tag;
  cfg.mutable_observability().metrics = true;
  cfg.mutable_observability().trace_path = base + ".trace.json";
  cfg.mutable_observability().report_path = base + ".report.json";
  cfg.mutable_observability().explain_path = base + ".explain.ndjsonl";
  cfg.mutable_observability().telemetry_path = base + ".tlm.ndjsonl";
  cfg.mutable_observability().telemetry_interval_ms = 1.0;
  return cfg;
}

void ExpectArtifactsWellFormed(const Config& cfg,
                               const DetectionResult& result) {
  const ObservabilityConfig& obs = cfg.observability();

  std::string trace = ReadFile(obs.trace_path);
  EXPECT_EQ(trace.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(trace.find("\"detect\""), std::string::npos);

  std::string report = ReadFile(obs.report_path);
  EXPECT_NE(report.find("\"rows\""), std::string::npos);
  EXPECT_NE(report.find("\"degradation\""), std::string::npos);
  EXPECT_NE(report.find("\"degraded\": true"), std::string::npos);

  // The explain log may legitimately contain zero pair records (a
  // pre-cancelled run classifies nothing), but the file must exist.
  std::ifstream explain(obs.explain_path);
  EXPECT_TRUE(explain.good()) << obs.explain_path;

  std::vector<std::string> lines = ReadLines(obs.telemetry_path);
  ASSERT_GE(lines.size(), 2u);  // header + final sample at minimum
  EXPECT_NE(lines[0].find("\"type\": \"header\""), std::string::npos);
  const std::string& final_line = lines.back();
  EXPECT_NE(final_line.find("\"final\": true"), std::string::npos);
  // Exactly one final sample, and it is last.
  for (size_t i = 1; i + 1 < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"final\": false"), std::string::npos) << i;
  }
  // Writers quiesced before the final sample: it equals the snapshot
  // the result carries, counter for counter, even though the run shed
  // work. (A fully-shed run never registers some sliding-window
  // counters, so the result's own counter list is the ground truth.)
  ASSERT_FALSE(result.metrics.counters.empty());
  for (const auto& counter : result.metrics.counters) {
    std::string needle =
        "\"" + counter.name + "\": " + std::to_string(counter.value);
    EXPECT_NE(final_line.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(result.metrics.CounterOr("robust.degraded"), 1u);
}

TEST(TelemetryArtifactTest, DeadlineDegradedRunStillExportsEverything) {
  xml::Document dirty = DirtyMovies(120, 13, 3);
  Config cfg = ArtifactConfig("tlm_artifact_deadline", /*window=*/10);
  // Deadline × rate converts once at run start into a tiny comparison
  // budget: deterministic degradation flagged kDeadlineExceeded.
  cfg.mutable_limits().deadline_seconds = 1.0;
  cfg.mutable_limits().comparisons_per_second = 50.0;
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded());
  EXPECT_EQ(result->degradation.reason, StatusCode::kDeadlineExceeded);
  ExpectArtifactsWellFormed(cfg, result.value());
}

TEST(TelemetryArtifactTest, CancelledRunStillExportsEverything) {
  xml::Document dirty = DirtyMovies(100, 23, 5);
  Config cfg = ArtifactConfig("tlm_artifact_cancelled", /*window=*/8);
  util::CancellationSource source;
  source.RequestCancel();
  RunOptions options;
  options.cancellation = source.token();
  auto result = Detector(cfg).Run(dirty, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded());
  EXPECT_EQ(result->degradation.reason, StatusCode::kCancelled);
  EXPECT_TRUE(result->Find("movie")->duplicate_pairs.empty());
  ExpectArtifactsWellFormed(cfg, result.value());
}

}  // namespace
}  // namespace sxnm::core
