// Resource governance of Detector::Run: comparison budgets (direct and
// deadline-derived), cooperative cancellation, the determinism contract
// (the shed-work set is a pure function of config + data, identical for
// any num_threads), and the <limits>/<deadline> config XML round trip.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sxnm/config_xml.h"
#include "sxnm/detector.h"
#include "sxnm/sliding_window.h"
#include "util/cancellation.h"
#include "xml/parser.h"

namespace sxnm::core {
namespace {

using util::StatusCode;

// A dataset large enough that budgets below the planned total actually
// bind: 40 movies, a handful of near-duplicate titles.
std::string MovieXml() {
  std::ostringstream out;
  out << "<db><movies>";
  for (int i = 0; i < 40; ++i) {
    out << "<movie year=\"" << (1980 + i % 20) << "\"><title>Film Number "
        << (i / 2) << (i % 2 == 1 ? "x" : "") << "</title></movie>";
  }
  out << "</movies></db>";
  return out.str();
}

Config MovieConfig() {
  auto movie = CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Path(2, "@year")
                   .Od(1, 0.8)
                   .Od(2, 0.2, "numeric:5")
                   .Key({{1, "K1-K5"}, {2, "D3,D4"}})
                   .Key({{2, "D3,D4"}, {1, "K1,K2"}})
                   .Window(10)
                   .OdThreshold(0.75)
                   .Build();
  EXPECT_TRUE(movie.ok()) << movie.status().ToString();
  Config c;
  EXPECT_TRUE(c.AddCandidate(std::move(movie).value()).ok());
  return c;
}

// Planned pairs of one full pass over the 40-row candidate at window 10.
size_t OnePassPairs() { return WindowPairCount(40, 10); }

xml::Document ParseMovies() {
  auto doc = xml::Parse(MovieXml());
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

TEST(GovernanceTest, UnlimitedRunIsNotDegraded) {
  xml::Document doc = ParseMovies();
  Detector detector(MovieConfig());
  auto result = detector.Run(doc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->degraded());
  EXPECT_EQ(result->degradation.reason, StatusCode::kOk);
  EXPECT_TRUE(result->degradation.passes.empty());
  EXPECT_GT(result->Find("movie")->duplicate_pairs.size(), 0u);
}

TEST(GovernanceTest, BudgetShedsTailPassesAndShrinksBoundary) {
  xml::Document doc = ParseMovies();
  Config config = MovieConfig();
  // 1.5 passes of budget: pass 1 runs in full, pass 2 shrinks its window.
  config.mutable_limits().max_comparisons = OnePassPairs() * 3 / 2;
  Detector detector(config);
  auto result = detector.Run(doc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded());
  EXPECT_EQ(result->degradation.reason, StatusCode::kResourceExhausted);
  EXPECT_EQ(result->degradation.comparison_budget, OnePassPairs() * 3 / 2);
  ASSERT_EQ(result->degradation.passes.size(), 1u);
  const PassDegradation& pass = result->degradation.passes[0];
  EXPECT_EQ(pass.candidate, "movie");
  EXPECT_EQ(pass.key_index, 1u);
  EXPECT_FALSE(pass.skipped);
  EXPECT_LT(pass.window_used, 10u);
  EXPECT_GE(pass.window_used, 2u);
  EXPECT_GT(pass.pairs_elided, 0u);
  // The run still did real work within budget.
  EXPECT_LE(result->Find("movie")->comparisons,
            result->degradation.comparison_budget);
}

TEST(GovernanceTest, TinyBudgetSkipsEverythingButStaysOk) {
  xml::Document doc = ParseMovies();
  Config config = MovieConfig();
  config.mutable_limits().max_comparisons = 1;  // below any window-2 pass
  Detector detector(config);
  auto result = detector.Run(doc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded());
  EXPECT_EQ(result->degradation.PassesSkipped(), 2u);
  EXPECT_EQ(result->Find("movie")->comparisons, 0u);
  EXPECT_TRUE(result->Find("movie")->duplicate_pairs.empty());
}

TEST(GovernanceTest, ShedSetIsIdenticalForAnyThreadCount) {
  xml::Document doc = ParseMovies();
  for (size_t budget :
       {size_t{1}, OnePassPairs() / 2, OnePassPairs() * 3 / 2}) {
    Config serial = MovieConfig();
    serial.mutable_limits().max_comparisons = budget;
    serial.set_num_threads(1);
    auto a = Detector(serial).Run(doc);
    ASSERT_TRUE(a.ok());

    Config parallel = MovieConfig();
    parallel.mutable_limits().max_comparisons = budget;
    parallel.set_num_threads(8);
    auto b = Detector(parallel).Run(doc);
    ASSERT_TRUE(b.ok());

    // Identical degradation set...
    ASSERT_EQ(a->degradation.passes.size(), b->degradation.passes.size())
        << "budget " << budget;
    for (size_t i = 0; i < a->degradation.passes.size(); ++i) {
      const PassDegradation& pa = a->degradation.passes[i];
      const PassDegradation& pb = b->degradation.passes[i];
      EXPECT_EQ(pa.candidate, pb.candidate);
      EXPECT_EQ(pa.key_index, pb.key_index);
      EXPECT_EQ(pa.skipped, pb.skipped);
      EXPECT_EQ(pa.window_used, pb.window_used);
      EXPECT_EQ(pa.pairs_planned, pb.pairs_planned);
      EXPECT_EQ(pa.pairs_elided, pb.pairs_elided);
    }
    // ...and identical detection output.
    EXPECT_EQ(a->Find("movie")->duplicate_pairs,
              b->Find("movie")->duplicate_pairs)
        << "budget " << budget;
    EXPECT_EQ(a->Find("movie")->comparisons, b->Find("movie")->comparisons);
  }
}

TEST(GovernanceTest, DeadlineDerivedBudgetFlagsDeadlineExceeded) {
  xml::Document doc = ParseMovies();
  Config config = MovieConfig();
  // Deadline × rate = one pass of budget (~50% of the two-pass plan):
  // deterministic degradation attributed to the deadline.
  config.mutable_limits().deadline_seconds = 1.0;
  config.mutable_limits().comparisons_per_second =
      static_cast<double>(OnePassPairs());
  Detector detector(config);
  auto result = detector.Run(doc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded());
  EXPECT_EQ(result->degradation.reason, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result->degradation.comparison_budget, OnePassPairs());
  EXPECT_EQ(result->degradation.PassesSkipped(), 1u);  // pass 2 shed whole
}

TEST(GovernanceTest, DegradationTotalsMatchRobustCounters) {
  xml::Document doc = ParseMovies();
  Config config = MovieConfig();
  config.mutable_limits().max_comparisons = OnePassPairs() / 2;
  config.mutable_observability().metrics = true;
  Detector detector(config);
  auto result = detector.Run(doc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded());
  const DegradationReport& deg = result->degradation;
  EXPECT_EQ(result->metrics.CounterOr("robust.degraded"), 1u);
  EXPECT_EQ(result->metrics.CounterOr("robust.passes_skipped"),
            deg.PassesSkipped());
  EXPECT_EQ(result->metrics.CounterOr("robust.passes_shrunk"),
            deg.PassesShrunk());
  EXPECT_EQ(result->metrics.CounterOr("robust.rows_skipped"),
            deg.RowsSkipped());
  EXPECT_EQ(result->metrics.CounterOr("robust.pairs_elided"),
            deg.PairsElided());
  // The report embeds the same degradation block.
  EXPECT_TRUE(result->report.degradation.degraded);
  EXPECT_EQ(result->report.degradation.PairsElided(), deg.PairsElided());
}

TEST(GovernanceTest, DegradationSurfacesInTableAndJson) {
  xml::Document doc = ParseMovies();
  Config config = MovieConfig();
  config.mutable_limits().max_comparisons = OnePassPairs() / 2;
  config.mutable_observability().metrics = true;
  auto result = Detector(config).Run(doc);
  ASSERT_TRUE(result.ok());
  std::string table = result->report.ToTable();
  EXPECT_NE(table.find("DEGRADED"), std::string::npos);
  std::ostringstream json;
  result->report.WriteJson(json);
  EXPECT_NE(json.str().find("\"degradation\""), std::string::npos);
  EXPECT_NE(json.str().find("\"degraded\": true"), std::string::npos);
}

TEST(GovernanceTest, PreCancelledRunReturnsEmptyFlaggedResult) {
  xml::Document doc = ParseMovies();
  Detector detector(MovieConfig());
  util::CancellationSource source;
  source.RequestCancel();
  RunOptions options;
  options.cancellation = source.token();
  auto result = detector.Run(doc, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded());
  EXPECT_EQ(result->degradation.reason, StatusCode::kCancelled);
  EXPECT_EQ(result->Find("movie")->comparisons, 0u);
  EXPECT_TRUE(result->Find("movie")->duplicate_pairs.empty());
}

TEST(GovernanceTest, CancellationBeatsBudgetInReasonPrecedence) {
  xml::Document doc = ParseMovies();
  Config config = MovieConfig();
  config.mutable_limits().max_comparisons = 1;
  util::CancellationSource source;
  source.RequestCancel();
  RunOptions options;
  options.cancellation = source.token();
  auto result = Detector(config).Run(doc, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->degradation.reason, StatusCode::kCancelled);
}

TEST(GovernanceTest, WallClockDeadlineAlreadyExpiredStopsEarly) {
  // rate = 0 selects cooperative wall-clock mode; an already-expired
  // deadline must shed all window work but still return well-formed
  // (possibly empty) results.
  xml::Document doc = ParseMovies();
  Config config = MovieConfig();
  config.mutable_limits().deadline_seconds = 1e-9;
  config.mutable_limits().comparisons_per_second = 0.0;
  auto result = Detector(config).Run(doc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded());
  EXPECT_EQ(result->degradation.reason, StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// RunLimits helpers.

TEST(RunLimitsTest, ResolveComparisonBudgetMergesSources) {
  RunLimits limits;
  EXPECT_EQ(limits.ResolveComparisonBudget(), 0u);  // unlimited
  limits.max_comparisons = 500;
  EXPECT_EQ(limits.ResolveComparisonBudget(), 500u);
  limits.deadline_seconds = 0.2;  // 0.2s × 1e6/s = 200k... rate default
  limits.comparisons_per_second = 1000.0;
  EXPECT_EQ(limits.ResolveComparisonBudget(), 200u);  // deadline wins
  limits.max_comparisons = 100;
  EXPECT_EQ(limits.ResolveComparisonBudget(), 100u);  // cap wins
}

TEST(RunLimitsTest, ValidateRejectsNegativeGovernance) {
  RunLimits limits;
  limits.deadline_seconds = -1.0;
  EXPECT_EQ(limits.Validate().code(), StatusCode::kInvalidArgument);
  limits.deadline_seconds = 0.0;
  limits.comparisons_per_second = -5.0;
  EXPECT_EQ(limits.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(RunLimitsTest, ToParseOptionsMirrorsIngestionCaps) {
  RunLimits limits;
  limits.max_depth = 7;
  limits.max_input_bytes = 1024;
  limits.max_nodes = 99;
  limits.max_attr_count = 3;
  xml::ParseOptions options = limits.ToParseOptions();
  EXPECT_EQ(options.max_depth, 7u);
  EXPECT_EQ(options.max_input_bytes, 1024u);
  EXPECT_EQ(options.max_nodes, 99u);
  EXPECT_EQ(options.max_attr_count, 3u);
}

// ---------------------------------------------------------------------------
// <limits>/<deadline> XML round trip and error paths.

constexpr const char* kCandidateXml =
    R"xml(<candidate name="m" path="a/b" window="4">
         <paths><path id="1" rel="text()"/></paths>
         <od><entry pid="1" relevance="1"/></od>
         <keys><key><part pid="1" pattern="K1"/></key></keys>
       </candidate>)xml";

TEST(LimitsXmlTest, RoundTripPreservesAllFields) {
  std::string xml = std::string("<sxnm-config>") +
                    R"xml(<limits max-depth="64" max-input-bytes="1048576"
                              max-nodes="5000" max-attrs="16"
                              max-comparisons="123456" recover="true"/>
                       <deadline seconds="2.5"
                                 comparisons-per-second="250000"/>)xml" +
                    kCandidateXml + "</sxnm-config>";
  auto config = ConfigFromXmlString(xml);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const RunLimits& limits = config->limits();
  EXPECT_EQ(limits.max_depth, 64u);
  EXPECT_EQ(limits.max_input_bytes, 1048576u);
  EXPECT_EQ(limits.max_nodes, 5000u);
  EXPECT_EQ(limits.max_attr_count, 16u);
  EXPECT_EQ(limits.max_comparisons, 123456u);
  EXPECT_TRUE(limits.recover_parse);
  EXPECT_DOUBLE_EQ(limits.deadline_seconds, 2.5);
  EXPECT_DOUBLE_EQ(limits.comparisons_per_second, 250000.0);

  auto again = ConfigFromXmlString(ConfigToXmlString(config.value()));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->limits().max_depth, 64u);
  EXPECT_EQ(again->limits().max_input_bytes, 1048576u);
  EXPECT_EQ(again->limits().max_nodes, 5000u);
  EXPECT_EQ(again->limits().max_attr_count, 16u);
  EXPECT_EQ(again->limits().max_comparisons, 123456u);
  EXPECT_TRUE(again->limits().recover_parse);
  EXPECT_DOUBLE_EQ(again->limits().deadline_seconds, 2.5);
  EXPECT_DOUBLE_EQ(again->limits().comparisons_per_second, 250000.0);
}

TEST(LimitsXmlTest, DefaultsEmitNoGovernanceElements) {
  auto config = ConfigFromXmlString(std::string("<sxnm-config>") +
                                    kCandidateXml + "</sxnm-config>");
  ASSERT_TRUE(config.ok());
  std::string xml = ConfigToXmlString(config.value());
  EXPECT_EQ(xml.find("<limits"), std::string::npos);
  EXPECT_EQ(xml.find("<deadline"), std::string::npos);
}

TEST(LimitsXmlTest, BadSizeAttributeIsParseErrorNamingAttribute) {
  std::string xml = std::string("<sxnm-config>") +
                    R"xml(<limits max-nodes="lots"/>)xml" + kCandidateXml +
                    "</sxnm-config>";
  auto config = ConfigFromXmlString(xml);
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kParseError);
  EXPECT_NE(config.status().message().find("'max-nodes'"),
            std::string::npos);
  EXPECT_NE(config.status().message().find("lots"), std::string::npos);
}

TEST(LimitsXmlTest, NegativeDeadlineSecondsIsParseError) {
  std::string xml = std::string("<sxnm-config>") +
                    R"xml(<deadline seconds="-3"/>)xml" + kCandidateXml +
                    "</sxnm-config>";
  auto config = ConfigFromXmlString(xml);
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kParseError);
  EXPECT_NE(config.status().message().find("'seconds'"), std::string::npos);
}

TEST(LimitsXmlTest, MalformedConfigXmlCarriesLineAndColumn) {
  auto config = ConfigFromXmlString("<sxnm-config>\n  <limits</sxnm-config>");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kParseError);
  EXPECT_NE(config.status().message().find("at line 2, column "),
            std::string::npos);
}

TEST(LimitsXmlTest, WrongRootElementIsParseError) {
  auto config = ConfigFromXmlString("<not-config/>");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kParseError);
  EXPECT_NE(config.status().message().find("<sxnm-config>"),
            std::string::npos);
}

}  // namespace
}  // namespace sxnm::core
