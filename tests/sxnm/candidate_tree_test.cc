#include "sxnm/candidate_tree.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace sxnm::core {
namespace {

// Fig. 3(a)-style structure: movies nest screenplays (via a wrapper) and
// people; actors live under a non-candidate <cast> wrapper.
constexpr const char* kDoc = R"(
<db>
  <movies>
    <movie id="m0">
      <title>Alpha</title>
      <cast>
        <actor>A1</actor>
        <actor>A2</actor>
      </cast>
    </movie>
    <movie id="m1">
      <title>Beta</title>
      <title>Beta Alt</title>
      <cast>
        <actor>A3</actor>
      </cast>
    </movie>
    <movie id="m2">
      <title>Gamma</title>
    </movie>
  </movies>
</db>
)";

CandidateConfig MakeCandidate(const std::string& name,
                              const std::string& path) {
  return CandidateBuilder(name, path)
      .Path(1, "text()")
      .Od(1, 1.0)
      .Key({{1, "C1-C4"}})
      .Build()
      .value();
}

class CandidateForestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parsed = xml::Parse(kDoc);
    ASSERT_TRUE(parsed.ok());
    doc_ = std::move(parsed).value();
  }

  Config MovieActorTitleConfig() {
    Config config;
    EXPECT_TRUE(
        config.AddCandidate(MakeCandidate("movie", "db/movies/movie")).ok());
    EXPECT_TRUE(
        config
            .AddCandidate(MakeCandidate("actor", "db/movies/movie/cast/actor"))
            .ok());
    EXPECT_TRUE(
        config.AddCandidate(MakeCandidate("title", "db/movies/movie/title"))
            .ok());
    return config;
  }

  xml::Document doc_;
};

TEST_F(CandidateForestTest, InstancesInDocumentOrder) {
  auto forest = CandidateForest::Build(MovieActorTitleConfig(), doc_);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  int movie = forest->IndexOf("movie");
  int actor = forest->IndexOf("actor");
  int title = forest->IndexOf("title");
  ASSERT_GE(movie, 0);
  ASSERT_GE(actor, 0);
  ASSERT_GE(title, 0);
  EXPECT_EQ(forest->candidates()[movie].NumInstances(), 3u);
  EXPECT_EQ(forest->candidates()[actor].NumInstances(), 3u);
  EXPECT_EQ(forest->candidates()[title].NumInstances(), 4u);
  EXPECT_EQ(forest->TotalInstances(), 10u);
  // Instance ordinals follow document order.
  EXPECT_EQ(forest->candidates()[movie].elements[0]->AttributeOr("id", ""),
            "m0");
  EXPECT_EQ(forest->candidates()[movie].elements[2]->AttributeOr("id", ""),
            "m2");
}

TEST_F(CandidateForestTest, ChildTypesThroughNonCandidateWrapper) {
  auto forest = CandidateForest::Build(MovieActorTitleConfig(), doc_);
  ASSERT_TRUE(forest.ok());
  const CandidateInstances& movie =
      forest->candidates()[forest->IndexOf("movie")];
  // movie sees both actor (through <cast>) and title as child types.
  ASSERT_EQ(movie.child_types.size(), 2u);
  std::vector<std::string> names;
  for (size_t t : movie.child_types) {
    names.push_back(forest->candidates()[t].config->name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "actor"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "title"), names.end());
}

TEST_F(CandidateForestTest, DescendantInstanceLists) {
  auto forest = CandidateForest::Build(MovieActorTitleConfig(), doc_);
  ASSERT_TRUE(forest.ok());
  const CandidateInstances& movie =
      forest->candidates()[forest->IndexOf("movie")];

  // Find the actor slot.
  size_t actor_slot = movie.child_types.size();
  for (size_t s = 0; s < movie.child_types.size(); ++s) {
    if (forest->candidates()[movie.child_types[s]].config->name == "actor") {
      actor_slot = s;
    }
  }
  ASSERT_LT(actor_slot, movie.child_types.size());

  const auto& per_instance = movie.desc_instances[actor_slot];
  ASSERT_EQ(per_instance.size(), 3u);
  EXPECT_EQ(per_instance[0].size(), 2u) << "movie m0 has two actors";
  EXPECT_EQ(per_instance[1].size(), 1u);
  EXPECT_TRUE(per_instance[2].empty()) << "movie m2 has no actors";
  // Ordinals reference the actor candidate's instance list.
  EXPECT_EQ(per_instance[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(per_instance[1], (std::vector<size_t>{2}));
}

TEST_F(CandidateForestTest, ProcessingOrderIsBottomUp) {
  auto forest = CandidateForest::Build(MovieActorTitleConfig(), doc_);
  ASSERT_TRUE(forest.ok());
  const auto& order = forest->ProcessingOrder();
  ASSERT_EQ(order.size(), 3u);
  // movie must come after actor and title.
  size_t movie_pos = 0, actor_pos = 0, title_pos = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const std::string& name = forest->candidates()[order[i]].config->name;
    if (name == "movie") movie_pos = i;
    if (name == "actor") actor_pos = i;
    if (name == "title") title_pos = i;
  }
  EXPECT_GT(movie_pos, actor_pos);
  EXPECT_GT(movie_pos, title_pos);
}

TEST_F(CandidateForestTest, DepthReflectsNesting) {
  auto forest = CandidateForest::Build(MovieActorTitleConfig(), doc_);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->candidates()[forest->IndexOf("movie")].depth, 0);
  EXPECT_EQ(forest->candidates()[forest->IndexOf("actor")].depth, 1);
  EXPECT_EQ(forest->candidates()[forest->IndexOf("title")].depth, 1);
}

TEST_F(CandidateForestTest, LeafOnlyConfig) {
  Config config;
  ASSERT_TRUE(
      config.AddCandidate(MakeCandidate("actor", "db/movies/movie/cast/actor"))
          .ok());
  auto forest = CandidateForest::Build(config, doc_);
  ASSERT_TRUE(forest.ok());
  EXPECT_TRUE(forest->candidates()[0].child_types.empty());
  EXPECT_EQ(forest->candidates()[0].depth, 0);
}

TEST_F(CandidateForestTest, NoMatchesYieldsEmptyInstances) {
  Config config;
  ASSERT_TRUE(
      config.AddCandidate(MakeCandidate("ghost", "db/nothing/here")).ok());
  auto forest = CandidateForest::Build(config, doc_);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->candidates()[0].NumInstances(), 0u);
}

TEST_F(CandidateForestTest, OverlappingCandidatesRejected) {
  Config config;
  ASSERT_TRUE(
      config.AddCandidate(MakeCandidate("movie", "db/movies/movie")).ok());
  ASSERT_TRUE(
      config.AddCandidate(MakeCandidate("also_movie", "db//movie")).ok());
  auto forest = CandidateForest::Build(config, doc_);
  ASSERT_FALSE(forest.ok());
  EXPECT_NE(forest.status().message().find("matches two candidates"),
            std::string::npos);
}

TEST(CandidateForestRecursionTest, RecursiveNestingRejected) {
  auto doc = xml::Parse("<r><part><part><part/></part></part></r>");
  ASSERT_TRUE(doc.ok());
  Config config;
  ASSERT_TRUE(config
                  .AddCandidate(CandidateBuilder("part", "r//part")
                                    .Path(1, "text()")
                                    .Od(1, 1.0)
                                    .Key({{1, "C1"}})
                                    .Build()
                                    .value())
                  .ok());
  auto forest = CandidateForest::Build(config, doc.value());
  ASSERT_FALSE(forest.ok());
  EXPECT_NE(forest.status().message().find("cyclic"), std::string::npos);
}

TEST(CandidateForestDagTest, ChildTypeWithTwoParentTypes) {
  // <tag> appears under both <article> and <photo>: the type graph is a
  // DAG, not a tree. Both parents must see their own descendant lists and
  // tags must still be processed before either parent.
  auto doc = xml::Parse(R"(
<site>
  <article id="a0"><tag>news</tag><tag>tech</tag></article>
  <photo id="p0"><tag>news</tag></photo>
  <article id="a1"/>
</site>)");
  ASSERT_TRUE(doc.ok());

  Config config;
  ASSERT_TRUE(
      config.AddCandidate(MakeCandidate("article", "site/article")).ok());
  ASSERT_TRUE(config.AddCandidate(MakeCandidate("photo", "site/photo")).ok());
  ASSERT_TRUE(config.AddCandidate(MakeCandidate("tag", "site//tag")).ok());

  auto forest = CandidateForest::Build(config, doc.value());
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();

  const CandidateInstances& article =
      forest->candidates()[forest->IndexOf("article")];
  const CandidateInstances& photo =
      forest->candidates()[forest->IndexOf("photo")];
  ASSERT_EQ(article.child_types.size(), 1u);
  ASSERT_EQ(photo.child_types.size(), 1u);
  EXPECT_EQ(article.desc_instances[0][0].size(), 2u);
  EXPECT_TRUE(article.desc_instances[0][1].empty()) << "a1 has no tags";
  EXPECT_EQ(photo.desc_instances[0][0].size(), 1u);

  // Processing order: tag strictly before article and photo.
  const auto& order = forest->ProcessingOrder();
  size_t tag_pos = 0, article_pos = 0, photo_pos = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const std::string& name = forest->candidates()[order[i]].config->name;
    if (name == "tag") tag_pos = i;
    if (name == "article") article_pos = i;
    if (name == "photo") photo_pos = i;
  }
  EXPECT_LT(tag_pos, article_pos);
  EXPECT_LT(tag_pos, photo_pos);
  EXPECT_EQ(forest->candidates()[forest->IndexOf("tag")].depth, 1);
}

TEST(CandidateForestEmptyTest, IndexOfMissing) {
  auto doc = xml::Parse("<r/>");
  ASSERT_TRUE(doc.ok());
  Config config;
  ASSERT_TRUE(config
                  .AddCandidate(CandidateBuilder("x", "r/x")
                                    .Path(1, "text()")
                                    .Od(1, 1.0)
                                    .Key({{1, "C1"}})
                                    .Build()
                                    .value())
                  .ok());
  auto forest = CandidateForest::Build(config, doc.value());
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->IndexOf("missing"), -1);
  EXPECT_GE(forest->IndexOf("x"), 0);
}

}  // namespace
}  // namespace sxnm::core
