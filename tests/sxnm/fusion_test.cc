// Tests for the data-fusion representative strategy (kFuse) of the dedup
// writer.

#include <gtest/gtest.h>

#include "sxnm/config.h"
#include "sxnm/dedup_writer.h"
#include "sxnm/detector.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xml/xpath.h"

namespace sxnm::core {
namespace {

// Two duplicate movies with complementary information: the first has the
// year and a review, the second has the genre attribute and a person.
constexpr const char* kDoc = R"(
<db>
  <movies>
    <movie year="1999">
      <title>The Matrix Reloaded Again</title>
      <review>great stuff indeed truly</review>
    </movie>
    <movie genre="SciFi">
      <title>The Matrix Reloaded Again</title>
      <person>Keanu Reeves</person>
    </movie>
    <movie><title>Unrelated Other Film</title></movie>
  </movies>
</db>
)";

Config MovieConfig() {
  Config config;
  auto movie = CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K5"}})
                   .Window(3)
                   .OdThreshold(0.9)
                   .Build();
  EXPECT_TRUE(movie.ok());
  EXPECT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  return config;
}

TEST(FusionTest, SurvivorCarriesUnionOfInformation) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->Find("movie")->duplicate_pairs.size(), 1u);

  DedupStats stats;
  auto fused = Deduplicate(doc.value(), result.value(),
                           RepresentativeStrategy::kFuse, &stats);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();

  auto movies =
      xml::XPath::Parse("db/movies/movie")->SelectFromRoot(fused.value());
  ASSERT_TRUE(movies.ok());
  ASSERT_EQ(movies->size(), 2u);

  const xml::Element* survivor = (*movies)[0];
  // Both attributes present.
  EXPECT_EQ(survivor->AttributeOr("year", ""), "1999");
  EXPECT_EQ(survivor->AttributeOr("genre", ""), "SciFi");
  // Children from both members, title not duplicated.
  EXPECT_EQ(survivor->ChildElements("title").size(), 1u);
  EXPECT_EQ(survivor->ChildElements("review").size(), 1u);
  EXPECT_EQ(survivor->ChildElements("person").size(), 1u);

  EXPECT_EQ(stats.clusters_collapsed, 1u);
  EXPECT_EQ(stats.elements_removed, 1u);
  EXPECT_GE(stats.attributes_fused, 1u);
  EXPECT_GE(stats.children_fused, 1u);
}

TEST(FusionTest, IdenticalChildrenNotDuplicated) {
  constexpr const char* kSame = R"(
<db><movies>
  <movie><title>Same Long Example Title</title><tag>x</tag></movie>
  <movie><title>Same Long Example Title</title><tag>x</tag></movie>
</movies></db>
)";
  auto doc = xml::Parse(kSame);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());

  DedupStats stats;
  auto fused = Deduplicate(doc.value(), result.value(),
                           RepresentativeStrategy::kFuse, &stats);
  ASSERT_TRUE(fused.ok());
  auto movies =
      xml::XPath::Parse("db/movies/movie")->SelectFromRoot(fused.value());
  ASSERT_EQ(movies->size(), 1u);
  EXPECT_EQ((*movies)[0]->ChildElements("tag").size(), 1u);
  EXPECT_EQ(stats.children_fused, 0u);
}

TEST(FusionTest, FusedOutputIsWellFormed) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  auto fused = Deduplicate(doc.value(), result.value(),
                           RepresentativeStrategy::kFuse);
  ASSERT_TRUE(fused.ok());
  auto reparsed = xml::Parse(xml::WriteDocument(fused.value()));
  EXPECT_TRUE(reparsed.ok()) << reparsed.status().ToString();
}

TEST(FusionTest, RichestMemberIsTheSurvivorBase) {
  // The second member has more text, so fusion builds on it (its title
  // spelling survives).
  constexpr const char* kRichSecond = R"(
<db><movies>
  <movie><title>Fusion Example Record</title></movie>
  <movie year="2001"><title>Fusion Example Recorb</title>
    <review>long extra content making this the richest member</review>
  </movie>
</movies></db>
)";
  auto doc = xml::Parse(kRichSecond);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->Find("movie")->duplicate_pairs.size(), 1u);

  auto fused = Deduplicate(doc.value(), result.value(),
                           RepresentativeStrategy::kFuse);
  ASSERT_TRUE(fused.ok());
  std::string out = xml::WriteDocument(fused.value());
  EXPECT_NE(out.find("Recorb"), std::string::npos) << out;
  // The other member's differing title is fused in as extra child content
  // (different deep text), preserving all variants.
  EXPECT_NE(out.find("Record<"), std::string::npos) << out;
}

}  // namespace
}  // namespace sxnm::core
