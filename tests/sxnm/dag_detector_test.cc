// Detector-level guarantees of the DAG-equal shortcut and the batched
// SoA pre-filter: switching dag_compression / batch_scoring on or off
// must not change a single duplicate pair or cluster for any thread
// count; the new counters must close exactly against the windowed-pair
// total; and the checked-in gold-labeled repeated-subtree corpus must
// yield identical, high-quality results either way. The suite name
// matches both the "Dag" and "Batched" sanitizer ctest filters.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "sxnm/detector.h"
#include "xml/node.h"
#include "xml/parser.h"

namespace sxnm::core {
namespace {

xml::Document RepeatedSubtreeMovies(size_t num_movies, unsigned data_seed,
                                    unsigned dirty_seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = data_seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(
      clean, datagen::RepeatedSubtreePreset(dirty_seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

Config MovieCfg(bool dag, bool batch, size_t threads, bool metrics) {
  auto config = datagen::MovieConfig(/*window=*/10);
  EXPECT_TRUE(config.ok());
  Config cfg = config.value();
  for (CandidateConfig& cand : cfg.mutable_candidates()) {
    cand.dag_compression = dag;
    cand.batch_scoring = batch;
  }
  cfg.set_num_threads(threads);
  if (metrics) cfg.mutable_observability().metrics = true;
  return cfg;
}

void ExpectIdenticalResults(const DetectionResult& a,
                            const DetectionResult& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    const CandidateResult& ca = a.candidates[i];
    const CandidateResult& cb = b.candidates[i];
    SCOPED_TRACE(ca.name);
    EXPECT_EQ(ca.name, cb.name);
    EXPECT_EQ(ca.num_instances, cb.num_instances);
    EXPECT_EQ(ca.duplicate_pairs, cb.duplicate_pairs);
    EXPECT_EQ(ca.duplicate_eid_pairs, cb.duplicate_eid_pairs);
    EXPECT_EQ(ca.comparisons, cb.comparisons)
        << "dag/filter classifications still count as comparisons";
    EXPECT_EQ(ca.clusters.clusters(), cb.clusters.clusters());
  }
}

TEST(DagBatchedDetectorTest, TogglesPreserveResultsAcrossThreadCounts) {
  xml::Document dirty = RepeatedSubtreeMovies(250, 31, 13);
  auto baseline = Detector(MovieCfg(false, false, 1, false)).Run(dirty);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_FALSE(baseline->candidates[0].duplicate_pairs.empty());

  struct Toggle {
    bool dag;
    bool batch;
  };
  for (Toggle toggle : {Toggle{true, false}, Toggle{false, true},
                        Toggle{true, true}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE("dag=" + std::to_string(toggle.dag) +
                   " batch=" + std::to_string(toggle.batch) +
                   " threads=" + std::to_string(threads));
      auto run =
          Detector(MovieCfg(toggle.dag, toggle.batch, threads, false))
              .Run(dirty);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      ExpectIdenticalResults(baseline.value(), run.value());
    }
  }
}

TEST(DagBatchedDetectorTest, ShortcutsFireAndCountersClose) {
  xml::Document dirty = RepeatedSubtreeMovies(220, 51, 17);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto result = Detector(MovieCfg(true, true, threads, true)).Run(dirty);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const obs::MetricsSnapshot& m = result->metrics;

    // The corpus is 100% duplicated with 70% byte-exact copies: both fast
    // paths must actually fire, and key generation must have built a
    // genuinely compressed DAG.
    EXPECT_GT(m.CounterOr("sw.dag_equal"), 0u);
    EXPECT_GT(m.CounterOr("kg.subtree_pool_nodes"), 0u);
    EXPECT_GT(m.CounterOr("kg.subtree_pool_bytes"), 0u);

    // Exact closure: every windowed pair is either prepass-skipped or
    // classified, and every classification has exactly one provenance.
    EXPECT_EQ(m.CounterOr("sw.pairs_windowed"),
              m.CounterOr("sw.comparisons") + m.CounterOr("sw.prepass_skips"));
    EXPECT_GE(m.CounterOr("sw.comparisons"),
              m.CounterOr("sw.dag_equal") + m.CounterOr("sw.batch_rejects") +
                  m.CounterOr("sw.verdict_cache_hits"));

    // Counters are thread-invariant along with the results.
    if (threads == 1) continue;
    auto serial = Detector(MovieCfg(true, true, 1, true)).Run(dirty);
    ASSERT_TRUE(serial.ok());
    for (const char* counter :
         {"sw.pairs_windowed", "sw.comparisons", "sw.prepass_skips",
          "sw.dag_equal", "sw.batch_rejects", "sw.hits"}) {
      EXPECT_EQ(m.CounterOr(counter), serial->metrics.CounterOr(counter))
          << counter;
    }
  }
}

TEST(DagBatchedDetectorTest, DagDisabledLeavesPoolEmpty) {
  xml::Document dirty = RepeatedSubtreeMovies(60, 61, 19);
  auto result = Detector(MovieCfg(false, false, 1, true)).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.CounterOr("sw.dag_equal"), 0u);
  EXPECT_EQ(result->metrics.CounterOr("sw.batch_rejects"), 0u);
  EXPECT_EQ(result->metrics.CounterOr("kg.subtree_pool_nodes"), 0u);
  for (const CandidateResult& cand : result->candidates) {
    EXPECT_EQ(cand.gk.subtree_pool.num_nodes(), 0u);
    for (const GkRow& row : cand.gk.rows) {
      EXPECT_FALSE(row.subtree.valid());
    }
  }
}

// The checked-in gold-labeled corpus (tests/data/repeated_subtree_movies
// .xml, generated by GenerateCleanMovies + RepeatedSubtreePreset — see
// tests/data/README.md): results must be identical with the fast paths on
// and off, and both must actually find the duplicates the gold labels
// record.
TEST(DagBatchedDetectorTest, GoldCorpusResultsAreIdenticalAndAccurate) {
  const std::string path =
      std::string(SXNM_TEST_DATA_DIR) + "/repeated_subtree_movies.xml";
  auto doc = xml::ParseFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  auto off = Detector(MovieCfg(false, false, 1, false)).Run(doc.value());
  auto on = Detector(MovieCfg(true, true, 4, false)).Run(doc.value());
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  ExpectIdenticalResults(off.value(), on.value());

  auto gold =
      eval::GoldClusterSet(doc.value(), "movie_database/movies/movie");
  ASSERT_TRUE(gold.ok()) << gold.status().ToString();
  ASSERT_GT(gold->NumDuplicatePairs(), 0u);

  const CandidateResult* movie = on->Find("movie");
  ASSERT_NE(movie, nullptr);
  eval::PairMetrics metrics =
      eval::PairwiseMetrics(gold.value(), movie->clusters);
  // The corpus is mostly byte-exact copies; SXNM with the paper's movie
  // config must do well on it. Loose floors — this guards against the
  // fast paths silently dropping pairs, not against tuning drift.
  EXPECT_GT(metrics.recall, 0.7) << metrics.ToString();
  EXPECT_GT(metrics.precision, 0.9) << metrics.ToString();
}

}  // namespace
}  // namespace sxnm::core
