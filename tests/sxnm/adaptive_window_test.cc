#include <gtest/gtest.h>

#include <set>

#include "sxnm/config.h"
#include "sxnm/config_xml.h"
#include "sxnm/detector.h"
#include "sxnm/sliding_window.h"
#include "xml/parser.h"

namespace sxnm::core {
namespace {

// --- ForEachAdaptiveWindowPair unit behaviour ------------------------------

std::vector<std::pair<size_t, size_t>> CollectAdaptive(
    const std::vector<std::string>& keys, size_t base, size_t max_window,
    size_t prefix) {
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) order[i] = i;
  std::vector<std::pair<size_t, size_t>> pairs;
  ForEachAdaptiveWindowPair(
      order, [&](size_t v) -> const std::string& { return keys[v]; }, base,
      max_window, prefix,
      [&](size_t a, size_t b) { pairs.emplace_back(a, b); });
  return pairs;
}

TEST(AdaptiveWindowTest, ReducesToFixedWhenKeysDiffer) {
  std::vector<std::string> keys = {"AAAA", "BBBB", "CCCC", "DDDD"};
  auto adaptive = CollectAdaptive(keys, 2, 10, 2);
  // No shared prefixes: behaves exactly like the fixed window of 2.
  EXPECT_EQ(adaptive, (std::vector<std::pair<size_t, size_t>>{
                          {0, 1}, {1, 2}, {2, 3}}));
}

TEST(AdaptiveWindowTest, ExtendsInsideEqualPrefixBlock) {
  // A run of 5 equal-prefix keys: base window 2 alone visits only
  // adjacent pairs, adaptive visits the whole block.
  std::vector<std::string> keys = {"AAAA1", "AAAA2", "AAAA3", "AAAA4",
                                   "AAAA5", "ZZZZ"};
  auto pairs = CollectAdaptive(keys, 2, 10, 4);
  std::set<std::pair<size_t, size_t>> set(pairs.begin(), pairs.end());
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      EXPECT_TRUE(set.count({i, j})) << i << "," << j;
    }
  }
  // ZZZZ only sees its fixed-window neighbor.
  EXPECT_TRUE(set.count({4, 5}));
  EXPECT_FALSE(set.count({3, 5}));
}

TEST(AdaptiveWindowTest, MaxWindowCapsExtension) {
  std::vector<std::string> keys(20, "SAME");
  auto pairs = CollectAdaptive(keys, 2, 5, 4);
  for (const auto& [a, b] : pairs) {
    EXPECT_LT(b - a, 5u) << "no pair beyond max_window";
  }
  // Element 10 reaches exactly 4 predecessors.
  size_t reach_10 = 0;
  for (const auto& [a, b] : pairs) {
    if (b == 10) ++reach_10;
  }
  EXPECT_EQ(reach_10, 4u);
}

TEST(AdaptiveWindowTest, ShortKeysMustMatchEntirely) {
  std::vector<std::string> keys = {"AB", "AB", "AB", "AX"};
  auto pairs = CollectAdaptive(keys, 2, 10, 4);
  std::set<std::pair<size_t, size_t>> set(pairs.begin(), pairs.end());
  EXPECT_TRUE(set.count({0, 2})) << "equal short keys extend";
  EXPECT_FALSE(set.count({0, 3})) << "differing short key does not";
}

TEST(AdaptiveWindowTest, SupersetOfFixedWindow) {
  std::vector<std::string> keys = {"AA1", "AA2", "AB1", "AA3",
                                   "AC4", "AA4", "AA5"};
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) order[i] = i;

  std::set<std::pair<size_t, size_t>> fixed;
  ForEachWindowPair(order, 3, [&](size_t a, size_t b) {
    fixed.insert({a, b});
  });
  auto adaptive = CollectAdaptive(keys, 3, 10, 2);
  std::set<std::pair<size_t, size_t>> adaptive_set(adaptive.begin(),
                                                   adaptive.end());
  for (const auto& pair : fixed) {
    EXPECT_TRUE(adaptive_set.count(pair))
        << pair.first << "," << pair.second;
  }
}

// --- Detector integration ---------------------------------------------------

TEST(AdaptiveWindowDetectorTest, FindsDuplicateStrandedInEqualKeyRun) {
  // 12 movies share the key prefix (same first consonants); the duplicate
  // pair sits at the two ends of the run. A fixed window of 3 misses it,
  // the adaptive policy bridges the run.
  std::string xml = "<db><movies>";
  xml += "<movie><title>Silent Harbor Alpha</title></movie>";  // ordinal 0
  static constexpr const char* kSuffixes[] = {
      "Bqqqw", "Cwwwz", "Dzzzk", "Ekkkp", "Fpppm",
      "Gmmmv", "Hvvvr", "Jrrrg", "Kgggt", "Ltttb"};
  for (int i = 0; i < 10; ++i) {
    // Same consonant key prefix SLNTH..., mutually distant titles.
    xml += std::string("<movie><title>Silent Harbor ") + kSuffixes[i] +
           "</title></movie>";
  }
  xml += "<movie><title>Silent Harbor Alphaa</title></movie>";  // dup of 0
  xml += "</movies></db>";
  auto doc = xml::Parse(xml);
  ASSERT_TRUE(doc.ok());

  auto make_config = [](bool adaptive) {
    Config config;
    CandidateBuilder builder("movie", "db/movies/movie");
    builder.Path(1, "title/text()")
        .Od(1, 1.0)
        .Key({{1, "K1-K5"}})
        .Window(3)
        .OdThreshold(0.9);
    if (adaptive) builder.AdaptiveWindow(/*prefix_len=*/5, /*max_window=*/50);
    auto cand = builder.Build();
    EXPECT_TRUE(cand.ok());
    EXPECT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
    return config;
  };

  auto fixed = Detector(make_config(false)).Run(doc.value());
  ASSERT_TRUE(fixed.ok());
  auto adaptive = Detector(make_config(true)).Run(doc.value());
  ASSERT_TRUE(adaptive.ok());

  EXPECT_TRUE(fixed->Find("movie")->duplicate_pairs.empty())
      << "fixed window 3 cannot bridge the 10-element run";
  ASSERT_EQ(adaptive->Find("movie")->duplicate_pairs.size(), 1u);
  EXPECT_GT(adaptive->Find("movie")->comparisons,
            fixed->Find("movie")->comparisons)
      << "extension costs extra comparisons, but only inside the block";
}

TEST(AdaptiveWindowDetectorTest, ValidationChecksKnobs) {
  Config config;
  auto cand = CandidateBuilder("m", "db/m")
                  .Path(1, "text()")
                  .Od(1, 1.0)
                  .Key({{1, "C1"}})
                  .Window(10)
                  .AdaptiveWindow(4, 5)  // max_window < window_size
                  .Build();
  ASSERT_TRUE(cand.ok());
  ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AdaptiveWindowDetectorTest, ConfigXmlRoundTrip) {
  Config config;
  auto cand = CandidateBuilder("m", "db/m")
                  .Path(1, "text()")
                  .Od(1, 1.0)
                  .Key({{1, "C1-C4"}})
                  .Window(5)
                  .AdaptiveWindow(6, 40)
                  .Build();
  ASSERT_TRUE(cand.ok());
  ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());

  auto reparsed = ConfigFromXmlString(ConfigToXmlString(config));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const CandidateConfig* m = reparsed->Find("m");
  EXPECT_EQ(m->window_policy, WindowPolicy::kAdaptivePrefix);
  EXPECT_EQ(m->adaptive_prefix_len, 6u);
  EXPECT_EQ(m->max_window, 40u);
}

}  // namespace
}  // namespace sxnm::core
