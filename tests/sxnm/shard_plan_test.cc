#include "sxnm/shard_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sxnm/sliding_window.h"

namespace sxnm::core {
namespace {

// The slices must partition [0, n) contiguously, in order.
void ExpectPartition(const std::vector<ShardSlice>& plan, size_t n,
                     size_t shards) {
  ASSERT_EQ(plan.size(), shards);
  size_t next = 0;
  for (const ShardSlice& s : plan) {
    EXPECT_EQ(s.owned_begin, next);
    EXPECT_LE(s.owned_begin, s.owned_end);
    EXPECT_LE(s.context_begin, s.owned_begin);
    next = s.owned_end;
  }
  EXPECT_EQ(next, n);
}

TEST(ShardPlanTest, PartitionsEvenlyWithRemainderUpFront) {
  auto plan = ComputeShardPlan(10, 3, 4);
  ExpectPartition(plan, 10, 3);
  EXPECT_EQ(plan[0].owned_end - plan[0].owned_begin, 4u);
  EXPECT_EQ(plan[1].owned_end - plan[1].owned_begin, 3u);
  EXPECT_EQ(plan[2].owned_end - plan[2].owned_begin, 3u);
}

TEST(ShardPlanTest, SingleShardOwnsEverythingWithNoContext) {
  auto plan = ComputeShardPlan(100, 1, 10);
  ExpectPartition(plan, 100, 1);
  EXPECT_EQ(plan[0].context_begin, 0u);
  EXPECT_EQ(ShardOverlapRows(plan), 0u);
}

TEST(ShardPlanTest, MoreShardsThanRowsLeavesEmptySlices) {
  auto plan = ComputeShardPlan(2, 5, 3);
  ExpectPartition(plan, 2, 5);
  size_t nonempty = 0;
  for (const ShardSlice& s : plan) {
    if (s.owned_end > s.owned_begin) ++nonempty;
  }
  EXPECT_EQ(nonempty, 2u);
}

TEST(ShardPlanTest, ContextReachesBackWindowMinusOne) {
  auto plan = ComputeShardPlan(100, 4, 10);
  for (const ShardSlice& s : plan) {
    size_t want = s.owned_begin >= 9 ? s.owned_begin - 9 : 0;
    EXPECT_EQ(s.context_begin, want);
  }
  // 3 shards with a full 9-row context prefix.
  EXPECT_EQ(ShardOverlapRows(plan), 27u);
}

TEST(ShardPlanTest, EmptyRelation) {
  auto plan = ComputeShardPlan(0, 3, 5);
  ExpectPartition(plan, 0, 3);
  EXPECT_EQ(ShardOverlapRows(plan), 0u);
}

// The owner rule itself: concatenating per-shard range enumerations in
// shard order must reproduce the full enumeration pair for pair, for
// plain and adaptive windows alike.
TEST(ShardPlanTest, RangeEnumerationsConcatenateToFullEnumeration) {
  const size_t n = 53;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = (i * 31) % n;  // a permutation
  for (size_t window : {size_t{2}, size_t{5}, size_t{60}}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
      std::vector<std::pair<size_t, size_t>> full;
      ForEachWindowPair(order, window, [&](size_t a, size_t b) {
        full.emplace_back(a, b);
      });
      std::vector<std::pair<size_t, size_t>> pieced;
      size_t count = 0;
      for (const ShardSlice& s : ComputeShardPlan(n, shards, window)) {
        count += ForEachWindowPairRange(
            order, window, s.owned_begin, s.owned_end,
            [&](size_t a, size_t b) { pieced.emplace_back(a, b); });
      }
      SCOPED_TRACE("window=" + std::to_string(window) +
                   " shards=" + std::to_string(shards));
      EXPECT_EQ(pieced, full);
      EXPECT_EQ(count, WindowPairCount(n, window));
    }
  }
}

TEST(ShardPlanTest, AdaptiveRangeEnumerationsConcatenateToo) {
  const size_t n = 40;
  std::vector<size_t> order(n);
  std::vector<std::string> keys(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = i;
    keys[i] = "k" + std::to_string(i / 6);  // runs of 6 equal prefixes
  }
  auto key_of = [&](size_t v) -> const std::string& { return keys[v]; };
  std::vector<std::pair<size_t, size_t>> full;
  ForEachAdaptiveWindowPair(order, key_of, 3, 12, 2, [&](size_t a, size_t b) {
    full.emplace_back(a, b);
  });
  for (size_t shards : {size_t{2}, size_t{3}, size_t{5}}) {
    std::vector<std::pair<size_t, size_t>> pieced;
    for (const ShardSlice& s : ComputeShardPlan(n, shards, 12)) {
      ForEachAdaptiveWindowPairRange(
          order, key_of, 3, 12, 2, s.owned_begin, s.owned_end,
          [&](size_t a, size_t b) { pieced.emplace_back(a, b); });
    }
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(pieced, full);
  }
}

TEST(ShardPlanTest, WindowPairCountRangeSumsToTotal) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{9}, size_t{50}}) {
    for (size_t window : {size_t{2}, size_t{4}, size_t{100}}) {
      for (size_t shards : {size_t{1}, size_t{3}, size_t{6}}) {
        size_t total = 0;
        for (const ShardSlice& s : ComputeShardPlan(n, shards, window)) {
          total += WindowPairCountRange(n, window, s.owned_begin,
                                        s.owned_end);
        }
        EXPECT_EQ(total, WindowPairCount(n, window))
            << "n=" << n << " window=" << window << " shards=" << shards;
      }
    }
  }
}

}  // namespace
}  // namespace sxnm::core
