#include "sxnm/key_pattern.h"

#include <gtest/gtest.h>

namespace sxnm::core {
namespace {

std::string Apply(const char* pattern, const char* value) {
  auto parsed = KeyPattern::Parse(pattern);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? parsed->Apply(value) : std::string("<parse error>");
}

TEST(KeyPatternTest, PaperRunningExample) {
  // Sec. 2.2: MOVIE("Mask of Zorro", 1998), key = first four consonants of
  // the title + third and fourth digit of the year = MSKF98.
  EXPECT_EQ(Apply("K1-K4", "Mask of Zorro"), "MSKF");
  EXPECT_EQ(Apply("D3,D4", "1998"), "98");
  EXPECT_EQ(Apply("K1-K4", "Mask of Zorro") + Apply("D3,D4", "1998"),
            "MSKF98");
}

TEST(KeyPatternTest, PaperTable1Example) {
  // Tab. 1: movie "Matrix" (1999): key 1 = K1,K2 of title + D3,D4 of year
  // = MT99; key 2 = D1 of @ID (5...) + C1,C2 of title = 5MA.
  EXPECT_EQ(Apply("K1,K2", "Matrix"), "MT");
  EXPECT_EQ(Apply("D3,D4", "1999"), "99");
  EXPECT_EQ(Apply("D1", "5342"), "5");
  EXPECT_EQ(Apply("C1,C2", "Matrix"), "MA");
}

TEST(KeyPatternTest, RangesAndSingles) {
  EXPECT_EQ(Apply("K1-K5", "The Matrix"), "THMTR");
  EXPECT_EQ(Apply("C1-C4", "ab 12"), "AB12");
  EXPECT_EQ(Apply("D1,D3", "a1b2c3"), "13");
  EXPECT_EQ(Apply("K2", "Matrix"), "T");
}

TEST(KeyPatternTest, PositionsBeyondValueAreSkipped) {
  // "Mask of Zorro" has 7 consonants; K1-K9 yields all 7.
  EXPECT_EQ(Apply("K1-K9", "Mask of Zorro"), "MSKFZRR");
  EXPECT_EQ(Apply("D3,D4", "19"), "");
  EXPECT_EQ(Apply("D1,D2", ""), "");
  EXPECT_EQ(Apply("C5", "abc"), "");
}

TEST(KeyPatternTest, MixedClassesInOnePattern) {
  EXPECT_EQ(Apply("K1,D1,C1", "a1b2"), "B1A");
}

TEST(KeyPatternTest, CaseNormalizedToUpper) {
  EXPECT_EQ(Apply("C1-C6", "matrix"), "MATRIX");
  EXPECT_EQ(Apply("K1-K3", "zorro"), "ZRR");
}

TEST(KeyPatternTest, WhitespaceTolerated) {
  EXPECT_EQ(Apply(" K1 , K2 ", "Matrix"), "MT");
  EXPECT_EQ(Apply("K1 - K3", "Matrix"), "MTR");
}

TEST(KeyPatternTest, SoundexSelector) {
  auto pattern = KeyPattern::Parse("S");
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(pattern->Apply("Robert"), "R163");
  EXPECT_EQ(pattern->Apply("Rupert"), "R163");
  EXPECT_EQ(Apply("S,D3,D4", "Robert 1998"), "R16398");
}

TEST(KeyPatternTest, ToStringCanonicalForm) {
  EXPECT_EQ(KeyPattern::Parse("K1-K5")->ToString(), "K1-K5");
  EXPECT_EQ(KeyPattern::Parse("D3,D4")->ToString(), "D3,D4");
  EXPECT_EQ(KeyPattern::Parse(" k1 , c2-c4 ")->ToString(), "K1,C2-C4");
  EXPECT_EQ(KeyPattern::Parse("S")->ToString(), "S");
}

TEST(KeyPatternTest, ParseToStringParseRoundTrip) {
  for (const char* p : {"K1-K5", "D3,D4", "C1,C2", "K1,K2,D1-D4", "S,K1"}) {
    auto first = KeyPattern::Parse(p);
    ASSERT_TRUE(first.ok()) << p;
    auto second = KeyPattern::Parse(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    EXPECT_EQ(first.value(), second.value());
  }
}

TEST(KeyPatternTest, ParseErrors) {
  for (const char* p : {"", "  ", ",", "K1,", "X1", "K0", "K-1", "Kx",
                        "K1-D2", "K5-K2", "K1-", "-K2", "K", "S1", "S-S",
                        "K1--K3"}) {
    EXPECT_FALSE(KeyPattern::Parse(p).ok()) << "should reject: '" << p << "'";
  }
}

TEST(KeyPatternTest, NonAsciiValueYieldsNoSelections) {
  // Unreadable entries (Fig. 4(d) discussion) produce empty keys.
  EXPECT_EQ(Apply("C1-C6", "\xE3\x82\xAB\xE3\x83\xA9"), "");
  EXPECT_EQ(Apply("K1-K4", "????"), "");
}

}  // namespace
}  // namespace sxnm::core
