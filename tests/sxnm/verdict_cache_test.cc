// VerdictCache: compute-once semantics, probing under collisions, and
// concurrent claim/publish (the "Parallel" test names put these under the
// tsan preset's filter).

#include "sxnm/verdict_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace sxnm::core {
namespace {

TEST(VerdictCacheTest, FirstClaimOwnsLaterLookupsReuse) {
  VerdictCache cache(/*max_distinct_pairs=*/8);
  VerdictCache::Lookup first = cache.AcquireOrWait(42);
  ASSERT_TRUE(first.owner);
  cache.Publish(first, /*is_duplicate=*/true);

  VerdictCache::Lookup second = cache.AcquireOrWait(42);
  EXPECT_FALSE(second.owner);
  EXPECT_TRUE(second.is_duplicate);

  VerdictCache::Lookup other = cache.AcquireOrWait(43);
  ASSERT_TRUE(other.owner);
  cache.Publish(other, /*is_duplicate=*/false);
  EXPECT_FALSE(cache.AcquireOrWait(43).is_duplicate);
}

TEST(VerdictCacheTest, CapacityIsAtLeastTwiceTheBoundAndPowerOfTwo) {
  for (size_t bound : {size_t{0}, size_t{1}, size_t{7}, size_t{100},
                       size_t{4096}, size_t{100000}}) {
    VerdictCache cache(bound);
    EXPECT_GE(cache.capacity(), std::max<size_t>(16, bound * 2)) << bound;
    EXPECT_EQ(cache.capacity() & (cache.capacity() - 1), 0u) << bound;
  }
}

TEST(VerdictCacheTest, ProbingResolvesDenseKeyRanges) {
  // Packed ordinal pairs are maximally regular; every key must still get
  // its own slot and verdicts must not cross-contaminate.
  constexpr size_t kKeys = 1000;
  VerdictCache cache(kKeys);
  for (uint64_t key = 1; key <= kKeys; ++key) {
    VerdictCache::Lookup lookup = cache.AcquireOrWait(key);
    ASSERT_TRUE(lookup.owner) << key;
    cache.Publish(lookup, key % 3 == 0);
  }
  for (uint64_t key = 1; key <= kKeys; ++key) {
    VerdictCache::Lookup lookup = cache.AcquireOrWait(key);
    ASSERT_FALSE(lookup.owner) << key;
    EXPECT_EQ(lookup.is_duplicate, key % 3 == 0) << key;
  }
}

TEST(VerdictCacheTest, ParallelClaimsProduceExactlyOneOwnerPerKey) {
  constexpr size_t kKeys = 512;
  constexpr size_t kThreads = 8;
  VerdictCache cache(kKeys);
  std::vector<std::atomic<int>> owners(kKeys);
  for (auto& o : owners) o.store(0);
  std::atomic<size_t> wrong_verdicts{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the keys at a different stride so claims and
      // waits interleave heavily.
      for (size_t i = 0; i < kKeys; ++i) {
        uint64_t key = 1 + ((i * (t + 1) + t) % kKeys);
        VerdictCache::Lookup lookup = cache.AcquireOrWait(key);
        bool expected = key % 2 == 0;
        if (lookup.owner) {
          owners[key - 1].fetch_add(1);
          cache.Publish(lookup, expected);
        } else if (lookup.is_duplicate != expected) {
          wrong_verdicts.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (size_t i = 0; i < kKeys; ++i) {
    EXPECT_EQ(owners[i].load(), 1) << "key " << i + 1;
  }
  EXPECT_EQ(wrong_verdicts.load(), 0u);
}

}  // namespace
}  // namespace sxnm::core
