#include "sxnm/transitive_closure.h"

#include <gtest/gtest.h>

namespace sxnm::core {
namespace {

TEST(TransitiveClosureTest, NoPairsAllSingletons) {
  ClusterSet cs = ComputeTransitiveClosure(4, {});
  EXPECT_EQ(cs.num_instances(), 4u);
  EXPECT_EQ(cs.num_clusters(), 4u);
  EXPECT_TRUE(cs.NonTrivialClusters().empty());
}

TEST(TransitiveClosureTest, ChainsMerge) {
  // 0-1, 1-2, 3-4: clusters {0,1,2}, {3,4}, {5}.
  ClusterSet cs = ComputeTransitiveClosure(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(cs.cid(0), cs.cid(2));
  EXPECT_EQ(cs.cid(3), cs.cid(4));
  EXPECT_NE(cs.cid(0), cs.cid(3));
  EXPECT_NE(cs.cid(5), cs.cid(0));
  EXPECT_EQ(cs.NonTrivialClusters().size(), 2u);
}

TEST(TransitiveClosureTest, DuplicatePairsIdempotent) {
  ClusterSet a = ComputeTransitiveClosure(3, {{0, 1}});
  ClusterSet b = ComputeTransitiveClosure(3, {{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(a.clusters(), b.clusters());
}

TEST(TransitiveClosureTest, ClosureOfClosureIsStable) {
  std::vector<OrdinalPair> pairs = {{0, 3}, {3, 5}, {1, 2}};
  ClusterSet once = ComputeTransitiveClosure(6, pairs);
  // Re-closing the already-closed pairs changes nothing.
  ClusterSet twice = ComputeTransitiveClosure(6, once.DuplicatePairs());
  EXPECT_EQ(once.clusters(), twice.clusters());
}

TEST(TransitiveClosureTest, StarTopology) {
  ClusterSet cs = ComputeTransitiveClosure(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(cs.num_clusters(), 1u);
  EXPECT_EQ(cs.clusters()[0].size(), 5u);
  EXPECT_EQ(cs.NumDuplicatePairs(), 10u);
}

TEST(TransitiveClosureTest, ZeroInstances) {
  ClusterSet cs = ComputeTransitiveClosure(0, {});
  EXPECT_EQ(cs.num_instances(), 0u);
}

}  // namespace
}  // namespace sxnm::core
