// External-sort edge cases: empty input, the no-spill resident path,
// duplicate keys spanning run boundaries (the stable-merge contract the
// sharded detector's bit-identity rests on), corruption of spill bytes,
// and the fault sites the crash/chaos suites arm.

#include "extsort/extsort.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "extsort/run_file.h"
#include "obs/metrics.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace sxnm::extsort {
namespace {

using util::StatusCode;

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct Row {
  std::string key;
  std::string payload;
};

// Drains the sorter's merge stream, checking seq monotonicity per key.
std::vector<Row> Drain(SortedStream& stream) {
  std::vector<Row> out;
  SortedRecord record;
  while (true) {
    auto more = stream.Next(&record);
    EXPECT_TRUE(more.ok()) << more.status().message();
    if (!more.ok() || !*more) break;
    out.push_back({std::string(record.key), std::string(record.payload)});
  }
  return out;
}

// The reference order: stable sort by key, insertion order on ties.
std::vector<Row> StableReference(std::vector<Row> rows) {
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.key < b.key; });
  return rows;
}

void ExpectSameRows(const std::vector<Row>& got,
                    const std::vector<Row>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << "row " << i;
    EXPECT_EQ(got[i].payload, want[i].payload) << "row " << i;
  }
}

TEST(ExtSortTest, EmptyInputYieldsEmptyStream) {
  ExternalSorter sorter(ExtSortOptions{});
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  SortedRecord record;
  auto more = (*stream)->Next(&record);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
  EXPECT_EQ(sorter.stats().rows, 0u);
  EXPECT_EQ(sorter.stats().runs, 0u);
  EXPECT_EQ(sorter.stats().spilled_runs, 0u);
}

TEST(ExtSortTest, UnboundedBudgetNeverSpills) {
  std::string dir = TestDir("extsort_nospill");
  ExtSortOptions options;
  options.temp_dir = dir;
  ExternalSorter sorter(options);
  std::vector<Row> rows = {{"b", "1"}, {"a", "2"}, {"b", "3"}, {"a", "4"}};
  for (const Row& r : rows) ASSERT_TRUE(sorter.Add(r.key, r.payload).ok());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  ExpectSameRows(Drain(**stream), StableReference(rows));
  EXPECT_EQ(sorter.stats().rows, 4u);
  EXPECT_EQ(sorter.stats().runs, 1u);
  EXPECT_EQ(sorter.stats().spilled_runs, 0u);
  EXPECT_EQ(sorter.stats().spill_bytes, 0u);
  // Nothing ever touched the spill directory.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
}

TEST(ExtSortTest, DuplicateKeysAcrossRunBoundariesStaySeqStable) {
  std::string dir = TestDir("extsort_spill");
  ExtSortOptions options;
  options.temp_dir = dir;
  options.memory_budget_bytes = 256;  // a handful of records per run
  ExternalSorter sorter(options);
  // Heavily duplicated keys so every run holds ties with its neighbors:
  // the merge must interleave them back into insertion order.
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({"key" + std::to_string(i % 5), "payload" +
                    std::to_string(i)});
  }
  for (const Row& r : rows) ASSERT_TRUE(sorter.Add(r.key, r.payload).ok());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  ExpectSameRows(Drain(**stream), StableReference(rows));
  EXPECT_EQ(sorter.stats().rows, 200u);
  EXPECT_GE(sorter.stats().spilled_runs, 2u);
  EXPECT_GT(sorter.stats().spill_bytes, 0u);
  EXPECT_GE(sorter.stats().runs, sorter.stats().spilled_runs);
}

TEST(ExtSortTest, SpillFilesRemovedByDestructor) {
  std::string dir = TestDir("extsort_cleanup");
  {
    ExtSortOptions options;
    options.temp_dir = dir;
    options.memory_budget_bytes = 64;
    ExternalSorter sorter(options);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          sorter.Add("k" + std::to_string(i), "some payload bytes").ok());
    }
    auto stream = sorter.Finish();
    ASSERT_TRUE(stream.ok());
    EXPECT_GE(sorter.stats().spilled_runs, 2u);
    EXPECT_FALSE(std::filesystem::is_empty(dir));
  }
  EXPECT_TRUE(std::filesystem::is_empty(dir));
}

TEST(ExtSortTest, FinishTwiceIsFailedPrecondition) {
  ExternalSorter sorter(ExtSortOptions{});
  ASSERT_TRUE(sorter.Finish().ok());
  auto again = sorter.Finish();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExtSortTest, PublishesMetricsCounters) {
  std::string dir = TestDir("extsort_metrics");
  obs::MetricsRegistry metrics(true);
  ExtSortOptions options;
  options.temp_dir = dir;
  options.memory_budget_bytes = 128;
  options.metrics = &metrics;
  ExternalSorter sorter(options);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(sorter.Add("k" + std::to_string(i), "payload").ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  obs::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("extsort.rows", 0), 50u);
  EXPECT_EQ(snapshot.CounterOr("extsort.runs", 0), sorter.stats().runs);
  EXPECT_EQ(snapshot.CounterOr("extsort.spilled_runs", 0),
            sorter.stats().spilled_runs);
  EXPECT_EQ(snapshot.CounterOr("extsort.spill_bytes", 0),
            sorter.stats().spill_bytes);
  EXPECT_GE(snapshot.CounterOr("extsort.merge_fanin", 0), 2u);
}

TEST(ExtSortTest, InjectedSpillFaultIsResourceExhausted) {
  std::string dir = TestDir("extsort_fault");
  ExtSortOptions options;
  options.temp_dir = dir;
  options.memory_budget_bytes = 64;
  ExternalSorter sorter(options);
  util::ScopedFault fault(kSpillFaultSite);
  util::Status failed = util::Status::Ok();
  for (int i = 0; i < 100 && failed.ok(); ++i) {
    failed = sorter.Add("k" + std::to_string(i), "some payload bytes");
  }
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kResourceExhausted);
}

TEST(ExtSortTest, PersistWriteFaultSurfacesThroughAdd) {
  std::string dir = TestDir("extsort_write_fault");
  ExtSortOptions options;
  options.temp_dir = dir;
  options.memory_budget_bytes = 64;
  ExternalSorter sorter(options);
  // The "persist.write" fault models ENOSPC mid-write, so the spill
  // surfaces it as kResourceExhausted (AtomicWriteFile semantics).
  util::ScopedFault fault("persist.write");
  util::Status failed = util::Status::Ok();
  for (int i = 0; i < 100 && failed.ok(); ++i) {
    failed = sorter.Add("k" + std::to_string(i), "some payload bytes");
  }
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kResourceExhausted);
}

// --- run_file framing ------------------------------------------------------

std::vector<RunRecord> SampleRecords() {
  static const std::vector<std::pair<std::string, std::string>> kRows = {
      {"alpha", "p0"}, {"alpha", "p1"}, {"beta", "p2"}, {"gamma", "p3"}};
  std::vector<RunRecord> records;
  for (size_t i = 0; i < kRows.size(); ++i) {
    records.push_back({kRows[i].first, i, kRows[i].second});
  }
  return records;
}

TEST(RunFileTest, RoundTripsRecords) {
  std::string path = TestDir("run_roundtrip") + "/r.run";
  std::vector<RunRecord> records = SampleRecords();
  uint64_t bytes = 0;
  ASSERT_TRUE(WriteRunFile(path, records, &bytes).ok());
  EXPECT_EQ(bytes, std::filesystem::file_size(path));
  RunReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.total_records(), records.size());
  RunRecord r;
  for (const RunRecord& want : records) {
    auto more = reader.Next(&r);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_EQ(r.key, want.key);
    EXPECT_EQ(r.seq, want.seq);
    EXPECT_EQ(r.payload, want.payload);
  }
  auto end = reader.Next(&r);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(*end);
}

TEST(RunFileTest, MissingFileIsNotFound) {
  RunReader reader;
  util::Status s = reader.Open(TestDir("run_missing") + "/nope.run");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(RunFileTest, FlippedPayloadByteIsDataLoss) {
  std::string path = TestDir("run_corrupt") + "/r.run";
  ASSERT_TRUE(WriteRunFile(path, SampleRecords()).ok());
  // Flip one byte in the block payload (past the 20-byte header + 4-byte
  // length frame), which must trip the block CRC.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(30);
  char c;
  f.seekg(30);
  f.get(c);
  f.seekp(30);
  f.put(static_cast<char>(c ^ 0x40));
  f.close();
  RunReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  RunRecord r;
  util::StatusCode code = StatusCode::kOk;
  while (true) {
    auto more = reader.Next(&r);
    if (!more.ok()) {
      code = more.status().code();
      break;
    }
    if (!*more) break;
  }
  EXPECT_EQ(code, StatusCode::kDataLoss);
}

TEST(RunFileTest, TruncatedFileIsDataLoss) {
  std::string path = TestDir("run_trunc") + "/r.run";
  ASSERT_TRUE(WriteRunFile(path, SampleRecords()).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 5);
  RunReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  RunRecord r;
  util::StatusCode code = StatusCode::kOk;
  while (true) {
    auto more = reader.Next(&r);
    if (!more.ok()) {
      code = more.status().code();
      break;
    }
    if (!*more) break;
  }
  EXPECT_EQ(code, StatusCode::kDataLoss);
}

TEST(RunFileTest, BadMagicIsDataLoss) {
  std::string path = TestDir("run_magic") + "/r.run";
  ASSERT_TRUE(WriteRunFile(path, SampleRecords()).ok());
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(0);
  f.put('X');
  f.close();
  RunReader reader;
  util::Status s = reader.Open(path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace sxnm::extsort
