#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <tuple>
#include <vector>

namespace sxnm::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2u) << "swap costs 2 in plain LD";
  EXPECT_EQ(LevenshteinDistance("book", "back"), 2u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("saturday", "sunday"),
            LevenshteinDistance("sunday", "saturday"));
}

TEST(BoundedLevenshteinTest, ExactBelowLimit) {
  EXPECT_EQ(BoundedLevenshteinDistance("kitten", "sitting", 5), 3u);
  EXPECT_EQ(BoundedLevenshteinDistance("abc", "abc", 0), 0u);
}

TEST(BoundedLevenshteinTest, CapsAboveLimit) {
  EXPECT_EQ(BoundedLevenshteinDistance("kitten", "sitting", 2), 3u)
      << "returns limit + 1";
  EXPECT_EQ(BoundedLevenshteinDistance("aaaaaaaaaa", "bbbbbbbbbb", 3), 4u);
  EXPECT_EQ(BoundedLevenshteinDistance("short", "muchlongerstring", 2), 3u)
      << "length gap alone exceeds limit";
}

TEST(BoundedLevenshteinProperty, EqualsMinOfExactAndLimitPlusOne) {
  // The bounded DP's contract over random inputs: for every limit,
  //   BoundedLevenshteinDistance(a, b, limit) == min(LD(a, b), limit + 1).
  // A small alphabet makes near-misses (distances straddling the limit)
  // common.
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<int> len_dist(0, 24);
  std::uniform_int_distribution<int> chr(0, 3);
  auto make_string = [&] {
    std::string s(static_cast<size_t>(len_dist(rng)), 'a');
    for (char& c : s) c = static_cast<char>('a' + chr(rng));
    return s;
  };
  for (int iter = 0; iter < 400; ++iter) {
    const std::string a = make_string();
    const std::string b = make_string();
    const size_t exact = LevenshteinDistance(a, b);
    for (size_t limit : {0u, 1u, 2u, 3u, 5u, 10u, 30u}) {
      ASSERT_EQ(BoundedLevenshteinDistance(a, b, limit),
                std::min(exact, limit + 1))
          << "a=\"" << a << "\" b=\"" << b << "\" limit=" << limit;
    }
  }
}

TEST(BoundedEditSimilarityTest, ExactWhenClearingMinSim) {
  bool pruned = true;
  EXPECT_DOUBLE_EQ(BoundedEditSimilarity("kitten", "sitten", 0.5, &pruned),
                   EditSimilarity("kitten", "sitten"));
  EXPECT_FALSE(pruned);
  EXPECT_DOUBLE_EQ(BoundedEditSimilarity("", "", 0.9, &pruned), 1.0);
  EXPECT_FALSE(pruned);
}

TEST(BoundedEditSimilarityTest, PrunedResultIsUpperBoundBelowMinSim) {
  bool pruned = false;
  double bound = BoundedEditSimilarity("aaaaaaaaaa", "bbbbbbbbbb", 0.9,
                                       &pruned);
  EXPECT_TRUE(pruned);
  EXPECT_LT(bound, 0.9);
  EXPECT_GE(bound, EditSimilarity("aaaaaaaaaa", "bbbbbbbbbb"));
}

TEST(BoundedEditSimilarityTest, MinSimZeroIsExact) {
  bool pruned = true;
  EXPECT_DOUBLE_EQ(BoundedEditSimilarity("abcd", "wxyz", 0.0, &pruned),
                   EditSimilarity("abcd", "wxyz"));
  EXPECT_FALSE(pruned);
}

TEST(BoundedEditSimilarityProperty, ThresholdDecisionMatchesExact) {
  // The kernel contract the similarity measure relies on: testing the
  // returned value against min_sim gives the same answer as testing the
  // exact similarity, and un-pruned results are bit-exact.
  std::mt19937 rng(424242);
  std::uniform_int_distribution<int> len_dist(0, 20);
  std::uniform_int_distribution<int> chr(0, 4);
  auto make_string = [&] {
    std::string s(static_cast<size_t>(len_dist(rng)), 'a');
    for (char& c : s) c = static_cast<char>('a' + chr(rng));
    return s;
  };
  for (int iter = 0; iter < 400; ++iter) {
    const std::string a = make_string();
    const std::string b = make_string();
    const double exact = EditSimilarity(a, b);
    for (double min_sim : {0.3, 0.5, 0.75, 0.9, 1.0}) {
      bool pruned = false;
      double got = BoundedEditSimilarity(a, b, min_sim, &pruned);
      if (!pruned) {
        ASSERT_DOUBLE_EQ(got, exact)
            << "a=\"" << a << "\" b=\"" << b << "\" min_sim=" << min_sim;
      } else {
        ASSERT_LT(got, min_sim);
        ASSERT_GE(got + 1e-12, exact) << "bound must dominate the exact value";
      }
      ASSERT_EQ(got >= min_sim, exact >= min_sim)
          << "a=\"" << a << "\" b=\"" << b << "\" min_sim=" << min_sim;
    }
  }
}

TEST(OsaTest, TranspositionCostsOne) {
  EXPECT_EQ(OsaDistance("ab", "ba"), 1u);
  EXPECT_EQ(OsaDistance("matrix", "matrxi"), 1u);
  EXPECT_EQ(OsaDistance("ca", "abc"), 3u) << "OSA (not full Damerau)";
  EXPECT_EQ(OsaDistance("", "abc"), 3u);
  EXPECT_EQ(OsaDistance("abc", ""), 3u);
}

TEST(EditSimilarityTest, NormalizedRange) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abcd", "abce"), 0.75);
}

TEST(OsaSimilarityTest, TranspositionFriendlier) {
  EXPECT_GT(OsaSimilarity("matrix", "matrxi"),
            EditSimilarity("matrix", "matrxi"));
}

TEST(NormalizedEditSimilarityTest, CaseAndWhitespaceInsensitive) {
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("The  Matrix", "the matrix"),
                   1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity(" A ", "a"), 1.0);
  EXPECT_LT(NormalizedEditSimilarity("The Matrix", "Mask of Zorro"), 0.5);
}

// Metric axioms over a string corpus (property-style sweep).
class EditMetricProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(EditMetricProperty, Axioms) {
  const auto& [a, b] = GetParam();
  size_t d_ab = LevenshteinDistance(a, b);
  size_t d_ba = LevenshteinDistance(b, a);
  EXPECT_EQ(d_ab, d_ba) << "symmetry";
  EXPECT_EQ(LevenshteinDistance(a, a), 0u) << "identity";
  if (a != b) {
    EXPECT_GT(d_ab, 0u) << "positivity";
  }
  // Distance is bounded by max length; similarity within [0, 1].
  EXPECT_LE(d_ab, std::max(a.size(), b.size()));
  double sim = EditSimilarity(a, b);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  // OSA never exceeds Levenshtein (it has a superset of operations).
  EXPECT_LE(OsaDistance(a, b), d_ab);
  // Bounded agrees when limit is generous.
  EXPECT_EQ(BoundedLevenshteinDistance(a, b, 64), d_ab);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EditMetricProperty,
    ::testing::Combine(
        ::testing::Values("", "a", "matrix", "The Mask of Zorro",
                          "Keanu Reeves", "1999", "zzzz"),
        ::testing::Values("", "b", "matrxi", "Mask of Zorro", "Keanu Reevs",
                          "1998", "zzzz")));

TEST_P(EditMetricProperty, TriangleInequality) {
  const auto& [a, b] = GetParam();
  const std::string c = "pivot string";
  EXPECT_LE(LevenshteinDistance(a, b),
            LevenshteinDistance(a, c) + LevenshteinDistance(c, b));
}

}  // namespace
}  // namespace sxnm::text
