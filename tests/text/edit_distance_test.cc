#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

namespace sxnm::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2u) << "swap costs 2 in plain LD";
  EXPECT_EQ(LevenshteinDistance("book", "back"), 2u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("saturday", "sunday"),
            LevenshteinDistance("sunday", "saturday"));
}

TEST(BoundedLevenshteinTest, ExactBelowLimit) {
  EXPECT_EQ(BoundedLevenshteinDistance("kitten", "sitting", 5), 3u);
  EXPECT_EQ(BoundedLevenshteinDistance("abc", "abc", 0), 0u);
}

TEST(BoundedLevenshteinTest, CapsAboveLimit) {
  EXPECT_EQ(BoundedLevenshteinDistance("kitten", "sitting", 2), 3u)
      << "returns limit + 1";
  EXPECT_EQ(BoundedLevenshteinDistance("aaaaaaaaaa", "bbbbbbbbbb", 3), 4u);
  EXPECT_EQ(BoundedLevenshteinDistance("short", "muchlongerstring", 2), 3u)
      << "length gap alone exceeds limit";
}

TEST(OsaTest, TranspositionCostsOne) {
  EXPECT_EQ(OsaDistance("ab", "ba"), 1u);
  EXPECT_EQ(OsaDistance("matrix", "matrxi"), 1u);
  EXPECT_EQ(OsaDistance("ca", "abc"), 3u) << "OSA (not full Damerau)";
  EXPECT_EQ(OsaDistance("", "abc"), 3u);
  EXPECT_EQ(OsaDistance("abc", ""), 3u);
}

TEST(EditSimilarityTest, NormalizedRange) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abcd", "abce"), 0.75);
}

TEST(OsaSimilarityTest, TranspositionFriendlier) {
  EXPECT_GT(OsaSimilarity("matrix", "matrxi"),
            EditSimilarity("matrix", "matrxi"));
}

TEST(NormalizedEditSimilarityTest, CaseAndWhitespaceInsensitive) {
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("The  Matrix", "the matrix"),
                   1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity(" A ", "a"), 1.0);
  EXPECT_LT(NormalizedEditSimilarity("The Matrix", "Mask of Zorro"), 0.5);
}

// Metric axioms over a string corpus (property-style sweep).
class EditMetricProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(EditMetricProperty, Axioms) {
  const auto& [a, b] = GetParam();
  size_t d_ab = LevenshteinDistance(a, b);
  size_t d_ba = LevenshteinDistance(b, a);
  EXPECT_EQ(d_ab, d_ba) << "symmetry";
  EXPECT_EQ(LevenshteinDistance(a, a), 0u) << "identity";
  if (a != b) {
    EXPECT_GT(d_ab, 0u) << "positivity";
  }
  // Distance is bounded by max length; similarity within [0, 1].
  EXPECT_LE(d_ab, std::max(a.size(), b.size()));
  double sim = EditSimilarity(a, b);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  // OSA never exceeds Levenshtein (it has a superset of operations).
  EXPECT_LE(OsaDistance(a, b), d_ab);
  // Bounded agrees when limit is generous.
  EXPECT_EQ(BoundedLevenshteinDistance(a, b, 64), d_ab);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EditMetricProperty,
    ::testing::Combine(
        ::testing::Values("", "a", "matrix", "The Mask of Zorro",
                          "Keanu Reeves", "1999", "zzzz"),
        ::testing::Values("", "b", "matrxi", "Mask of Zorro", "Keanu Reevs",
                          "1998", "zzzz")));

TEST_P(EditMetricProperty, TriangleInequality) {
  const auto& [a, b] = GetParam();
  const std::string c = "pivot string";
  EXPECT_LE(LevenshteinDistance(a, b),
            LevenshteinDistance(a, c) + LevenshteinDistance(c, b));
}

}  // namespace
}  // namespace sxnm::text
