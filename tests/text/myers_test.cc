// Differential and property tests for the bit-parallel Levenshtein
// kernels: Myers single-word and blocked must agree exactly with the
// classic row DP (the reference implementation) on arbitrary bytes.

#include "text/myers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>

#include "text/edit_distance.h"

namespace sxnm::text {
namespace {

std::string RandomString(std::mt19937& rng, size_t length,
                         bool full_byte_range) {
  static constexpr char kAlpha[] = "abcdefghijklmnopqrstuvwxyz ";
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> alpha(0, sizeof(kAlpha) - 2);
  std::string s(length, '\0');
  for (char& c : s) {
    c = full_byte_range ? static_cast<char>(byte(rng))
                        : kAlpha[alpha(rng)];
  }
  return s;
}

TEST(MyersDistanceTest, MatchesClassicDpOnRandomInputs) {
  // Lengths 0-300 cover the single-word kernel, the blocked kernel, and
  // the 64/128/192 block boundaries in between. The small alphabet
  // produces realistic match density; the full byte range exercises
  // high-bit characters and embedded NULs as ordinary symbols.
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<size_t> len(0, 300);
  for (int iter = 0; iter < 600; ++iter) {
    bool full_bytes = iter % 3 == 0;
    std::string a = RandomString(rng, len(rng), full_bytes);
    std::string b = RandomString(rng, len(rng), full_bytes);
    size_t expected = LevenshteinDistance(a, b);
    ASSERT_EQ(MyersDistance(a, b), expected)
        << "|a|=" << a.size() << " |b|=" << b.size()
        << " full_bytes=" << full_bytes;
  }
}

TEST(MyersDistanceTest, BlockBoundaryLengths) {
  // Exact block-edge pattern lengths, where carry threading between the
  // 64-bit words is easiest to get wrong.
  std::mt19937 rng(77);
  for (size_t m : {63u, 64u, 65u, 127u, 128u, 129u, 191u, 192u, 193u}) {
    for (size_t n : {1u, 64u, 65u, 200u}) {
      std::string a = RandomString(rng, m, false);
      std::string b = RandomString(rng, n, false);
      ASSERT_EQ(MyersDistance(a, b), LevenshteinDistance(a, b))
          << "m=" << m << " n=" << n;
    }
  }
}

TEST(MyersDistanceTest, AllEqualStrings) {
  for (size_t m : {1u, 40u, 64u, 65u, 130u, 300u}) {
    for (size_t n : {0u, 1u, 64u, 150u, 300u}) {
      std::string a(m, 'a');
      std::string b(n, 'a');
      ASSERT_EQ(MyersDistance(a, b), std::max(m, n) - std::min(m, n))
          << "m=" << m << " n=" << n;
    }
  }
}

TEST(MyersDistanceTest, HighBitAndNulBytes) {
  std::string a("\x00\xff\x80praha\x00", 9);
  std::string b("\x00\xfe\x80praga\x01", 9);
  EXPECT_EQ(MyersDistance(a, b), LevenshteinDistance(a, b));
  EXPECT_EQ(MyersDistance(a, a), 0u);
  std::string long_a(200, '\xc3');
  std::string long_b = long_a;
  long_b[7] = '\0';
  long_b[150] = '\xff';
  EXPECT_EQ(MyersDistance(long_a, long_b), 2u);
}

TEST(MyersDistanceTest, EmptyInputs) {
  EXPECT_EQ(MyersDistance("", ""), 0u);
  EXPECT_EQ(MyersDistance("abc", ""), 3u);
  EXPECT_EQ(MyersDistance("", std::string(100, 'x')), 100u);
}

TEST(MyersBoundedDistanceTest, HonorsMinOfDistanceAndLimitPlusOne) {
  // The bounded kernel must satisfy the same contract as
  // BoundedLevenshteinDistance: exactly min(distance, limit + 1), for
  // every limit including 0 and limits far above the distance.
  std::mt19937 rng(4242);
  std::uniform_int_distribution<size_t> len(0, 150);
  std::uniform_int_distribution<size_t> lim(0, 160);
  for (int iter = 0; iter < 500; ++iter) {
    std::string a = RandomString(rng, len(rng), iter % 4 == 0);
    std::string b = RandomString(rng, len(rng), iter % 4 == 0);
    size_t limit = lim(rng);
    size_t exact = LevenshteinDistance(a, b);
    ASSERT_EQ(MyersBoundedDistance(a, b, limit),
              std::min(exact, limit + 1))
        << "|a|=" << a.size() << " |b|=" << b.size() << " limit=" << limit;
  }
}

TEST(MyersBoundedDistanceTest, HugeLimitDoesNotOverflow) {
  EXPECT_EQ(MyersBoundedDistance("kitten", "sitting",
                                 std::numeric_limits<size_t>::max()),
            3u);
}

TEST(MyersStatsTest, CountsWordsAndCalls) {
  MyersStats& stats = ThreadMyersStats();
  MyersStats before = stats;

  // Single word: one word per text column.
  MyersDistance("abcdef", "abcdxy");
  EXPECT_EQ(stats.single_calls, before.single_calls + 1);
  EXPECT_EQ(stats.words, before.words + 6);

  // Blocked: ceil(100/64) = 2 words per column, 120 columns.
  before = stats;
  MyersDistance(std::string(100, 'a'), std::string(120, 'b'));
  EXPECT_EQ(stats.blocked_calls, before.blocked_calls + 1);
  EXPECT_EQ(stats.words, before.words + 2 * 120);

  // A bounded bail-out processes fewer columns than the text has.
  before = stats;
  EXPECT_EQ(MyersBoundedDistance(std::string(60, 'a'), std::string(60, 'b'),
                                 2),
            3u);
  EXPECT_LT(stats.words, before.words + 60);
}

}  // namespace
}  // namespace sxnm::text
