#include "text/similarity.h"

#include <gtest/gtest.h>

namespace sxnm::text {
namespace {

TEST(NumericSimilarityTest, LinearDecay) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("100", "100", 10), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("100", "105", 10), 0.5);
  EXPECT_DOUBLE_EQ(NumericSimilarity("100", "110", 10), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("100", "200", 10), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("1999", "1998", 5), 0.8);
}

TEST(NumericSimilarityTest, UnparsableFallsBackToExact) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("abc", "abc", 10), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("abc", "abd", 10), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("", "", 10), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("12", "", 10), 0.0);
}

TEST(NumericSimilarityTest, NonPositiveScaleMeansEquality) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("5", "5", 0), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("5", "6", 0), 0.0);
}

TEST(ExactSimilarityTest, ByteIdentity) {
  EXPECT_DOUBLE_EQ(ExactSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(ExactSimilarity("abc", "ABC"), 0.0);
  EXPECT_DOUBLE_EQ(ExactNormalizedSimilarity("The  Matrix", "the matrix"),
                   1.0);
  EXPECT_DOUBLE_EQ(ExactNormalizedSimilarity("a", "b"), 0.0);
}

TEST(RegistryTest, AllAdvertisedNamesResolve) {
  for (const std::string& name : SimilarityNames()) {
    auto fn = GetSimilarity(name);
    ASSERT_TRUE(fn.ok()) << name;
    double v = fn.value()("abc", "abd");
    EXPECT_GE(v, 0.0) << name;
    EXPECT_LE(v, 1.0) << name;
  }
}

TEST(RegistryTest, DefaultIsEdit) {
  auto fn = GetSimilarity("");
  ASSERT_TRUE(fn.ok());
  EXPECT_DOUBLE_EQ(fn.value()("The Matrix", "the matrix"), 1.0);
}

TEST(RegistryTest, NamesAreCaseInsensitive) {
  EXPECT_TRUE(GetSimilarity("Jaro_Winkler").ok());
  EXPECT_TRUE(GetSimilarity(" EDIT ").ok());
}

TEST(RegistryTest, ParameterizedNumeric) {
  auto fn = GetSimilarity("numeric:5");
  ASSERT_TRUE(fn.ok());
  EXPECT_DOUBLE_EQ(fn.value()("10", "12.5"), 0.5);
}

TEST(RegistryTest, BadNumericScaleRejected) {
  EXPECT_FALSE(GetSimilarity("numeric:0").ok());
  EXPECT_FALSE(GetSimilarity("numeric:-1").ok());
  EXPECT_FALSE(GetSimilarity("numeric:abc").ok());
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto fn = GetSimilarity("does_not_exist");
  ASSERT_FALSE(fn.ok());
  EXPECT_EQ(fn.status().code(), util::StatusCode::kNotFound);
}

TEST(RegistryTest, QGramVariantsDiffer) {
  auto q2 = GetSimilarity("qgram2").value();
  auto q3 = GetSimilarity("qgram3").value();
  // Same inputs, different gram size -> generally different values.
  EXPECT_NE(q2("matrix", "matrxi"), q3("matrix", "matrxi"));
}

}  // namespace
}  // namespace sxnm::text
