#include "text/soundex.h"

#include <gtest/gtest.h>

namespace sxnm::text {
namespace {

TEST(SoundexTest, ClassicReferenceCodes) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseInsensitive) {
  EXPECT_EQ(Soundex("robert"), Soundex("ROBERT"));
}

TEST(SoundexTest, ShortNamesPadded) {
  EXPECT_EQ(Soundex("A"), "A000");
  EXPECT_EQ(Soundex("Lee"), "L000");
}

TEST(SoundexTest, NonAlphaSkipped) {
  EXPECT_EQ(Soundex("  Robert!"), "R163");
  EXPECT_EQ(Soundex("123"), "0000");
  EXPECT_EQ(Soundex(""), "0000");
}

TEST(SoundexTest, SimilarSpellingsShareCode) {
  EXPECT_EQ(Soundex("Reeves"), Soundex("Reevs"));
  EXPECT_EQ(Soundex("Smith"), Soundex("Smyth"));
}

TEST(SoundexSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Robert", "Rupert"), 1.0);
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Robert", "Robert"), 1.0);
  double partial = SoundexSimilarity("Robert", "Roger");
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, 1.0);
}

TEST(SoundexSimilarityTest, Symmetric) {
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Smith", "Schmidt"),
                   SoundexSimilarity("Schmidt", "Smith"));
}

}  // namespace
}  // namespace sxnm::text
