#include "text/qgram.h"

#include <gtest/gtest.h>

namespace sxnm::text {
namespace {

TEST(QGramProfileTest, BigramsWithPadding) {
  auto grams = QGramProfile("ab", 2);
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "#a");
  EXPECT_EQ(grams[1], "ab");
  EXPECT_EQ(grams[2], "b#");
}

TEST(QGramProfileTest, TrigramsOfShortString) {
  auto grams = QGramProfile("a", 3);
  // padded: ##a## -> ##a, #a#, a##
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "##a");
}

TEST(QGramProfileTest, EmptyStringStillHasPaddingGrams) {
  auto grams = QGramProfile("", 2);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "##");
}

TEST(QGramProfileTest, QZeroIsEmpty) {
  EXPECT_TRUE(QGramProfile("abc", 0).empty());
}

TEST(QGramSimilarityTest, IdenticalAndDisjoint) {
  EXPECT_DOUBLE_EQ(QGramSimilarity("matrix", "matrix", 2), 1.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("", "", 2), 1.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("abc", "", 2), 0.0);
  EXPECT_EQ(QGramSimilarity("aaa", "zzz", 2), 0.0);
}

TEST(QGramSimilarityTest, PartialOverlap) {
  double sim = QGramSimilarity("night", "nacht", 2);
  EXPECT_GT(sim, 0.2);
  EXPECT_LT(sim, 0.8);
}

TEST(QGramSimilarityTest, SymmetricAndBounded) {
  for (const char* a : {"abc", "matrix", "zorro", ""}) {
    for (const char* b : {"abcd", "matrxi", "zorro!", "x"}) {
      double ab = QGramSimilarity(a, b, 3);
      EXPECT_DOUBLE_EQ(ab, QGramSimilarity(b, a, 3));
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
  }
}

TEST(QGramSimilarityTest, MultisetSemantics) {
  // "aaaa" has repeated grams; dice must respect multiplicities.
  double sim = QGramSimilarity("aaaa", "aa", 2);
  EXPECT_LT(sim, 1.0);
  EXPECT_GT(sim, 0.0);
}

TEST(WordJaccardTest, ExactTokensReordered) {
  EXPECT_DOUBLE_EQ(WordJaccardSimilarity("Keanu Reeves", "Reeves Keanu"),
                   1.0);
  EXPECT_DOUBLE_EQ(WordJaccardSimilarity("the matrix", "The  MATRIX"), 1.0)
      << "case and whitespace insensitive";
}

TEST(WordJaccardTest, PartialOverlap) {
  // {mask, of, zorro} vs {mask, zorro} -> 2/3.
  EXPECT_NEAR(WordJaccardSimilarity("Mask of Zorro", "Mask Zorro"), 2.0 / 3,
              1e-12);
}

TEST(WordJaccardTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(WordJaccardSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(WordJaccardSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(WordJaccardSimilarity("   ", "a"), 0.0);
}

TEST(WordJaccardTest, DisjointWords) {
  EXPECT_DOUBLE_EQ(WordJaccardSimilarity("alpha beta", "gamma delta"), 0.0);
}

TEST(MongeElkanTest, ReorderedTokensScorePerfect) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("Keanu Reeves", "Reeves Keanu"),
                   1.0);
}

TEST(MongeElkanTest, PunctuationStripped) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("Reeves, Keanu", "Keanu Reeves"),
                   1.0);
}

TEST(MongeElkanTest, SupersetScoresWell) {
  // Extra middle name: shorter side's tokens all match perfectly.
  EXPECT_DOUBLE_EQ(
      MongeElkanSimilarity("Keanu Reeves", "Keanu Charles Reeves"), 1.0);
}

TEST(MongeElkanTest, FuzzyTokensAveraged) {
  // "reevs" vs "reeves": edit sim 5/6; "keanu" matches exactly.
  EXPECT_NEAR(MongeElkanSimilarity("Keanu Reevs", "Reeves Keanu"),
              (1.0 + 5.0 / 6.0) / 2.0, 1e-12);
}

TEST(MongeElkanTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("x", ""), 0.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("", "x"), 0.0);
}

TEST(MongeElkanTest, SymmetricByConstruction) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("a b c", "c a"),
                   MongeElkanSimilarity("c a", "a b c"));
}

TEST(MongeElkanTest, DisjointIsLow) {
  EXPECT_LT(MongeElkanSimilarity("alpha beta", "qqqq wwww"), 0.4);
}

}  // namespace
}  // namespace sxnm::text
