#include <gtest/gtest.h>

#include "text/edit_distance.h"
#include "text/similarity.h"

namespace sxnm::text {
namespace {

TEST(ThresholdedEditTest, ExactAboveThreshold) {
  // Pairs whose true similarity is >= t must get the exact value.
  for (const auto& [a, b] :
       std::vector<std::pair<const char*, const char*>>{
           {"The Matrix", "The Matrxi"},
           {"Mask of Zorro", "Mask of Zoro"},
           {"identical", "identical"}}) {
    double exact = NormalizedEditSimilarity(a, b);
    ASSERT_GE(exact, 0.8);
    EXPECT_DOUBLE_EQ(ThresholdedEditSimilarity(a, b, 0.8), exact);
  }
}

TEST(ThresholdedEditTest, ClampsBelowThreshold) {
  double exact = NormalizedEditSimilarity("completely", "different!!");
  ASSERT_LT(exact, 0.8);
  EXPECT_DOUBLE_EQ(ThresholdedEditSimilarity("completely", "different!!", 0.8),
                   0.0);
}

TEST(ThresholdedEditTest, LengthFilterShortCircuits) {
  // Size gap alone decides: "ab" vs a 100-char string at t=0.9.
  std::string longer(100, 'x');
  EXPECT_DOUBLE_EQ(ThresholdedEditSimilarity("ab", longer, 0.9), 0.0);
}

TEST(ThresholdedEditTest, EmptyStrings) {
  EXPECT_DOUBLE_EQ(ThresholdedEditSimilarity("", "", 0.9), 1.0);
  EXPECT_DOUBLE_EQ(ThresholdedEditSimilarity("", "abc", 0.5), 0.0);
}

TEST(ThresholdedEditTest, ThresholdZeroIsPlainSimilarity) {
  for (const auto& [a, b] :
       std::vector<std::pair<const char*, const char*>>{
           {"abc", "xyz"}, {"Matrix", "matriX"}, {"", "q"}}) {
    EXPECT_DOUBLE_EQ(ThresholdedEditSimilarity(a, b, 0.0),
                     NormalizedEditSimilarity(a, b))
        << a << " / " << b;
  }
}

TEST(ThresholdedEditTest, BoundaryDecisionAgreesWithExact) {
  // Classification property: (filtered >= t) == (exact >= t).
  const char* corpus[] = {"Mask of Zorro", "Mask of Zoro", "Masc of Zorro",
                          "The Matrix",    "The Matrxi",   "Ocean Storm",
                          "ocean storm!",  "", "x", "Silent Harbor"};
  for (const char* a : corpus) {
    for (const char* b : corpus) {
      for (double t : {0.5, 0.75, 0.9}) {
        bool exact_pass = NormalizedEditSimilarity(a, b) >= t;
        bool filtered_pass = ThresholdedEditSimilarity(a, b, t) >= t;
        EXPECT_EQ(exact_pass, filtered_pass)
            << a << " / " << b << " @ " << t;
      }
    }
  }
}

TEST(ThresholdedEditTest, RegistryIntegration) {
  auto fn = GetSimilarity("edit_filtered:0.8");
  ASSERT_TRUE(fn.ok());
  EXPECT_GE(fn.value()("The Matrix", "The Matrxi"), 0.8);
  EXPECT_DOUBLE_EQ(fn.value()("aaaa", "zzzz"), 0.0);
  EXPECT_FALSE(GetSimilarity("edit_filtered:1.5").ok());
  EXPECT_FALSE(GetSimilarity("edit_filtered:").ok());
}

}  // namespace
}  // namespace sxnm::text
