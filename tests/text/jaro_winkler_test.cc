#include "text/jaro_winkler.h"

#include <gtest/gtest.h>

namespace sxnm::text {
namespace {

TEST(JaroTest, IdenticalAndEmpty) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
}

TEST(JaroTest, ClassicReferenceValues) {
  // Standard textbook values.
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_NEAR(JaroSimilarity("JELLYFISH", "SMELLYFISH"), 0.896296, 1e-5);
}

TEST(JaroTest, NoCommonCharacters) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, Symmetric) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("CRATE", "TRACE"),
                   JaroSimilarity("TRACE", "CRATE"));
}

TEST(JaroWinklerTest, ClassicReferenceValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DIXON", "DICKSONX"), 0.813333, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoostsOverJaro) {
  double jaro = JaroSimilarity("prefixed", "prefixes");
  double jw = JaroWinklerSimilarity("prefixed", "prefixes");
  EXPECT_GT(jw, jaro);
}

TEST(JaroWinklerTest, NoPrefixMeansNoBoost) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("xabc", "yabc"),
                   JaroSimilarity("xabc", "yabc"));
}

TEST(JaroWinklerTest, StaysWithinUnitInterval) {
  for (const char* a : {"", "a", "aaaa", "Keanu", "The Matrix"}) {
    for (const char* b : {"", "a", "aaab", "Keanu Reeves", "Matrix"}) {
      double v = JaroWinklerSimilarity(a, b);
      EXPECT_GE(v, 0.0) << a << " / " << b;
      EXPECT_LE(v, 1.0) << a << " / " << b;
    }
  }
}

TEST(JaroWinklerTest, PrefixScaleClamped) {
  // Even with an absurd scale the result must not exceed 1.
  double v = JaroWinklerSimilarity("aaaa", "aaab", /*prefix_scale=*/0.9);
  EXPECT_LE(v, 1.0);
}

}  // namespace
}  // namespace sxnm::text
