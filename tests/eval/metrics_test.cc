#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace sxnm::eval {
namespace {

using core::ClusterSet;
using core::OrdinalPair;

TEST(FMeasureTest, HarmonicMean) {
  EXPECT_DOUBLE_EQ(FMeasure(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(FMeasure(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FMeasure(1.0, 0.0), 0.0);
  EXPECT_NEAR(FMeasure(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

TEST(PairwiseMetricsTest, PerfectDetection) {
  ClusterSet gold = ClusterSet::FromClusters({{0, 1}, {2, 3, 4}}, 6);
  PairMetrics m = PairwiseMetrics(gold, gold);
  EXPECT_EQ(m.gold_pairs, 4u);
  EXPECT_EQ(m.detected_pairs, 4u);
  EXPECT_EQ(m.true_positives, 4u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(PairwiseMetricsTest, NothingDetected) {
  ClusterSet gold = ClusterSet::FromClusters({{0, 1}}, 4);
  ClusterSet detected = ClusterSet::Singletons(4);
  PairMetrics m = PairwiseMetrics(gold, detected);
  EXPECT_DOUBLE_EQ(m.precision, 1.0) << "no detections, no false positives";
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(PairwiseMetricsTest, PartialOverlap) {
  // Gold: {0,1,2}; detected: {0,1}, {2,3}.
  ClusterSet gold = ClusterSet::FromClusters({{0, 1, 2}}, 4);
  ClusterSet detected = ClusterSet::FromClusters({{0, 1}, {2, 3}}, 4);
  PairMetrics m = PairwiseMetrics(gold, detected);
  EXPECT_EQ(m.gold_pairs, 3u);
  EXPECT_EQ(m.detected_pairs, 2u);
  EXPECT_EQ(m.true_positives, 1u);  // only (0,1)
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_NEAR(m.recall, 1.0 / 3.0, 1e-12);
}

TEST(PairwiseMetricsTest, OverMergedCluster) {
  // Detector lumped two gold clusters together.
  ClusterSet gold = ClusterSet::FromClusters({{0, 1}, {2, 3}}, 4);
  ClusterSet detected = ClusterSet::FromClusters({{0, 1, 2, 3}}, 4);
  PairMetrics m = PairwiseMetrics(gold, detected);
  EXPECT_EQ(m.detected_pairs, 6u);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_NEAR(m.precision, 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(PairwiseMetricsTest, NoGoldDuplicates) {
  ClusterSet gold = ClusterSet::Singletons(3);
  ClusterSet detected = ClusterSet::FromClusters({{0, 1}}, 3);
  PairMetrics m = PairwiseMetrics(gold, detected);
  EXPECT_DOUBLE_EQ(m.recall, 1.0) << "vacuous recall";
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
}

TEST(PairwiseMetricsTest, LargeClustersComputedAnalytically) {
  // 1000-member detected cluster should not blow up.
  std::vector<size_t> big(1000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = i;
  ClusterSet gold = ClusterSet::FromClusters({big}, 1000);
  ClusterSet detected = ClusterSet::FromClusters({big}, 1000);
  PairMetrics m = PairwiseMetrics(gold, detected);
  EXPECT_EQ(m.true_positives, 1000u * 999u / 2);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(PairwiseMetricsFromPairsTest, PrecisionOverPairList) {
  ClusterSet gold = ClusterSet::FromClusters({{0, 1, 2}}, 5);
  std::vector<OrdinalPair> detected = {{0, 1}, {3, 4}};
  PairMetrics m = PairwiseMetricsFromPairs(gold, detected);
  EXPECT_EQ(m.detected_pairs, 2u);
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_NEAR(m.recall, 1.0 / 3.0, 1e-12);
}

TEST(PairwiseMetricsFromPairsTest, EmptyPairList) {
  ClusterSet gold = ClusterSet::FromClusters({{0, 1}}, 3);
  PairMetrics m = PairwiseMetricsFromPairs(gold, {});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
}

TEST(PairMetricsTest, ToStringContainsNumbers) {
  ClusterSet gold = ClusterSet::FromClusters({{0, 1}}, 2);
  PairMetrics m = PairwiseMetrics(gold, gold);
  std::string s = m.ToString();
  EXPECT_NE(s.find("P=1.0000"), std::string::npos) << s;
  EXPECT_NE(s.find("R=1.0000"), std::string::npos) << s;
  EXPECT_NE(s.find("gold=1"), std::string::npos) << s;
}

}  // namespace
}  // namespace sxnm::eval
