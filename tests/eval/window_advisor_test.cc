#include "eval/window_advisor.h"

#include <gtest/gtest.h>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/experiment.h"
#include "xml/parser.h"

namespace sxnm::eval {
namespace {

// Movies whose duplicate pair sorts at a known rank distance: the keys of
// the pair are equal, but `gap` unrelated movies with the same key prefix
// sit between them in document order (equal keys keep document order).
xml::Document DocWithGap(size_t gap) {
  std::string xml = "<db><movies>";
  xml += "<movie><title>Silent Harbor Alpha</title></movie>";
  static constexpr const char* kSuffixes[] = {
      "Bqqqw", "Cwwwz", "Dzzzk", "Ekkkp", "Fpppm",
      "Gmmmv", "Hvvvr", "Jrrrg", "Kgggt", "Ltttb"};
  for (size_t i = 0; i < gap; ++i) {
    xml += std::string("<movie><title>Silent Harbor ") +
           kSuffixes[i % 10] + "</title></movie>";
  }
  xml += "<movie><title>Silent Harbor Alphaz</title></movie>";
  xml += "</movies></db>";
  auto doc = xml::Parse(xml);
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

core::Config GapConfig() {
  core::Config config;
  auto movie = core::CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K5"}})  // SLNTH for every movie
                   .Window(3)
                   .OdThreshold(0.9)
                   .Build();
  EXPECT_TRUE(movie.ok());
  EXPECT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  return config;
}

TEST(WindowAdvisorTest, RecommendsWindowCoveringKnownGap) {
  for (size_t gap : {2u, 5u, 8u}) {
    xml::Document doc = DocWithGap(gap);
    WindowAdviceOptions options;
    options.sample_size = 100;  // sample everything
    options.coverage = 1.0;
    auto advice = AdviseWindow(GapConfig(), doc, "movie", options);
    ASSERT_TRUE(advice.ok()) << advice.status().ToString();
    // The only similar pair sits gap+1 ranks apart.
    EXPECT_EQ(advice->max_distance, gap + 1) << "gap " << gap;
    EXPECT_EQ(advice->recommended_window, gap + 2) << "gap " << gap;
    EXPECT_GE(advice->similar_pairs, 1u);
  }
}

TEST(WindowAdvisorTest, AdvisedWindowActuallyFindsThePair) {
  xml::Document doc = DocWithGap(6);
  WindowAdviceOptions options;
  options.sample_size = 100;
  options.coverage = 1.0;
  core::Config config = GapConfig();
  auto advice = AdviseWindow(config, doc, "movie", options);
  ASSERT_TRUE(advice.ok());

  // With the original window 3 the pair is missed...
  auto before = core::Detector(config).Run(doc);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->Find("movie")->duplicate_pairs.empty());

  // ...with the advised window it is found.
  auto tuned = WithWindowFor(config, "movie", advice->recommended_window);
  ASSERT_TRUE(tuned.ok());
  auto after = core::Detector(tuned.value()).Run(doc);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->Find("movie")->duplicate_pairs.size(), 1u);
}

TEST(WindowAdvisorTest, NoSimilarPairsMeansNoEvidence) {
  auto doc = xml::Parse(
      "<db><movies>"
      "<movie><title>Aaaa Bbbb</title></movie>"
      "<movie><title>Qqqq Wwww</title></movie>"
      "<movie><title>Zzzz Kkkk</title></movie>"
      "</movies></db>");
  ASSERT_TRUE(doc.ok());
  auto advice = AdviseWindow(GapConfig(), doc.value(), "movie", {});
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->similar_pairs, 0u);
  EXPECT_EQ(advice->recommended_window, 2u);
}

TEST(WindowAdvisorTest, CoveragePercentileTrimsOutliers) {
  // 10 adjacent duplicate pairs plus one far-apart outlier: 1.0 coverage
  // demands a big window, 0.9 coverage keeps it small.
  std::string xml = "<db><movies>";
  static constexpr const char* kPairs[] = {"Qq", "Ww", "Ee", "Rr", "Tt",
                                           "Yy", "Uu", "Pp", "Ss", "Dd"};
  for (const char* p : kPairs) {
    xml += std::string("<movie><title>Pair ") + p + " Xxxx</title></movie>";
    xml += std::string("<movie><title>Pair ") + p + " Xxxz</title></movie>";
  }
  // Outlier duplicate whose partner sorts far away (key differs at K1).
  xml += "<movie><title>Aaaa Harbor Qrst</title></movie>";
  xml += "<movie><title>zAaaa Harbor Qrst</title></movie>";
  xml += "</movies></db>";
  auto doc = xml::Parse(xml);
  ASSERT_TRUE(doc.ok());

  WindowAdviceOptions full;
  full.sample_size = 100;
  full.coverage = 1.0;
  auto advice_full = AdviseWindow(GapConfig(), doc.value(), "movie", full);
  ASSERT_TRUE(advice_full.ok());

  WindowAdviceOptions trimmed = full;
  trimmed.coverage = 0.9;
  auto advice_trimmed =
      AdviseWindow(GapConfig(), doc.value(), "movie", trimmed);
  ASSERT_TRUE(advice_trimmed.ok());

  EXPECT_GT(advice_full->recommended_window,
            advice_trimmed->recommended_window);
}

TEST(WindowAdvisorTest, InputValidation) {
  xml::Document doc = DocWithGap(2);
  core::Config config = GapConfig();
  WindowAdviceOptions options;
  options.coverage = 0.0;
  EXPECT_FALSE(AdviseWindow(config, doc, "movie", options).ok());
  options.coverage = 0.95;
  options.sample_size = 0;
  EXPECT_FALSE(AdviseWindow(config, doc, "movie", options).ok());
  options.sample_size = 10;
  options.key_index = 5;
  EXPECT_FALSE(AdviseWindow(config, doc, "movie", options).ok());
  options.key_index = 0;
  EXPECT_FALSE(AdviseWindow(config, doc, "ghost", options).ok());
}

TEST(WindowAdvisorTest, WorksOnGeneratedData) {
  datagen::MovieDataOptions gen;
  gen.num_movies = 200;
  gen.seed = 5;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(3));
  ASSERT_TRUE(dirty.ok());
  auto config = datagen::MovieConfig(10);
  ASSERT_TRUE(config.ok());

  WindowAdviceOptions options;
  options.sample_size = 40;
  auto advice = AdviseWindow(config.value(), dirty.value(), "movie", options);
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_GT(advice->similar_pairs, 10u);
  EXPECT_GE(advice->recommended_window, 2u);
  EXPECT_LE(advice->recommended_window,
            dirty->element_count());
}

}  // namespace
}  // namespace sxnm::eval
