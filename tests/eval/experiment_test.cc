#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace sxnm::eval {
namespace {

constexpr const char* kDoc = R"(
<db>
  <movies>
    <movie _gold="m0" year="1999"><title>The Matrix</title></movie>
    <movie _gold="m0" year="1999"><title>The Matrxi</title></movie>
    <movie _gold="m1" year="1998"><title>Mask of Zorro</title></movie>
    <movie _gold="m2" year="2001"><title>Ocean Storm</title></movie>
  </movies>
</db>
)";

core::Config BaseConfig() {
  core::Config config;
  auto movie = core::CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Path(2, "@year")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K5"}})
                   .Key({{2, "D3,D4"}})
                   .Window(3)
                   .OdThreshold(0.8)
                   .Build();
  EXPECT_TRUE(movie.ok());
  EXPECT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  return config;
}

TEST(WithSingleKeyTest, KeepsOnlyRequestedKey) {
  auto single = WithSingleKey(BaseConfig(), "movie", 1);
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(single->Find("movie")->keys.size(), 1u);
  EXPECT_EQ(single->Find("movie")->keys[0].parts[0].pattern.ToString(),
            "D3,D4");
}

TEST(WithSingleKeyTest, OutOfRangeRejected) {
  EXPECT_FALSE(WithSingleKey(BaseConfig(), "movie", 2).ok());
  EXPECT_FALSE(WithSingleKey(BaseConfig(), "nope", 0).ok());
}

TEST(WithWindowTest, OverridesAllCandidates) {
  core::Config windowed = WithWindow(BaseConfig(), 17);
  EXPECT_EQ(windowed.Find("movie")->window_size, 17u);
}

TEST(WithWindowForTest, TargetsOneCandidate) {
  auto windowed = WithWindowFor(BaseConfig(), "movie", 9);
  ASSERT_TRUE(windowed.ok());
  EXPECT_EQ(windowed->Find("movie")->window_size, 9u);
  EXPECT_FALSE(WithWindowFor(BaseConfig(), "nope", 9).ok());
}

TEST(WithClassifierTest, OverridesThresholds) {
  core::ClassifierConfig cls;
  cls.od_threshold = 0.42;
  cls.mode = core::CombineMode::kDescGate;
  auto overridden = WithClassifier(BaseConfig(), "movie", cls);
  ASSERT_TRUE(overridden.ok());
  EXPECT_DOUBLE_EQ(overridden->Find("movie")->classifier.od_threshold, 0.42);
  EXPECT_EQ(overridden->Find("movie")->classifier.mode,
            core::CombineMode::kDescGate);
  EXPECT_FALSE(WithClassifier(BaseConfig(), "nope", cls).ok());
}

TEST(RunAndEvaluateTest, ComputesMetricsAgainstGold) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  auto eval = RunAndEvaluate(BaseConfig(), doc.value(), "movie");
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_EQ(eval->instances, 4u);
  EXPECT_EQ(eval->metrics.gold_pairs, 1u);
  EXPECT_EQ(eval->metrics.true_positives, 1u);
  EXPECT_DOUBLE_EQ(eval->metrics.recall, 1.0);
  EXPECT_DOUBLE_EQ(eval->metrics.precision, 1.0);
  EXPECT_GT(eval->comparisons, 0u);
  EXPECT_EQ(eval->detected_clusters, 1u);
}

TEST(RunAndEvaluateTest, UnknownCandidateRejected) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(RunAndEvaluate(BaseConfig(), doc.value(), "ghost").ok());
}

TEST(WindowSweepTest, ProducesPointsPerKeyAndMp) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  auto points = WindowSweep(BaseConfig(), doc.value(), "movie", {2, 4});
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  // 2 windows x (2 single keys + MP) = 6 points.
  ASSERT_EQ(points->size(), 6u);
  EXPECT_EQ((*points)[0].label, "Key 1");
  EXPECT_EQ((*points)[1].label, "Key 2");
  EXPECT_EQ((*points)[2].label, "MP");
  EXPECT_EQ((*points)[0].window, 2u);
  EXPECT_EQ((*points)[3].window, 4u);
}

TEST(WindowSweepTest, MultipassRecallAtLeastSingleKey) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  auto points = WindowSweep(BaseConfig(), doc.value(), "movie", {2, 3, 4});
  ASSERT_TRUE(points.ok());
  // Within each window, MP recall >= every single-key recall (MP compares
  // a superset of pairs).
  for (size_t i = 0; i < points->size(); i += 3) {
    double mp_recall = (*points)[i + 2].eval.metrics.recall;
    EXPECT_GE(mp_recall, (*points)[i].eval.metrics.recall);
    EXPECT_GE(mp_recall, (*points)[i + 1].eval.metrics.recall);
  }
}

TEST(WindowSweepTest, CanDisableSingleOrMultipass) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  auto mp_only = WindowSweep(BaseConfig(), doc.value(), "movie", {3},
                             /*include_single_keys=*/false,
                             /*include_multipass=*/true);
  ASSERT_TRUE(mp_only.ok());
  EXPECT_EQ(mp_only->size(), 1u);
  auto sp_only = WindowSweep(BaseConfig(), doc.value(), "movie", {3},
                             /*include_single_keys=*/true,
                             /*include_multipass=*/false);
  ASSERT_TRUE(sp_only.ok());
  EXPECT_EQ(sp_only->size(), 2u);
}

}  // namespace
}  // namespace sxnm::eval
