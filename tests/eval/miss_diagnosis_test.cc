// Gold-joined miss diagnosis: every pairwise false negative lands in
// exactly one MissKind bucket, windowed-but-rejected misses carry the
// exact rejecting score, governed runs attribute their losses to shed
// work, and the per-pass attribution rows attach to the DetectionReport.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "eval/miss_diagnosis.h"
#include "sxnm/detector.h"
#include "xml/node.h"

namespace sxnm::eval {
namespace {

xml::Document DirtyMovies(size_t num_movies, unsigned data_seed,
                          unsigned dirty_seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = data_seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty =
      datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(dirty_seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

TEST(MissDiagnosisTest, PartitionCoversEveryFalseNegative) {
  xml::Document dirty = DirtyMovies(200, 7, 3);
  auto config = datagen::MovieConfig(/*window=*/8);
  ASSERT_TRUE(config.ok());
  core::Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  auto result = core::Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto diag = DiagnoseMisses(cfg, dirty, result.value(), "movie");
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();

  // The partition has no remainder: every gold pair is a true positive
  // or exactly one classified miss.
  EXPECT_EQ(diag->true_positives + diag->misses.size(), diag->gold_pairs);
  EXPECT_EQ(diag->CountKind(MissKind::kNeverWindowed) +
                diag->CountKind(MissKind::kWindowedButRejected) +
                diag->CountKind(MissKind::kShed),
            diag->misses.size());

  // Cross-check the headline counts against the pairwise metrics.
  auto gold = GoldClusterSet(dirty,
                             cfg.Find("movie")->absolute_path.ToString());
  ASSERT_TRUE(gold.ok());
  PairMetrics quality =
      PairwiseMetrics(gold.value(), result->Find("movie")->clusters);
  EXPECT_EQ(diag->gold_pairs, quality.gold_pairs);
  EXPECT_EQ(diag->detected_pairs, quality.detected_pairs);
  EXPECT_EQ(diag->true_positives, quality.true_positives);
  EXPECT_EQ(diag->false_positives.size(),
            quality.detected_pairs - quality.true_positives);

  const size_t window = cfg.Find("movie")->window_size;
  for (const MissedPair& miss : diag->misses) {
    ASSERT_EQ(miss.rank_gaps.size(), cfg.Find("movie")->keys.size());
    switch (miss.kind) {
      case MissKind::kNeverWindowed:
        // No pass sorted the two instances within window distance.
        EXPECT_GE(miss.min_rank_gap, window);
        EXPECT_EQ(miss.pass, -1);
        break;
      case MissKind::kWindowedButRejected:
        EXPECT_GE(miss.pass, 0);
        ASSERT_TRUE(miss.has_explain);
        // Rejected means the exact score faced the threshold and lost.
        EXPECT_LT(miss.explain.score, miss.explain.threshold + 1e-6);
        break;
      case MissKind::kShed:
        ADD_FAILURE() << "ungoverned run must not shed";
        break;
    }
  }
}

TEST(MissDiagnosisTest, WorksWithoutMetrics) {
  // The replay falls back to the degradation report (here: none) when
  // the run kept no per-pass statistics.
  xml::Document dirty = DirtyMovies(120, 17, 5);
  auto config = datagen::MovieConfig(/*window=*/8);
  ASSERT_TRUE(config.ok());
  auto result = core::Detector(config.value()).Run(dirty);
  ASSERT_TRUE(result.ok());

  auto diag = DiagnoseMisses(config.value(), dirty, result.value(), "movie");
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  EXPECT_EQ(diag->true_positives + diag->misses.size(), diag->gold_pairs);
  EXPECT_EQ(diag->CountKind(MissKind::kShed), 0u);
}

TEST(MissDiagnosisTest, AttributionRowsAreConsistent) {
  xml::Document dirty = DirtyMovies(200, 27, 9);
  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());
  core::Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  auto result = core::Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok());

  auto diag = DiagnoseMisses(cfg, dirty, result.value(), "movie");
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  ASSERT_EQ(diag->attribution.size(), cfg.Find("movie")->keys.size());
  bool any_windowed = false;
  for (const core::PassAttribution& row : diag->attribution) {
    EXPECT_EQ(row.candidate, "movie");
    EXPECT_EQ(row.gold_pairs, diag->gold_pairs);
    EXPECT_LE(row.gold_windowed, row.gold_pairs);
    EXPECT_LE(row.accepted_gold, row.accepted);
    EXPECT_LE(row.accepted_gold, row.gold_windowed);
    EXPECT_GE(row.precision, 0.0);
    EXPECT_LE(row.precision, 1.0);
    EXPECT_GE(row.recall, 0.0);
    EXPECT_LE(row.recall, 1.0);
    any_windowed = any_windowed || row.gold_windowed > 0;
  }
  EXPECT_TRUE(any_windowed);

  // Attach to the report: one attribution row per pass, rendered.
  AttachAttribution(diag.value(), result->report);
  EXPECT_EQ(result->report.attribution.size(), diag->attribution.size());
  std::string table = result->report.AttributionTable();
  EXPECT_NE(table.find("gold_windowed"), std::string::npos);
  EXPECT_NE(result->report.ToJson().find("\"attribution\""),
            std::string::npos);
}

TEST(MissDiagnosisTest, GovernedRunClassifiesShedPairs) {
  xml::Document dirty = DirtyMovies(200, 37, 5);
  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());
  core::Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  // Budget for less than one full pass: the rest is shed.
  cfg.mutable_limits().max_comparisons = 1500;
  auto result = core::Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->degraded());

  auto diag = DiagnoseMisses(cfg, dirty, result.value(), "movie");
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  EXPECT_EQ(diag->true_positives + diag->misses.size(), diag->gold_pairs);
  // Work was shed, so some gold pairs must be attributed to it.
  EXPECT_GT(diag->CountKind(MissKind::kShed), 0u);
  for (const MissedPair& miss : diag->misses) {
    if (miss.kind == MissKind::kShed) {
      EXPECT_GE(miss.pass, 0);
    }
  }
  EXPECT_NE(diag->ToString().find("shed"), std::string::npos);
}

TEST(MissDiagnosisTest, UnknownCandidateFails) {
  xml::Document dirty = DirtyMovies(30, 47, 1);
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  auto result = core::Detector(config.value()).Run(dirty);
  ASSERT_TRUE(result.ok());
  auto diag = DiagnoseMisses(config.value(), dirty, result.value(), "nope");
  EXPECT_FALSE(diag.ok());
}

}  // namespace
}  // namespace sxnm::eval
