#include "eval/report.h"

#include <gtest/gtest.h>

#include "sxnm/config.h"
#include "sxnm/detector.h"
#include "xml/parser.h"

namespace sxnm::eval {
namespace {

constexpr const char* kDoc = R"(
<db>
  <movies>
    <movie _gold="m0"><title>The Matrix</title></movie>
    <movie _gold="m0"><title>The Matrxi</title></movie>
    <movie _gold="m1"><title>Ocean Storm</title></movie>
  </movies>
</db>
)";

core::Config MovieConfig() {
  core::Config config;
  auto movie = core::CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K5"}})
                   .Window(3)
                   .OdThreshold(0.8)
                   .Build();
  EXPECT_TRUE(movie.ok());
  EXPECT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  return config;
}

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parsed = xml::Parse(kDoc);
    ASSERT_TRUE(parsed.ok());
    doc_ = std::move(parsed).value();
    config_ = MovieConfig();
    auto result = core::Detector(config_).Run(doc_);
    ASSERT_TRUE(result.ok());
    result_ = std::move(result).value();
  }

  xml::Document doc_;
  core::Config config_;
  core::DetectionResult result_;
};

TEST_F(ReportTest, ContainsCandidateSummary) {
  auto report = RenderReport(config_, doc_, result_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("candidate 'movie'"), std::string::npos);
  EXPECT_NE(report->find("instances:       3"), std::string::npos);
  EXPECT_NE(report->find("duplicate pairs: 1"), std::string::npos);
  EXPECT_NE(report->find("clusters (>1):   1"), std::string::npos);
  EXPECT_NE(report->find("db/movies/movie"), std::string::npos);
}

TEST_F(ReportTest, ContainsPhaseTimings) {
  auto report = RenderReport(config_, doc_, result_);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("KG="), std::string::npos);
  EXPECT_NE(report->find("DD="), std::string::npos);
  EXPECT_NE(report->find("total comparisons:"), std::string::npos);
}

TEST_F(ReportTest, GoldMetricsWhenRequested) {
  ReportOptions options;
  options.with_gold = true;
  auto report = RenderReport(config_, doc_, result_, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("quality:"), std::string::npos);
  EXPECT_NE(report->find("R=1.0000"), std::string::npos) << *report;
}

TEST_F(ReportTest, NoGoldSectionByDefault) {
  auto report = RenderReport(config_, doc_, result_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->find("quality:"), std::string::npos);
}

TEST_F(ReportTest, LargestClustersListEids) {
  auto report = RenderReport(config_, doc_, result_);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("largest #1 (2 members)"), std::string::npos)
      << *report;
}

TEST(ClusterSizeHistogramTest, CountsBySize) {
  core::ClusterSet cs =
      core::ClusterSet::FromClusters({{0, 1}, {2, 3}, {4, 5, 6}}, 8);
  auto histogram = ClusterSizeHistogram(cs);
  EXPECT_EQ(histogram[1], 1u);  // singleton {7}
  EXPECT_EQ(histogram[2], 2u);
  EXPECT_EQ(histogram[3], 1u);
}

}  // namespace
}  // namespace sxnm::eval
