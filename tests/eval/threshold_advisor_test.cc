#include "eval/threshold_advisor.h"

#include <gtest/gtest.h>

#include "datagen/dirty_gen.h"
#include "datagen/freedb.h"
#include "datagen/movies.h"
#include "eval/experiment.h"
#include "xml/parser.h"

namespace sxnm::eval {
namespace {

TEST(ThresholdAdvisorTest, FindsGoodThresholdOnLabeledSample) {
  auto sample = datagen::GenerateDataSet2(120, 11);
  ASSERT_TRUE(sample.ok());
  auto config = datagen::CdConfig(4);
  ASSERT_TRUE(config.ok());
  config->Find("disc")->classifier.mode = core::CombineMode::kOdOnly;

  auto advice = CalibrateOdThreshold(config.value(), sample.value(), "disc");
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_GE(advice->recommended, 0.5);
  EXPECT_LE(advice->recommended, 0.95);
  EXPECT_GT(advice->best_f1, 0.8);
  EXPECT_FALSE(advice->sweep.empty());

  // The recommended threshold performs at least as well as the sweep's
  // endpoints on the same sample.
  EXPECT_GE(advice->best_f1, advice->sweep.front().metrics.f1);
  EXPECT_GE(advice->best_f1, advice->sweep.back().metrics.f1);
}

TEST(ThresholdAdvisorTest, SweepCoversRequestedRange) {
  auto sample = datagen::GenerateDataSet2(60, 3);
  ASSERT_TRUE(sample.ok());
  auto config = datagen::CdConfig(4);
  ASSERT_TRUE(config.ok());

  ThresholdAdviceOptions options;
  options.min_threshold = 0.6;
  options.max_threshold = 0.8;
  options.step = 0.1;
  auto advice = CalibrateOdThreshold(config.value(), sample.value(), "disc",
                                     options);
  ASSERT_TRUE(advice.ok());
  ASSERT_EQ(advice->sweep.size(), 3u);
  EXPECT_DOUBLE_EQ(advice->sweep[0].threshold, 0.6);
  EXPECT_DOUBLE_EQ(advice->sweep[2].threshold, 0.8);
}

TEST(ThresholdAdvisorTest, CalibratedThresholdTransfersToLargerData) {
  // Calibrate on a small sample, evaluate on a 4x larger data set from a
  // different seed: the learned threshold should stay near-optimal.
  auto sample = datagen::GenerateDataSet2(100, 21);
  ASSERT_TRUE(sample.ok());
  auto big = datagen::GenerateDataSet2(400, 22);
  ASSERT_TRUE(big.ok());
  auto config = datagen::CdConfig(4);
  ASSERT_TRUE(config.ok());
  config->Find("disc")->classifier.mode = core::CombineMode::kOdOnly;

  auto advice = CalibrateOdThreshold(config.value(), sample.value(), "disc");
  ASSERT_TRUE(advice.ok());

  core::ClassifierConfig tuned = config->Find("disc")->classifier;
  tuned.od_threshold = advice->recommended;
  auto eval_tuned = RunAndEvaluate(
      WithClassifier(config.value(), "disc", tuned).value(), big.value(),
      "disc");
  ASSERT_TRUE(eval_tuned.ok());

  // A deliberately bad threshold must do worse.
  core::ClassifierConfig bad = tuned;
  bad.od_threshold = 0.5;
  auto eval_bad = RunAndEvaluate(
      WithClassifier(config.value(), "disc", bad).value(), big.value(),
      "disc");
  ASSERT_TRUE(eval_bad.ok());
  EXPECT_GT(eval_tuned->metrics.f1, eval_bad->metrics.f1);
}

TEST(ThresholdAdvisorTest, RejectsUnlabeledSample) {
  auto doc = xml::Parse("<freedb><disc><artist>A</artist>"
                        "<dtitle>T</dtitle><tracks/></disc></freedb>");
  ASSERT_TRUE(doc.ok());
  auto config = datagen::CdConfig(4);
  ASSERT_TRUE(config.ok());
  auto advice = CalibrateOdThreshold(config.value(), doc.value(), "disc");
  ASSERT_FALSE(advice.ok());
  EXPECT_EQ(advice.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(ThresholdAdvisorTest, InputValidation) {
  auto sample = datagen::GenerateDataSet2(30, 1);
  ASSERT_TRUE(sample.ok());
  auto config = datagen::CdConfig(4);
  ASSERT_TRUE(config.ok());

  ThresholdAdviceOptions bad_step;
  bad_step.step = 0.0;
  EXPECT_FALSE(CalibrateOdThreshold(config.value(), sample.value(), "disc",
                                    bad_step)
                   .ok());
  ThresholdAdviceOptions bad_range;
  bad_range.min_threshold = 0.9;
  bad_range.max_threshold = 0.5;
  EXPECT_FALSE(CalibrateOdThreshold(config.value(), sample.value(), "disc",
                                    bad_range)
                   .ok());
  EXPECT_FALSE(
      CalibrateOdThreshold(config.value(), sample.value(), "ghost").ok());
}

}  // namespace
}  // namespace sxnm::eval
