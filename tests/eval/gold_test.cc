#include "eval/gold.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace sxnm::eval {
namespace {

constexpr const char* kDoc = R"(
<db>
  <item _gold="a"/>
  <item _gold="b"/>
  <item _gold="a"/>
  <item/>
  <item _gold="b"/>
  <item/>
</db>
)";

TEST(GoldLabelsTest, ReadsAttributesInDocumentOrder) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  auto labels = GoldLabels(doc.value(), "db/item");
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels->size(), 6u);
  EXPECT_EQ((*labels)[0], "a");
  EXPECT_EQ((*labels)[1], "b");
  EXPECT_EQ((*labels)[2], "a");
  EXPECT_EQ((*labels)[4], "b");
}

TEST(GoldLabelsTest, UnlabeledGetUniqueSyntheticLabels) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  auto labels = GoldLabels(doc.value(), "db/item");
  ASSERT_TRUE(labels.ok());
  EXPECT_NE((*labels)[3], (*labels)[5]);
}

TEST(GoldClusterSetTest, GroupsByLabel) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  auto gold = GoldClusterSet(doc.value(), "db/item");
  ASSERT_TRUE(gold.ok());
  EXPECT_EQ(gold->num_instances(), 6u);
  EXPECT_EQ(gold->num_clusters(), 4u);  // {0,2}, {1,4}, {3}, {5}
  EXPECT_EQ(gold->cid(0), gold->cid(2));
  EXPECT_EQ(gold->cid(1), gold->cid(4));
  EXPECT_NE(gold->cid(0), gold->cid(1));
  EXPECT_EQ(gold->NumDuplicatePairs(), 2u);
}

TEST(GoldClusterSetTest, CustomAttributeName) {
  auto doc = xml::Parse("<db><x key=\"k\"/><x key=\"k\"/></db>");
  ASSERT_TRUE(doc.ok());
  auto gold = GoldClusterSet(doc.value(), "db/x", "key");
  ASSERT_TRUE(gold.ok());
  EXPECT_EQ(gold->NumDuplicatePairs(), 1u);
}

TEST(GoldClusterSetTest, BadPathRejected) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(GoldClusterSet(doc.value(), "db/item[").ok());
  EXPECT_FALSE(GoldClusterSet(doc.value(), "db/item/@x").ok());
}

TEST(GoldClusterSetTest, NoMatchesIsEmpty) {
  auto doc = xml::Parse(kDoc);
  ASSERT_TRUE(doc.ok());
  auto gold = GoldClusterSet(doc.value(), "db/none");
  ASSERT_TRUE(gold.ok());
  EXPECT_EQ(gold->num_instances(), 0u);
}

}  // namespace
}  // namespace sxnm::eval
