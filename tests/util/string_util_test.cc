#include "util/string_util.h"

#include <gtest/gtest.h>

namespace sxnm::util {
namespace {

TEST(CharClassTest, AlphaDigitSpace) {
  EXPECT_TRUE(IsAsciiAlpha('a'));
  EXPECT_TRUE(IsAsciiAlpha('Z'));
  EXPECT_FALSE(IsAsciiAlpha('1'));
  EXPECT_FALSE(IsAsciiAlpha(' '));
  EXPECT_TRUE(IsAsciiDigit('0'));
  EXPECT_TRUE(IsAsciiDigit('9'));
  EXPECT_FALSE(IsAsciiDigit('a'));
  EXPECT_TRUE(IsAsciiSpace('\t'));
  EXPECT_TRUE(IsAsciiSpace('\n'));
  EXPECT_FALSE(IsAsciiSpace('x'));
}

TEST(CharClassTest, ConsonantsAndVowels) {
  EXPECT_TRUE(IsConsonant('b'));
  EXPECT_TRUE(IsConsonant('Z'));
  EXPECT_TRUE(IsConsonant('y')) << "y counts as consonant for SNM keys";
  EXPECT_FALSE(IsConsonant('a'));
  EXPECT_FALSE(IsConsonant('E'));
  EXPECT_FALSE(IsConsonant('3'));
  EXPECT_TRUE(IsVowel('u'));
  EXPECT_TRUE(IsVowel('O'));
  EXPECT_FALSE(IsVowel('y'));
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
  EXPECT_EQ(AsciiToLower('A'), 'a');
  EXPECT_EQ(AsciiToUpper('z'), 'Z');
  EXPECT_EQ(AsciiToLower('-'), '-');
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(NormalizeWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(NormalizeWhitespace("  The   Matrix "), "The Matrix");
  EXPECT_EQ(NormalizeWhitespace("a\tb\nc"), "a b c");
  EXPECT_EQ(NormalizeWhitespace(""), "");
  EXPECT_EQ(NormalizeWhitespace(" \n "), "");
}

TEST(SplitTest, SplitOnComma) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, SplitWhitespaceSkipsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("movie_database", "movie"));
  EXPECT_FALSE(StartsWith("movie", "movie_database"));
  EXPECT_TRUE(EndsWith("title/text()", "text()"));
  EXPECT_FALSE(EndsWith("text()", "title/text()"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba") << "non-overlapping";
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc") << "empty needle is a no-op";
}

TEST(ParseIntTest, ValidAndInvalid) {
  EXPECT_EQ(ParseNonNegativeInt("0"), 0);
  EXPECT_EQ(ParseNonNegativeInt("123"), 123);
  EXPECT_EQ(ParseNonNegativeInt(""), -1);
  EXPECT_EQ(ParseNonNegativeInt("-3"), -1);
  EXPECT_EQ(ParseNonNegativeInt("12a"), -1);
  EXPECT_EQ(ParseNonNegativeInt("99999999999999999999"), -1) << "overflow";
}

TEST(ParseDoubleTest, FallbackOnGarbage) {
  EXPECT_DOUBLE_EQ(ParseDoubleOr("0.8", -1), 0.8);
  EXPECT_DOUBLE_EQ(ParseDoubleOr(" 2.5 ", -1), 2.5);
  EXPECT_DOUBLE_EQ(ParseDoubleOr("abc", -1), -1);
  EXPECT_DOUBLE_EQ(ParseDoubleOr("", 3.5), 3.5);
  EXPECT_DOUBLE_EQ(ParseDoubleOr("1.5x", 0), 0);
}

TEST(ExtractTest, PaperRunningExample) {
  // "Mask of Zorro" -> consonants MSKFZRR (underlined in the paper).
  EXPECT_EQ(ExtractConsonants("Mask of Zorro"), "MSKFZRR");
  EXPECT_EQ(ExtractDigits("19.10.1998"), "19101998");
  EXPECT_EQ(ExtractAlnum("Mask of Zorro!"), "MASKOFZORRO");
}

TEST(ExtractTest, EmptyAndNoMatches) {
  EXPECT_EQ(ExtractConsonants(""), "");
  EXPECT_EQ(ExtractConsonants("aeiou"), "");
  EXPECT_EQ(ExtractDigits("no digits"), "");
  EXPECT_EQ(ExtractAlnum("!@#$"), "");
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(0.123456, 4), "0.1235");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace sxnm::util
