#include "util/union_find.h"

#include <gtest/gtest.h>

namespace sxnm::util {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  EXPECT_EQ(uf.NumSets(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesAndReportsNewness) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(0, 1)) << "already merged";
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_EQ(uf.SetSize(1), 2u);
}

TEST(UnionFindTest, TransitivityThroughChains) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(4, 5);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(2, 4));
  uf.Union(2, 4);
  EXPECT_TRUE(uf.Connected(0, 5));
  EXPECT_EQ(uf.NumSets(), 2u);  // {0,1,2,4,5} and {3}
  EXPECT_EQ(uf.SetSize(5), 5u);
}

TEST(UnionFindTest, ClustersArePartition) {
  UnionFind uf(7);
  uf.Union(0, 3);
  uf.Union(3, 6);
  uf.Union(1, 2);
  auto clusters = uf.Clusters();
  // Every element exactly once.
  std::vector<bool> seen(7, false);
  for (const auto& c : clusters) {
    for (size_t m : c) {
      EXPECT_FALSE(seen[m]);
      seen[m] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
  EXPECT_EQ(clusters.size(), uf.NumSets());
}

TEST(UnionFindTest, ClustersMinSizeFilters) {
  UnionFind uf(5);
  uf.Union(0, 4);
  auto nontrivial = uf.Clusters(/*min_size=*/2);
  ASSERT_EQ(nontrivial.size(), 1u);
  EXPECT_EQ(nontrivial[0], (std::vector<size_t>{0, 4}));
}

TEST(UnionFindTest, ClustersOrderedBySmallestMember) {
  UnionFind uf(6);
  uf.Union(4, 5);
  uf.Union(0, 2);
  auto clusters = uf.Clusters(2);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].front(), 0u);
  EXPECT_EQ(clusters[1].front(), 4u);
}

TEST(UnionFindTest, ResizeAddsSingletons) {
  UnionFind uf(2);
  uf.Union(0, 1);
  uf.Resize(4);
  EXPECT_EQ(uf.size(), 4u);
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_FALSE(uf.Connected(1, 3));
  uf.Resize(2);  // shrink is a no-op
  EXPECT_EQ(uf.size(), 4u);
}

TEST(UnionFindTest, LargeChainCompresses) {
  constexpr size_t kN = 10000;
  UnionFind uf(kN);
  for (size_t i = 1; i < kN; ++i) uf.Union(i - 1, i);
  EXPECT_EQ(uf.NumSets(), 1u);
  EXPECT_EQ(uf.SetSize(0), kN);
  EXPECT_TRUE(uf.Connected(0, kN - 1));
}

TEST(UnionFindTest, EmptyUniverse) {
  UnionFind uf(0);
  EXPECT_EQ(uf.size(), 0u);
  EXPECT_EQ(uf.NumSets(), 0u);
  EXPECT_TRUE(uf.Clusters().empty());
}

}  // namespace
}  // namespace sxnm::util
