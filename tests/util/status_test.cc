#include "util/status.h"

#include <gtest/gtest.h>

namespace sxnm::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  Status s = Status::ParseError("bad token");
  EXPECT_EQ(s.ToString(), "PARSE_ERROR: bad token");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailThenPropagate() {
  SXNM_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  Status s = FailThenPropagate();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "inner");
}

// The Status/Result invariants are hard checks — active in every build
// mode, never compiled-out asserts. Death tests pin down both that the
// violating path aborts with a diagnostic and that the adjacent legal
// path stays silent.

using StatusCheckDeathTest = ::testing::Test;

TEST(StatusCheckDeathTest, OkCodeWithMessageAborts) {
  EXPECT_DEATH(Status(StatusCode::kOk, "not allowed"),
               "Status constructed with kOk");
  // Legal neighbors of the violating call do not abort.
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status err(StatusCode::kParseError, "fine");
  EXPECT_FALSE(err.ok());
}

TEST(StatusCheckDeathTest, ResultFromOkStatusAborts) {
  EXPECT_DEATH(Result<int>(Status::Ok()),
               "Result constructed from OK status");
  Result<int> legal = Status::Internal("fine");
  EXPECT_FALSE(legal.ok());
}

TEST(StatusCheckDeathTest, ValueOnErrorResultAborts) {
  Result<int> error = Status::NotFound("gone");
  EXPECT_DEATH(error.value(), "Result::value\\(\\) called on error Result");
  EXPECT_DEATH(*error, "called on error Result");
  Result<std::string> error_str = Status::NotFound("gone");
  EXPECT_DEATH(error_str->size(), "called on error Result");

  Result<int> fine = 1;
  EXPECT_EQ(fine.value(), 1);  // ok path never trips the check
}

TEST(StatusCheckDeathTest, AbortMessageNamesTheStatus) {
  Result<int> error = Status::ResourceExhausted("node cap");
  EXPECT_DEATH(error.value(), "RESOURCE_EXHAUSTED: node cap");
}

TEST(StatusTest, RobustnessCodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace sxnm::util
