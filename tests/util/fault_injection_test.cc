#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sxnm::util {
namespace {

TEST(FaultInjectionTest, DisarmedNeverFires) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.DisarmAll();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.ShouldFail("some.site"));
  }
}

TEST(FaultInjectionTest, FiresExactlyOnceOnNthHit) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.DisarmAll();
  injector.Arm("test.site", 3);
  EXPECT_FALSE(injector.ShouldFail("test.site"));  // hit 1
  EXPECT_FALSE(injector.ShouldFail("test.site"));  // hit 2
  EXPECT_TRUE(injector.ShouldFail("test.site"));   // hit 3 fires
  // One-shot: the site disarms itself after firing.
  EXPECT_FALSE(injector.ShouldFail("test.site"));
  EXPECT_FALSE(injector.ShouldFail("test.site"));
  injector.DisarmAll();
}

TEST(FaultInjectionTest, SitesAreIndependent) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.DisarmAll();
  injector.Arm("site.a", 1);
  EXPECT_FALSE(injector.ShouldFail("site.b"));  // unrelated site unaffected
  EXPECT_TRUE(injector.ShouldFail("site.a"));
  injector.DisarmAll();
}

TEST(FaultInjectionTest, HitCountTracksSinceArm) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.DisarmAll();
  injector.Arm("count.site", 100);
  injector.ShouldFail("count.site");
  injector.ShouldFail("count.site");
  injector.ShouldFail("count.site");
  EXPECT_EQ(injector.HitCount("count.site"), 3u);
  injector.Arm("count.site", 100);  // re-arming resets the counter
  EXPECT_EQ(injector.HitCount("count.site"), 0u);
  injector.DisarmAll();
}

TEST(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.DisarmAll();
  {
    ScopedFault fault("scoped.site", 5);  // never reaches hit 5
    EXPECT_FALSE(injector.ShouldFail("scoped.site"));
  }
  // Disarmed on scope exit even though it never fired.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(injector.ShouldFail("scoped.site"));
  }
}

TEST(FaultInjectionTest, ConcurrentHitsFireExactlyOnce) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.DisarmAll();
  injector.Arm("parallel.site", 50);
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (injector.ShouldFail("parallel.site")) fired.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(fired.load(), 1);
  injector.DisarmAll();
}

}  // namespace
}  // namespace sxnm::util
