#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sxnm::util {
namespace {

TEST(HardwareThreadsTest, AtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
  EXPECT_EQ(ResolveNumThreads(0), HardwareThreads());
  EXPECT_EQ(ResolveNumThreads(3), 3u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(kN, threads, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelForTest, InlineWhenSerialOrTiny) {
  std::vector<int> out(3, 0);
  ParallelFor(3, 1, [&](size_t i) { out[i] = static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  ParallelFor(0, 8, [&](size_t) { FAIL() << "no iterations expected"; });
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(2);
  ParallelFor(2, 16, [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ParallelForTest, ConcurrentSumMatchesSerial) {
  constexpr size_t kN = 4096;
  std::vector<long> values(kN);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<long> sum{0};
  ParallelFor(kN, 4, [&](size_t i) { sum.fetch_add(values[i]); });
  EXPECT_EQ(sum.load(), static_cast<long>(kN) * (kN - 1) / 2);
}

TEST(ParallelForCancellableTest, UncancelledRunsEverything) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<std::atomic<int>> hits(64);
    CancellationSource source;
    size_t executed = ParallelForCancellable(
        hits.size(), threads, source.token(),
        [&](size_t i) { hits[i].fetch_add(1); });
    EXPECT_EQ(executed, hits.size());
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForCancellableTest, PreCancelledExecutesNothing) {
  CancellationSource source;
  source.RequestCancel();
  std::atomic<int> ran{0};
  size_t executed = ParallelForCancellable(
      100, 4, source.token(), [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(executed, 0u);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForCancellableTest, ExecutedSetIsAlwaysAPrefix) {
  // Cancel mid-flight from inside an iteration; whatever k comes back,
  // exactly the iterations [0, k) must have run — never a gap.
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    std::vector<std::atomic<int>> hits(512);
    CancellationSource source;
    size_t executed = ParallelForCancellable(
        hits.size(), threads, source.token(), [&](size_t i) {
          hits[i].fetch_add(1);
          if (i == 40) source.RequestCancel();
        });
    ASSERT_GT(executed, 40u);
    ASSERT_LE(executed, hits.size());
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), i < executed ? 1 : 0) << "index " << i;
    }
  }
}

TEST(ParallelForCancellableTest, DefaultTokenDegeneratesToParallelFor) {
  std::vector<std::atomic<int>> hits(32);
  size_t executed = ParallelForCancellable(
      hits.size(), 4, CancellationToken(),
      [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(executed, hits.size());
}

}  // namespace
}  // namespace sxnm::util
