#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sxnm::util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"window", "recall"});
  table.AddRow({"2", "0.61"});
  table.AddRow({"10", "0.85"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("window | recall"), std::string::npos);
  EXPECT_NE(out.find("     2 |   0.61"), std::string::npos);
  EXPECT_NE(out.find("    10 |   0.85"), std::string::npos);
}

TEST(TablePrinterTest, HeaderSeparatorLine) {
  TablePrinter table({"a", "bb"});
  table.AddRow({"1", "2"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("--+---"), std::string::npos)
      << "separator row between header and body:\n"
      << out;
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter table({"x", "y", "z"});
  table.AddRow({"1"});
  std::string out = table.ToString();
  // Row still has all three columns.
  EXPECT_NE(out.find("1 |   |  "), std::string::npos) << out;
}

TEST(TablePrinterTest, ExtraCellsDropped) {
  TablePrinter table({"x"});
  table.AddRow({"1", "overflow"});
  EXPECT_EQ(table.ToString().find("overflow"), std::string::npos);
}

TEST(TablePrinterTest, DoubleRowFormatting) {
  TablePrinter table({"p", "r"});
  table.AddNumericRow({0.123456, 0.9}, /*digits=*/3);
  std::string out = table.ToString();
  EXPECT_NE(out.find("0.123"), std::string::npos);
  EXPECT_NE(out.find("0.900"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinterTest, PrintWritesToStream) {
  TablePrinter table({"h"});
  table.AddRow({"v"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("h"), std::string::npos);
  EXPECT_NE(os.str().find("v"), std::string::npos);
}

TEST(TablePrinterTest, NumRows) {
  TablePrinter table({"h"});
  EXPECT_EQ(table.NumRows(), 0u);
  table.AddRow({"v"});
  EXPECT_EQ(table.NumRows(), 1u);
}

}  // namespace
}  // namespace sxnm::util
