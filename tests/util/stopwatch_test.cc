#include "util/stopwatch.h"

#include <gtest/gtest.h>

namespace sxnm::util {
namespace {

void BusyWait(double seconds) {
  Stopwatch w;
  while (w.ElapsedSeconds() < seconds) {
  }
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch w;
  double t1 = w.ElapsedSeconds();
  double t2 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch w;
  BusyWait(0.002);
  double before = w.ElapsedSeconds();
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), before);
}

TEST(StopwatchTest, MillisMatchesSeconds) {
  Stopwatch w;
  BusyWait(0.001);
  double s = w.ElapsedSeconds();
  double ms = w.ElapsedMillis();
  EXPECT_NEAR(ms, s * 1000.0, 5.0);
}

TEST(PhaseTimerTest, AccumulatesByName) {
  PhaseTimer timer;
  timer.Add("kg", 1.0);
  timer.Add("sw", 2.0);
  timer.Add("kg", 0.5);
  EXPECT_DOUBLE_EQ(timer.Seconds("kg"), 1.5);
  EXPECT_DOUBLE_EQ(timer.Seconds("sw"), 2.0);
  EXPECT_DOUBLE_EQ(timer.Seconds("missing"), 0.0);
}

TEST(PhaseTimerTest, SecondsOfSumsPhases) {
  PhaseTimer timer;
  timer.Add("sw", 2.0);
  timer.Add("tc", 3.0);
  EXPECT_DOUBLE_EQ(timer.SecondsOf({"sw", "tc"}), 5.0);
  EXPECT_DOUBLE_EQ(timer.SecondsOf({"sw", "absent"}), 2.0);
}

TEST(PhaseTimerTest, PhasesPreserveInsertionOrder) {
  PhaseTimer timer;
  timer.Add("z_first", 1.0);
  timer.Add("a_second", 2.0);
  timer.Add("z_first", 1.0);
  auto phases = timer.Phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].first, "z_first");
  EXPECT_DOUBLE_EQ(phases[0].second, 2.0);
  EXPECT_EQ(phases[1].first, "a_second");
}

TEST(PhaseTimerTest, ClearEmpties) {
  PhaseTimer timer;
  timer.Add("x", 1.0);
  timer.Clear();
  EXPECT_TRUE(timer.Phases().empty());
  EXPECT_DOUBLE_EQ(timer.Seconds("x"), 0.0);
}

TEST(PhaseTimerTest, MergeAddsOtherTimer) {
  PhaseTimer a, b;
  a.Add("kg", 1.0);
  b.Add("kg", 2.0);
  b.Add("tc", 4.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Seconds("kg"), 3.0);
  EXPECT_DOUBLE_EQ(a.Seconds("tc"), 4.0);
}

TEST(ScopedPhaseTest, MeasuresOwnLifetime) {
  PhaseTimer timer;
  {
    ScopedPhase phase(&timer, "scope");
    BusyWait(0.002);
  }
  EXPECT_GE(timer.Seconds("scope"), 0.0015);
}

}  // namespace
}  // namespace sxnm::util
