#include "util/stopwatch.h"

#include <gtest/gtest.h>

namespace sxnm::util {
namespace {

void BusyWait(double seconds) {
  Stopwatch w;
  while (w.ElapsedSeconds() < seconds) {
  }
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch w;
  double t1 = w.ElapsedSeconds();
  double t2 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch w;
  BusyWait(0.002);
  double before = w.ElapsedSeconds();
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), before);
}

TEST(StopwatchTest, PauseFreezesElapsedTime) {
  Stopwatch w;
  BusyWait(0.002);
  w.Pause();
  EXPECT_FALSE(w.IsRunning());
  double frozen = w.ElapsedSeconds();
  EXPECT_GE(frozen, 0.002);
  BusyWait(0.002);
  EXPECT_DOUBLE_EQ(w.ElapsedSeconds(), frozen);
}

TEST(StopwatchTest, ResumeAccumulatesAcrossSegments) {
  Stopwatch w;
  BusyWait(0.002);
  w.Pause();
  double first = w.ElapsedSeconds();
  BusyWait(0.002);  // not counted
  EXPECT_DOUBLE_EQ(w.ElapsedSeconds(), first);
  // Bracket the resumed segment with a reference stopwatch (started
  // before Resume, read after): however long scheduling stretches the
  // segment, w may count at most that much — the paused gap stays out.
  Stopwatch reference;
  w.Resume();
  EXPECT_TRUE(w.IsRunning());
  BusyWait(0.002);
  double total = w.ElapsedSeconds();
  double upper = reference.ElapsedSeconds();
  EXPECT_GE(total, first + 0.002);
  EXPECT_LE(total, first + upper);
}

TEST(StopwatchTest, PauseAndResumeAreIdempotent) {
  Stopwatch w;
  w.Resume();  // already running: no-op
  BusyWait(0.001);
  w.Pause();
  double frozen = w.ElapsedSeconds();
  w.Pause();  // already paused: no-op
  EXPECT_DOUBLE_EQ(w.ElapsedSeconds(), frozen);
}

TEST(StopwatchTest, RestartClearsAccumulatedTime) {
  Stopwatch w;
  BusyWait(0.002);
  w.Pause();
  w.Restart();
  EXPECT_TRUE(w.IsRunning());
  EXPECT_LT(w.ElapsedSeconds(), 0.002);
}

TEST(StopwatchTest, MillisMatchesSeconds) {
  Stopwatch w;
  BusyWait(0.001);
  double s = w.ElapsedSeconds();
  double ms = w.ElapsedMillis();
  EXPECT_NEAR(ms, s * 1000.0, 5.0);
}

TEST(PhaseTimerTest, AccumulatesByName) {
  PhaseTimer timer;
  timer.Add("kg", 1.0);
  timer.Add("sw", 2.0);
  timer.Add("kg", 0.5);
  EXPECT_DOUBLE_EQ(timer.Seconds("kg"), 1.5);
  EXPECT_DOUBLE_EQ(timer.Seconds("sw"), 2.0);
  EXPECT_DOUBLE_EQ(timer.Seconds("missing"), 0.0);
}

TEST(PhaseTimerTest, SecondsOfSumsPhases) {
  PhaseTimer timer;
  timer.Add("sw", 2.0);
  timer.Add("tc", 3.0);
  EXPECT_DOUBLE_EQ(timer.SecondsOf({"sw", "tc"}), 5.0);
  EXPECT_DOUBLE_EQ(timer.SecondsOf({"sw", "absent"}), 2.0);
}

TEST(PhaseTimerTest, PhasesPreserveInsertionOrder) {
  PhaseTimer timer;
  timer.Add("z_first", 1.0);
  timer.Add("a_second", 2.0);
  timer.Add("z_first", 1.0);
  auto phases = timer.Phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].first, "z_first");
  EXPECT_DOUBLE_EQ(phases[0].second, 2.0);
  EXPECT_EQ(phases[1].first, "a_second");
}

TEST(PhaseTimerTest, ClearEmpties) {
  PhaseTimer timer;
  timer.Add("x", 1.0);
  timer.Clear();
  EXPECT_TRUE(timer.Phases().empty());
  EXPECT_DOUBLE_EQ(timer.Seconds("x"), 0.0);
}

TEST(PhaseTimerTest, MergeAddsOtherTimer) {
  PhaseTimer a, b;
  a.Add("kg", 1.0);
  b.Add("kg", 2.0);
  b.Add("tc", 4.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Seconds("kg"), 3.0);
  EXPECT_DOUBLE_EQ(a.Seconds("tc"), 4.0);
}

TEST(ScopedPhaseTest, MeasuresOwnLifetime) {
  PhaseTimer timer;
  {
    ScopedPhase phase(&timer, "scope");
    BusyWait(0.002);
  }
  EXPECT_GE(timer.Seconds("scope"), 0.0015);
}

}  // namespace
}  // namespace sxnm::util
