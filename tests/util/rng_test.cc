#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sxnm::util {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.NextInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 5000, 0.5, 0.03);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0, sum_sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kN;
  double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(23);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    size_t r = rng.NextZipf(100, 1.0);
    ASSERT_LT(r, 100u);
    if (r < 10) ++low;
    if (r >= 90) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(31);
  std::vector<std::string> v = {"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    const std::string& p = rng.Pick(v);
    EXPECT_TRUE(p == "a" || p == "b" || p == "c");
  }
}

TEST(RngTest, ForkIsDecorrelatedButDeterministic) {
  Rng a(123);
  Rng fork1 = a.Fork("stream");
  Rng b(123);
  Rng fork2 = b.Fork("stream");
  EXPECT_EQ(fork1.Next(), fork2.Next()) << "same parent+label => same stream";

  Rng c(123);
  Rng other = c.Fork("different");
  Rng d(123);
  EXPECT_NE(other.Next(), d.Fork("stream").Next());
}

}  // namespace
}  // namespace sxnm::util
