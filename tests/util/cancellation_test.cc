#include "util/cancellation.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sxnm::util {
namespace {

TEST(CancellationTest, DefaultTokenNeverCancels) {
  CancellationToken token;
  EXPECT_FALSE(token.can_be_cancelled());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTest, SourceCancelsAllTokens) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = a;  // copies observe the same flag
  EXPECT_TRUE(a.can_be_cancelled());
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(source.cancel_requested());

  source.RequestCancel();
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());

  source.RequestCancel();  // idempotent
  EXPECT_TRUE(a.cancelled());
}

TEST(CancellationTest, TokenOutlivesSource) {
  CancellationToken token;
  {
    CancellationSource source;
    token = source.token();
    source.RequestCancel();
  }
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTest, CancelVisibleAcrossThreads) {
  CancellationSource source;
  CancellationToken token = source.token();
  std::thread canceller([&source] { source.RequestCancel(); });
  canceller.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline deadline;
  EXPECT_FALSE(deadline.has_deadline());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.RemainingSeconds(), 1e9);
}

TEST(DeadlineTest, InfiniteAliasMatchesDefault) {
  EXPECT_FALSE(Deadline::Infinite().has_deadline());
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  Deadline deadline = Deadline::After(-1.0);
  EXPECT_TRUE(deadline.has_deadline());
  EXPECT_TRUE(deadline.expired());
  EXPECT_LE(deadline.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, ZeroSecondsAlreadyExpired) {
  EXPECT_TRUE(Deadline::After(0.0).expired());
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  Deadline deadline = Deadline::After(3600.0);
  EXPECT_TRUE(deadline.has_deadline());
  EXPECT_FALSE(deadline.expired());
  double remaining = deadline.RemainingSeconds();
  EXPECT_GT(remaining, 3500.0);
  EXPECT_LE(remaining, 3600.0);
}

}  // namespace
}  // namespace sxnm::util
