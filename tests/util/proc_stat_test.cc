// Process memory accounting (util/proc_stat): statm parsing and the
// live ReadProcMemory sampler backing the telemetry layer.

#include "util/proc_stat.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sxnm::util {
namespace {

TEST(ProcStatTest, ParseStatmReadsFirstTwoFieldsAsPages) {
  ProcMemory mem;
  ASSERT_TRUE(ParseStatm("12345 678 300 1 0 200 0\n", 4096, &mem));
  EXPECT_EQ(mem.vm_bytes, 12345u * 4096u);
  EXPECT_EQ(mem.rss_bytes, 678u * 4096u);
}

TEST(ProcStatTest, ParseStatmAcceptsTwoFieldsOnly) {
  // Trailing fields may be absent; only size and resident matter.
  ProcMemory mem;
  ASSERT_TRUE(ParseStatm("7 3", 1024, &mem));
  EXPECT_EQ(mem.vm_bytes, 7u * 1024u);
  EXPECT_EQ(mem.rss_bytes, 3u * 1024u);
}

TEST(ProcStatTest, ParseStatmToleratesLeadingSpacesAndNewline) {
  ProcMemory mem;
  ASSERT_TRUE(ParseStatm("  42 9\n", 4096, &mem));
  EXPECT_EQ(mem.vm_bytes, 42u * 4096u);
  EXPECT_EQ(mem.rss_bytes, 9u * 4096u);
}

TEST(ProcStatTest, ParseStatmRejectsMalformedInput) {
  ProcMemory mem;
  const std::vector<const char*> bad = {
      "",           // empty
      "   ",        // only whitespace
      "123",        // one field
      "abc def",    // not numeric
      "12 3x4 5",   // junk glued to the resident field
      "-1 5",       // signs are not statm syntax
  };
  for (const char* input : bad) {
    EXPECT_FALSE(ParseStatm(input, 4096, &mem)) << "'" << input << "'";
  }
}

TEST(ProcStatTest, ParseStatmZeroFieldsAreValid) {
  // A kernel can legitimately report zero pages (e.g. early init).
  ProcMemory mem;
  ASSERT_TRUE(ParseStatm("0 0 0", 4096, &mem));
  EXPECT_EQ(mem.vm_bytes, 0u);
  EXPECT_EQ(mem.rss_bytes, 0u);
}

TEST(ProcStatTest, ReadProcMemoryReportsLiveProcess) {
  ProcMemory mem = ReadProcMemory();
  // On any unix this test runs on, at least rusage is available.
  ASSERT_TRUE(mem.sampled);
  EXPECT_GT(mem.rss_bytes, 0u);
  EXPECT_GT(mem.peak_rss_bytes, 0u);
  // The high-water mark can never be below the current reading's own
  // source, but /proc RSS and rusage peak come from different clocks;
  // allow equality and only require both to be plausible (> 1 MiB for a
  // running gtest binary).
  EXPECT_GT(mem.rss_bytes, 1u << 20);
  EXPECT_GT(mem.peak_rss_bytes, 1u << 20);
#if defined(__linux__)
  EXPECT_GE(mem.vm_bytes, mem.rss_bytes);
#endif
}

TEST(ProcStatTest, ReadProcMemoryGrowsAfterAllocation) {
  ProcMemory before = ReadProcMemory();
  ASSERT_TRUE(before.sampled);
  // Touch 32 MiB so the pages are actually resident.
  std::vector<char> block(32u << 20);
  for (size_t i = 0; i < block.size(); i += 4096) block[i] = char(i);
  ProcMemory after = ReadProcMemory();
  ASSERT_TRUE(after.sampled);
  EXPECT_GE(after.peak_rss_bytes, before.peak_rss_bytes);
  // RSS should reflect the touched block (allow generous slack for
  // allocator behavior: at least half the block must show up).
  EXPECT_GE(after.rss_bytes + (16u << 20), before.rss_bytes + (32u << 20));
}

TEST(ProcStatTest, ParseStatusThreadsFindsTheThreadsLine) {
  int threads = 0;
  ASSERT_TRUE(ParseStatusThreads(
      "Name:\tsxnm\nVmRSS:\t    1234 kB\nThreads:\t7\nSigQ:\t0/127\n",
      &threads));
  EXPECT_EQ(threads, 7);
}

TEST(ProcStatTest, ParseStatusThreadsAllowsTrailingWhitespaceAndNoNewline) {
  int threads = 0;
  ASSERT_TRUE(ParseStatusThreads("Threads: 12 \r\n", &threads));
  EXPECT_EQ(threads, 12);
  // A status snapshot truncated before the final newline still parses.
  ASSERT_TRUE(ParseStatusThreads("Name:\tx\nThreads:\t3", &threads));
  EXPECT_EQ(threads, 3);
}

TEST(ProcStatTest, ParseStatusThreadsRequiresKeyAtLineStart) {
  int threads = 0;
  // "Threads:" appearing inside another line's value is not the key.
  EXPECT_FALSE(ParseStatusThreads("SigPnd:\tThreads: 9\n", &threads));
  EXPECT_FALSE(ParseStatusThreads("NonVolThreads:\t5\n", &threads));
}

TEST(ProcStatTest, ParseStatusThreadsRejectsMissingOrMalformed) {
  int threads = -1;
  EXPECT_FALSE(ParseStatusThreads("", &threads));
  EXPECT_FALSE(ParseStatusThreads("Name:\tsxnm\n", &threads));
  EXPECT_FALSE(ParseStatusThreads("Threads:\t\n", &threads));    // no digits
  EXPECT_FALSE(ParseStatusThreads("Threads:\t1x\n", &threads));  // junk
  // Absurd counts (beyond 2^30) are treated as corruption, not data.
  EXPECT_FALSE(ParseStatusThreads("Threads:\t2147483648\n", &threads));
}

TEST(ProcStatTest, ReadProcCpuReportsLiveProcess) {
  ProcCpu cpu = ReadProcCpu();
  // getrusage exists on any unix this test runs on.
  ASSERT_TRUE(cpu.sampled);
  EXPECT_GE(cpu.user_seconds, 0.0);
  EXPECT_GE(cpu.sys_seconds, 0.0);
#if defined(__linux__)
  // /proc/self/status is always present on Linux; a gtest binary has at
  // least its main thread.
  EXPECT_GE(cpu.threads, 1);
#endif
}

TEST(ProcStatTest, ReadProcCpuAdvancesAfterBurningCpu) {
  ProcCpu before = ReadProcCpu();
  ASSERT_TRUE(before.sampled);
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < (uint64_t{1} << 25); ++i) {
    sink = sink + i * 31;
  }
  ProcCpu after = ReadProcCpu();
  ASSERT_TRUE(after.sampled);
  // Cumulative CPU time is monotone; the burn loop should move it, but
  // clock granularity only guarantees non-decrease.
  EXPECT_GE(after.user_seconds + after.sys_seconds,
            before.user_seconds + before.sys_seconds);
}

}  // namespace
}  // namespace sxnm::util
