// sxnm_obs tracer: span lifecycle, disabled no-op behavior, and the
// Chrome trace_event JSON export (golden file).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>

namespace sxnm::obs {
namespace {

TEST(TraceTest, SpanRecordsOneEventWithDuration) {
  Tracer tracer;
  {
    Tracer::Span span = tracer.StartSpan("work");
  }
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
  EXPECT_LT(events[0].tid, kNumShards);
}

TEST(TraceTest, EndIsIdempotent) {
  Tracer tracer;
  Tracer::Span span = tracer.StartSpan("once");
  span.End();
  span.End();  // second End must not record again
  EXPECT_EQ(tracer.Events().size(), 1u);
}

TEST(TraceTest, NestedSpansRecordInnerBeforeOuter) {
  Tracer tracer;
  {
    Tracer::Span outer = tracer.StartSpan("outer");
    { Tracer::Span inner = tracer.StartSpan("inner"); }
    (void)outer;
  }
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer started first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_GE(events[0].dur_us, events[1].dur_us);
}

TEST(TraceTest, EndWithArgsAttachesArgsJson) {
  Tracer tracer;
  Tracer::Span span = tracer.StartSpan("pass");
  span.EndWithArgs(R"({"pairs": 12})");
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].args_json, R"({"pairs": 12})");
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  EXPECT_NE(os.str().find("\"args\": {\"pairs\": 12}"), std::string::npos);
}

TEST(TraceTest, MoveAssignmentEndsTheOverwrittenSpan) {
  Tracer tracer;
  Tracer::Span span = tracer.StartSpan("first");
  span = tracer.StartSpan("second");  // must end "first"
  EXPECT_EQ(tracer.Events().size(), 1u);
  span.End();
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
}

TEST(TraceTest, DisabledTracerHandsOutInertSpans) {
  Tracer tracer(/*enabled=*/false);
  EXPECT_FALSE(tracer.enabled());
  {
    Tracer::Span span = tracer.StartSpan("ignored");
    span.EndWithArgs("{}");
  }
  Tracer::Event event;
  event.name = "also ignored";
  tracer.Record(std::move(event));
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(TraceTest, EventsSortByTimestamp) {
  Tracer tracer;
  Tracer::Event late;
  late.name = "late";
  late.ts_us = 100.0;
  Tracer::Event early;
  early.name = "early";
  early.ts_us = 1.0;
  tracer.Record(std::move(late));
  tracer.Record(std::move(early));
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "early");
  EXPECT_EQ(events[1].name, "late");
}

TEST(TraceTest, ChromeTraceExportMatchesGolden) {
  Tracer tracer;
  Tracer::Event kg;
  kg.name = "key_generation";
  kg.tid = 0;
  kg.ts_us = 1.0;
  kg.dur_us = 2.5;
  Tracer::Event pass;
  pass.name = "movie/pass1";
  pass.args_json = R"({"pairs": 3})";
  pass.tid = 1;
  pass.ts_us = 2.0;
  pass.dur_us = 0.125;
  tracer.Record(std::move(kg));
  tracer.Record(std::move(pass));

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string golden =
      "{\"traceEvents\": [\n"
      "  {\"name\": \"key_generation\", \"cat\": \"sxnm\", \"ph\": \"X\", "
      "\"pid\": 1, \"tid\": 0, \"ts\": 1.000, \"dur\": 2.500},\n"
      "  {\"name\": \"movie/pass1\", \"cat\": \"sxnm\", \"ph\": \"X\", "
      "\"pid\": 1, \"tid\": 1, \"ts\": 2.000, \"dur\": 0.125, "
      "\"args\": {\"pairs\": 3}}\n"
      "], \"displayTimeUnit\": \"ms\"}\n";
  EXPECT_EQ(os.str(), golden);
}

TEST(TraceTest, WriteChromeTraceFileRoundTrips) {
  Tracer tracer;
  { Tracer::Span span = tracer.StartSpan("detect"); }
  std::string path = ::testing::TempDir() + "/sxnm_trace_test.json";
  auto status = tracer.WriteChromeTraceFile(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str().rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(content.str().find("\"detect\""), std::string::npos);
}

TEST(TraceTest, WriteChromeTraceFileFailsOnUnwritablePath) {
  Tracer tracer;
  auto status =
      tracer.WriteChromeTraceFile("/nonexistent-dir/trace.json");
  EXPECT_FALSE(status.ok());
}

TEST(TraceTest, ClearDropsBufferedEvents) {
  Tracer tracer;
  { Tracer::Span span = tracer.StartSpan("gone"); }
  tracer.Clear();
  EXPECT_TRUE(tracer.Events().empty());
}

}  // namespace
}  // namespace sxnm::obs
