// TelemetrySampler: lifecycle, ring bounds, rate derivation, progress /
// ETA math, NDJSON stream shape, and the final-sample-equals-registry
// contract. The detector-level determinism proof lives in
// tests/sxnm/telemetry_detector_test.cc.

#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sxnm::obs {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(TelemetryTest, RunPhaseNamesCoverTheEnum) {
  EXPECT_STREQ(RunPhaseName(0), "setup");
  EXPECT_STREQ(RunPhaseName(1), "key_generation");
  EXPECT_STREQ(RunPhaseName(2), "sliding_window");
  EXPECT_STREQ(RunPhaseName(3), "transitive_closure");
  EXPECT_STREQ(RunPhaseName(4), "done");
  EXPECT_STREQ(RunPhaseName(-1), "unknown");
  EXPECT_STREQ(RunPhaseName(99), "unknown");
}

TEST(TelemetryTest, StartStopInMemoryTakesFinalSample) {
  MetricsRegistry registry(true);
  registry.counter("sw.comparisons").Add(7);
  TelemetryOptions options;  // no path: ring only
  options.interval_ms = 5.0;
  TelemetrySampler sampler(&registry, options);
  EXPECT_FALSE(sampler.running());
  ASSERT_TRUE(sampler.Start().ok());
  EXPECT_TRUE(sampler.running());
  registry.counter("sw.comparisons").Add(13);
  ASSERT_TRUE(sampler.Stop().ok());
  EXPECT_FALSE(sampler.running());

  std::vector<TelemetrySample> samples = sampler.Samples();
  ASSERT_FALSE(samples.empty());
  const TelemetrySample& last = samples.back();
  EXPECT_TRUE(last.final_sample);
  // The final sample is taken after the worker joined: it must equal
  // the quiesced registry exactly.
  EXPECT_EQ(last.snapshot.CounterOr("sw.comparisons"), 20u);
  // Only the last sample is final, and seq is the sample index.
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].seq, i);
    EXPECT_EQ(samples[i].final_sample, i + 1 == samples.size());
  }
}

TEST(TelemetryTest, DoubleStartFailsAndStopIsIdempotent) {
  MetricsRegistry registry(true);
  TelemetrySampler sampler(&registry, TelemetryOptions{});
  ASSERT_TRUE(sampler.Start().ok());
  EXPECT_EQ(sampler.Start().code(), util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(sampler.Stop().ok());
  EXPECT_TRUE(sampler.Stop().ok());  // second Stop: no-op
  uint64_t total = sampler.TotalSamples();
  EXPECT_GE(total, 1u);
  ASSERT_TRUE(sampler.Stop().ok());
  EXPECT_EQ(sampler.TotalSamples(), total);  // no extra final sample
}

TEST(TelemetryTest, StopWithoutStartIsNoOp) {
  MetricsRegistry registry(true);
  TelemetrySampler sampler(&registry, TelemetryOptions{});
  EXPECT_TRUE(sampler.Stop().ok());
  EXPECT_EQ(sampler.TotalSamples(), 0u);
}

TEST(TelemetryTest, RingIsBoundedButTotalKeepsCounting) {
  MetricsRegistry registry(true);
  TelemetryOptions options;
  options.interval_ms = 1.0;
  options.ring_capacity = 4;
  TelemetrySampler sampler(&registry, options);
  ASSERT_TRUE(sampler.Start().ok());
  // Let well over ring_capacity ticks elapse.
  while (sampler.TotalSamples() < 12) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(sampler.Stop().ok());

  std::vector<TelemetrySample> samples = sampler.Samples();
  EXPECT_LE(samples.size(), 4u);
  EXPECT_GE(sampler.TotalSamples(), 12u);
  // Eviction keeps the newest: the retained window is contiguous and
  // ends at the final sample.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].seq, samples[i - 1].seq + 1);
  }
  EXPECT_TRUE(samples.back().final_sample);
  EXPECT_EQ(samples.back().seq, sampler.TotalSamples() - 1);
}

TEST(TelemetryTest, RatesCoverOnlyAdvancingCounters) {
  MetricsRegistry registry(true);
  registry.counter("moving").Add(5);
  registry.counter("frozen").Add(100);
  TelemetryOptions options;
  options.interval_ms = 1.0;
  TelemetrySampler sampler(&registry, options);
  ASSERT_TRUE(sampler.Start().ok());
  while (sampler.TotalSamples() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  registry.counter("moving").Add(50);
  ASSERT_TRUE(sampler.Stop().ok());

  // Which periodic tick observes the Add(50) is timing-dependent, but
  // SOME sample after the first must: either a periodic one or the
  // final sample Stop() takes. "frozen" never advances after the
  // first sample, so it must never appear in a later rate set.
  std::vector<TelemetrySample> samples = sampler.Samples();
  ASSERT_GE(samples.size(), 2u);
  bool saw_moving_after_first = false;
  for (const TelemetrySample& sample : samples) {
    for (const auto& [name, rate] : sample.rates) {
      EXPECT_GT(rate, 0.0) << name << " seq " << sample.seq;
      if (sample.seq == 0) continue;  // first tick measures the preload
      EXPECT_NE(name, "frozen") << "seq " << sample.seq;
      saw_moving_after_first |= name == "moving";
    }
  }
  EXPECT_TRUE(saw_moving_after_first);
}

TEST(TelemetryTest, NdjsonStreamHasHeaderSamplesAndFinalLine) {
  MetricsRegistry registry(true);
  registry.counter("sw.comparisons").Add(42);
  registry.gauge("progress.phase").Set(4.0);
  std::string path = ::testing::TempDir() + "/telemetry_stream.tlm.ndjsonl";
  TelemetryOptions options;
  options.path = path;
  options.interval_ms = 2.0;
  TelemetrySampler sampler(&registry, options);
  ASSERT_TRUE(sampler.Start().ok());
  while (sampler.TotalSamples() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(sampler.Stop().ok());

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"type\": \"header\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"version\": 1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"deterministic\": false"), std::string::npos);
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"type\": \"sample\""), std::string::npos) << i;
    // Every line is exactly one JSON object (no embedded newlines by
    // construction; balanced quotes are sampled via the known fields).
    EXPECT_EQ(lines[i].front(), '{');
    EXPECT_EQ(lines[i].back(), '}');
  }
  EXPECT_NE(lines.back().find("\"final\": true"), std::string::npos);
  EXPECT_NE(lines.back().find("\"sw.comparisons\": 42"), std::string::npos);
  EXPECT_NE(lines.back().find("\"phase_name\": \"done\""), std::string::npos);
}

TEST(TelemetryTest, StartFailsOnUnwritablePath) {
  MetricsRegistry registry(true);
  TelemetryOptions options;
  options.path = "/nonexistent-dir-sxnm/telemetry.ndjsonl";
  TelemetrySampler sampler(&registry, options);
  EXPECT_FALSE(sampler.Start().ok());
  EXPECT_FALSE(sampler.running());
}

TEST(TelemetryTest, DestructorJoinsWithoutFinalSample) {
  MetricsRegistry registry(true);
  {
    TelemetryOptions options;
    options.interval_ms = 1.0;
    TelemetrySampler sampler(&registry, options);
    ASSERT_TRUE(sampler.Start().ok());
    // Leaving scope without Stop() must not hang or crash (early-return
    // paths in the detector rely on this).
  }
  SUCCEED();
}

// --- DeriveProgress -------------------------------------------------------

MetricsSnapshot SnapshotOf(MetricsRegistry& registry) {
  return registry.Snapshot();
}

TEST(TelemetryTest, DeriveProgressUsesPlannedPairs) {
  MetricsRegistry registry(true);
  registry.gauge("progress.phase")
      .Set(double(int(RunPhase::kSlidingWindow)));
  registry.gauge("sw.pairs_planned_total").Set(1000.0);
  registry.counter("sw.pairs_done").Add(250);
  TelemetrySample sample;
  DeriveProgress(SnapshotOf(registry), /*t_ms=*/2000.0, &sample);
  EXPECT_EQ(sample.phase, int(RunPhase::kSlidingWindow));
  EXPECT_DOUBLE_EQ(sample.fraction, 0.25);
  // 250 pairs in 2s -> 125/s; 750 remaining -> 6s.
  EXPECT_NEAR(sample.eta_s, 6.0, 1e-9);
}

TEST(TelemetryTest, DeriveProgressFallsBackToKgRows) {
  MetricsRegistry registry(true);
  registry.gauge("progress.phase")
      .Set(double(int(RunPhase::kKeyGeneration)));
  registry.gauge("kg.rows_total").Set(400.0);
  registry.counter("kg.rows_done").Add(100);
  TelemetrySample sample;
  DeriveProgress(SnapshotOf(registry), /*t_ms=*/1000.0, &sample);
  EXPECT_DOUBLE_EQ(sample.fraction, 0.25);
  EXPECT_GT(sample.eta_s, 0.0);
}

TEST(TelemetryTest, DeriveProgressUnknownWithoutTotals) {
  MetricsRegistry registry(true);
  TelemetrySample sample;
  DeriveProgress(SnapshotOf(registry), /*t_ms=*/100.0, &sample);
  EXPECT_EQ(sample.fraction, -1.0);
  EXPECT_EQ(sample.eta_s, -1.0);
}

TEST(TelemetryTest, DeriveProgressDonePhaseIsComplete) {
  MetricsRegistry registry(true);
  registry.gauge("progress.phase").Set(double(int(RunPhase::kDone)));
  registry.gauge("sw.pairs_planned_total").Set(1000.0);
  registry.counter("sw.pairs_done").Add(400);  // budget-shed run
  TelemetrySample sample;
  DeriveProgress(SnapshotOf(registry), /*t_ms=*/500.0, &sample);
  EXPECT_DOUBLE_EQ(sample.fraction, 1.0);
  EXPECT_DOUBLE_EQ(sample.eta_s, 0.0);
}

TEST(TelemetryTest, SampleWriteJsonIsOneWellFormedLine) {
  MetricsRegistry registry(true);
  registry.counter("sw.comparisons").Add(3);
  registry.gauge("cache.verdict_occupancy").Set(0.5);
  TelemetrySample sample;
  sample.seq = 2;
  sample.t_ms = 123.0;
  sample.final_sample = false;
  sample.snapshot = registry.Snapshot();
  sample.phase = int(RunPhase::kSlidingWindow);
  std::ostringstream os;
  sample.WriteJson(os);
  std::string line = os.str();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"seq\": 2"), std::string::npos);
  EXPECT_NE(line.find("\"final\": false"), std::string::npos);
  EXPECT_NE(line.find("\"phase_name\": \"sliding_window\""),
            std::string::npos);
  EXPECT_NE(line.find("\"sw.comparisons\": 3"), std::string::npos);
  EXPECT_NE(line.find("\"cache.verdict_occupancy\": 0.5"), std::string::npos);
}

TEST(TelemetryTest, SampleWriteJsonCarriesCpuFields) {
  TelemetrySample sample;
  sample.seq = 0;
  sample.t_ms = 50.0;
  sample.cpu_user_pct = 140.5;  // >100%: two busy threads on one tick
  sample.cpu_sys_pct = 3.25;
  sample.threads = 4;
  sample.cpu_sampled = true;
  std::ostringstream os;
  sample.WriteJson(os);
  std::string line = os.str();
  EXPECT_NE(line.find("\"cpu_user_pct\": 140.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"cpu_sys_pct\": 3.25"), std::string::npos) << line;
  EXPECT_NE(line.find("\"threads\": 4"), std::string::npos) << line;
  EXPECT_NE(line.find("\"cpu_sampled\": true"), std::string::npos) << line;
}

TEST(TelemetryTest, LiveSamplesCarryCpuAccounting) {
  MetricsRegistry registry(true);
  TelemetryOptions options;  // ring only
  options.interval_ms = 5.0;
  TelemetrySampler sampler(&registry, options);
  ASSERT_TRUE(sampler.Start().ok());
  // Burn a little CPU so the utilization deltas have something to see.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < (uint64_t{1} << 23); ++i) sink = sink + i;
  ASSERT_TRUE(sampler.Stop().ok());

  std::vector<TelemetrySample> samples = sampler.Samples();
  ASSERT_FALSE(samples.empty());
  for (const TelemetrySample& sample : samples) {
    // Utilization can be zero on a coarse clock tick but never negative,
    // and on Linux every sample sees at least this test's own threads.
    EXPECT_GE(sample.cpu_user_pct, 0.0);
    EXPECT_GE(sample.cpu_sys_pct, 0.0);
#if defined(__linux__)
    EXPECT_TRUE(sample.cpu_sampled);
    EXPECT_GE(sample.threads, 1);
#endif
  }
}

}  // namespace
}  // namespace sxnm::obs
