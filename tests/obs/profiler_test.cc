// sxnm_obs sampling profiler: span-path stack protocol, both sampling
// backends, folded/JSON export, the profiling-on ≡ profiling-off
// detection identity, and crash consistency of the .folded artifact
// (fork + SIGKILL mid-run must leave it absent or well-formed).

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "obs/trace.h"
#include "sxnm/detector.h"

#ifdef __linux__
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace sxnm::obs {
namespace {

// --- span-path stack (trace.h spanpath) -----------------------------------

TEST(SpanPathTest, InternReturnsStableIds) {
  uint32_t a = spanpath::InternName("spanpath-test-a");
  uint32_t b = spanpath::InternName("spanpath-test-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(spanpath::InternName("spanpath-test-a"), a);
  EXPECT_EQ(spanpath::NameOf(a), "spanpath-test-a");
  EXPECT_EQ(spanpath::NameOf(b), "spanpath-test-b");
}

TEST(SpanPathTest, PushPopSnapshotRoundTrips) {
  spanpath::ThreadStack& stack = *spanpath::ThisThreadStack();
  uint32_t base = stack.depth.load(std::memory_order_acquire);
  uint32_t outer = spanpath::InternName("outer");
  uint32_t inner = spanpath::InternName("inner");
  ASSERT_TRUE(stack.Push(outer));
  ASSERT_TRUE(stack.Push(inner));
  uint32_t frames[spanpath::kMaxDepth];
  uint32_t depth = stack.Snapshot(frames);
  ASSERT_EQ(depth, base + 2);
  EXPECT_EQ(frames[base], outer);
  EXPECT_EQ(frames[base + 1], inner);
  stack.Pop();
  stack.Pop();
  EXPECT_EQ(stack.depth.load(std::memory_order_acquire), base);
}

TEST(SpanPathTest, PushBeyondMaxDepthCountsTruncation) {
  spanpath::ThreadStack& stack = *spanpath::ThisThreadStack();
  uint32_t base = stack.depth.load(std::memory_order_acquire);
  uint64_t truncated_before =
      stack.truncated.load(std::memory_order_relaxed);
  uint32_t id = spanpath::InternName("deep");
  uint32_t pushed = 0;
  for (uint32_t i = base; i < spanpath::kMaxDepth; ++i) {
    ASSERT_TRUE(stack.Push(id));
    ++pushed;
  }
  EXPECT_FALSE(stack.Push(id));  // over capacity: dropped, counted
  EXPECT_EQ(stack.truncated.load(std::memory_order_relaxed),
            truncated_before + 1);
  for (uint32_t i = 0; i < pushed; ++i) stack.Pop();
  EXPECT_EQ(stack.depth.load(std::memory_order_acquire), base);
}

TEST(SpanPathTest, TracerWithTrackPathsPushesSpanFrames) {
  Tracer tracer(/*enabled=*/false, /*track_paths=*/true);
  spanpath::ThreadStack& stack = *spanpath::ThisThreadStack();
  uint32_t base = stack.depth.load(std::memory_order_acquire);
  {
    Tracer::Span outer = tracer.StartSpan("path-outer");
    EXPECT_EQ(stack.depth.load(std::memory_order_acquire), base + 1);
    {
      Tracer::Span inner = tracer.StartSpan("path-inner");
      uint32_t frames[spanpath::kMaxDepth];
      uint32_t depth = stack.Snapshot(frames);
      ASSERT_EQ(depth, base + 2);
      EXPECT_EQ(spanpath::NameOf(frames[base]), "path-outer");
      EXPECT_EQ(spanpath::NameOf(frames[base + 1]), "path-inner");
    }
    EXPECT_EQ(stack.depth.load(std::memory_order_acquire), base + 1);
  }
  EXPECT_EQ(stack.depth.load(std::memory_order_acquire), base);
}

TEST(SpanPathTest, FullyDisabledTracerPushesNothing) {
  Tracer tracer(/*enabled=*/false, /*track_paths=*/false);
  spanpath::ThreadStack& stack = *spanpath::ThisThreadStack();
  uint32_t base = stack.depth.load(std::memory_order_acquire);
  Tracer::Span span = tracer.StartSpan("invisible");
  EXPECT_EQ(stack.depth.load(std::memory_order_acquire), base);
}

// --- profiler lifecycle ---------------------------------------------------

TEST(ProfilerTest, StopWithoutStartReturnsDisabledProfile) {
  Profiler profiler;
  CpuProfile profile = profiler.Stop();
  EXPECT_FALSE(profile.enabled);
  EXPECT_EQ(profile.total_samples, 0u);
}

TEST(ProfilerTest, DoubleStartFailsAndStopIsIdempotent) {
  Profiler profiler;
  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_FALSE(profiler.Start().ok());
  CpuProfile first = profiler.Stop();
  EXPECT_TRUE(first.enabled);
  CpuProfile second = profiler.Stop();
  EXPECT_FALSE(second.enabled);
}

TEST(ProfilerTest, SecondConcurrentProfilerIsRejected) {
  Profiler a;
  Profiler b;
  ASSERT_TRUE(a.Start().ok());
  util::Status status = b.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  (void)a.Stop();
  // With the hooks released, a new profiler may start again.
  ASSERT_TRUE(b.Start().ok());
  (void)b.Stop();
}

// Burns CPU inside `span_name` until the profiler collected work or the
// deadline passes. Returns the profile.
CpuProfile BurnAndProfile(ProfilerOptions options,
                          const std::string& span_name) {
  Tracer tracer(/*enabled=*/false, /*track_paths=*/true);
  Profiler profiler(options);
  EXPECT_TRUE(profiler.Start().ok());
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(5);
  volatile uint64_t sink = 0;
  {
    Tracer::Span span = tracer.StartSpan(span_name);
    // ~1.5s of CPU is > 100 expected ticks at the rates used below.
    while (std::chrono::steady_clock::now() < deadline) {
      for (int i = 0; i < 2000000; ++i) sink = sink + uint64_t(i) * 31;
      auto elapsed = std::chrono::steady_clock::now();
      if (elapsed + std::chrono::milliseconds(3500) > deadline) break;
    }
  }
  return profiler.Stop();
}

TEST(ProfilerTest, FallbackBackendAttributesCpuToSpans) {
  ProfilerOptions options;
  options.hz = 251.0;
  options.force_fallback = true;
  CpuProfile profile = BurnAndProfile(options, "burn_fallback");
  EXPECT_TRUE(profile.enabled);
  EXPECT_EQ(profile.backend, "cputime-poll");
  ASSERT_GT(profile.total_samples, 0u);
  uint64_t burn_samples = 0;
  for (const CpuProfile::Entry& entry : profile.entries) {
    if (entry.path.find("burn_fallback") != std::string::npos) {
      burn_samples += entry.self_samples;
    }
  }
  // The burn loop dominates this thread's CPU; most samples must land
  // in its span (the rest are test scaffolding / other live threads).
  EXPECT_GT(burn_samples, profile.total_samples / 4);
}

#ifdef __linux__
TEST(ProfilerTest, SigprofBackendAttributesCpuToSpans) {
  ProfilerOptions options;
  options.hz = 251.0;
  CpuProfile profile = BurnAndProfile(options, "burn_sigprof");
  EXPECT_TRUE(profile.enabled);
  EXPECT_EQ(profile.backend, "sigprof");
  ASSERT_GT(profile.total_samples, 0u);
  uint64_t burn_samples = 0;
  for (const CpuProfile::Entry& entry : profile.entries) {
    if (entry.path.find("burn_sigprof") != std::string::npos) {
      burn_samples += entry.self_samples;
    }
  }
  EXPECT_GT(burn_samples, profile.total_samples / 4);
}
#endif

TEST(ProfilerTest, ThreadsRegisteredMidRunAreSampled) {
  ProfilerOptions options;
  options.hz = 499.0;
  options.force_fallback = true;
  Tracer tracer(/*enabled=*/false, /*track_paths=*/true);
  Profiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    volatile uint64_t sink = 0;
    Tracer::Span span = tracer.StartSpan("late_worker");
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 100000; ++i) sink = sink + uint64_t(i);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  worker.join();
  CpuProfile profile = profiler.Stop();
  bool saw_worker = false;
  for (const CpuProfile::Entry& entry : profile.entries) {
    saw_worker |= entry.path.find("late_worker") != std::string::npos;
  }
  EXPECT_TRUE(saw_worker);
}

// --- export ---------------------------------------------------------------

CpuProfile SampleProfile() {
  CpuProfile profile;
  profile.enabled = true;
  profile.backend = "cputime-poll";
  profile.hz = 100.0;
  profile.total_samples = 10;
  profile.entries = {
      {"detect;sw_classify", 6, 7},
      {"detect", 3, 10},
      {"(unattributed)", 1, 1},
  };
  return profile;
}

TEST(CpuProfileTest, WriteFoldedEmitsOneSanitizedLinePerSelfPath) {
  std::ostringstream os;
  SampleProfile().WriteFolded(os);
  std::string folded = os.str();
  std::istringstream in(folded);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    // The count parses; the path carries no whitespace.
    EXPECT_GT(std::stoul(line.substr(space + 1)), 0u) << line;
    EXPECT_EQ(line.substr(0, space).find(' '), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 3u);
  // Sanitized at profile build time; WriteFolded preserves the paths.
  EXPECT_NE(folded.find("detect;sw_classify 6"), std::string::npos);
  EXPECT_NE(folded.find("(unattributed) 1"), std::string::npos);
}

TEST(CpuProfileTest, BuildSanitizesFrameNames) {
  // End-to-end: a span name with folded-format metacharacters must come
  // back sanitized from the profiler aggregation.
  ProfilerOptions options;
  options.hz = 499.0;
  options.force_fallback = true;
  CpuProfile profile = BurnAndProfile(options, "bad name;with\tmeta");
  for (const CpuProfile::Entry& entry : profile.entries) {
    auto space = entry.path.find_first_of(" \t\n");
    if (entry.path == "(unattributed)") continue;
    EXPECT_EQ(space, std::string::npos) << entry.path;
  }
}

TEST(CpuProfileTest, TopSelfSkipsZeroSelfEntries) {
  CpuProfile profile = SampleProfile();
  ASSERT_NE(profile.TopSelf(), nullptr);
  EXPECT_EQ(profile.TopSelf()->path, "detect;sw_classify");
  profile.entries.clear();
  EXPECT_EQ(profile.TopSelf(), nullptr);
}

TEST(CpuProfileTest, WriteJsonEmitsReportBlock) {
  std::ostringstream os;
  SampleProfile().WriteJson(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"backend\": \"cputime-poll\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"self_samples\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"total_samples\": 10"), std::string::npos);
}

// --- detector integration -------------------------------------------------

xml::Document ProfiledCorpus(size_t movies) {
  datagen::MovieDataOptions gen;
  gen.num_movies = movies;
  gen.seed = 20060326;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  return datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(99))
      .value();
}

// Profiling must be a pure observer: identical duplicate pairs and
// identical engine counters with it on and off, at 1 and 4 threads.
TEST(ProfilerDetectorTest, ProfilingOnEqualsOffAcrossThreadCounts) {
  xml::Document doc = ProfiledCorpus(300);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    core::Config base = datagen::MovieConfig(10).value();
    base.set_num_threads(threads);
    base.mutable_observability().metrics = true;

    core::Config off_config = base;
    auto off = core::Detector(off_config).Run(doc);
    ASSERT_TRUE(off.ok());

    core::Config on_config = base;
    std::string folded = ::testing::TempDir() + "/identity_" +
                         std::to_string(threads) + ".folded";
    on_config.mutable_observability().profile_path = folded;
    on_config.mutable_observability().profile_hz = 499.0;
    auto on = core::Detector(on_config).Run(doc);
    ASSERT_TRUE(on.ok());

    EXPECT_FALSE(off->profile.enabled);
    EXPECT_TRUE(on->profile.enabled);
    const auto* off_movie = off->Find("movie");
    const auto* on_movie = on->Find("movie");
    ASSERT_NE(off_movie, nullptr);
    ASSERT_NE(on_movie, nullptr);
    EXPECT_EQ(off_movie->duplicate_pairs, on_movie->duplicate_pairs)
        << "threads=" << threads;
    for (const char* counter :
         {"sw.comparisons", "sw.unique_comparisons", "sw.pairs_windowed",
          "sw.hits", "tc.clusters"}) {
      EXPECT_EQ(off->metrics.CounterOr(counter),
                on->metrics.CounterOr(counter))
          << counter << " threads=" << threads;
    }
    // The committed artifact is well-formed folded text.
    std::ifstream in(folded);
    ASSERT_TRUE(in.good());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      auto space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      EXPECT_NO_THROW((void)std::stoul(line.substr(space + 1))) << line;
    }
    std::remove(folded.c_str());
  }
}

TEST(ProfilerDetectorTest, ReportCarriesProfileBlockWhenProfiled) {
  xml::Document doc = ProfiledCorpus(200);
  core::Config config = datagen::MovieConfig(10).value();
  config.mutable_observability().metrics = true;
  std::string folded = ::testing::TempDir() + "/report_block.folded";
  config.mutable_observability().profile_path = folded;
  auto result = core::Detector(config).Run(doc);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->report.profile.enabled);
  std::string json = result->report.ToJson();
  EXPECT_NE(json.find("\"profile\": "), std::string::npos);
  EXPECT_NE(json.find("\"backend\": "), std::string::npos);
  std::remove(folded.c_str());
}

TEST(ProfilerDetectorTest, UnprofiledReportOmitsProfileBlock) {
  xml::Document doc = ProfiledCorpus(100);
  core::Config config = datagen::MovieConfig(10).value();
  config.mutable_observability().metrics = true;
  auto result = core::Detector(config).Run(doc);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->report.profile.enabled);
  EXPECT_EQ(result->report.ToJson().find("\"profile\": "),
            std::string::npos);
}

// --- crash consistency ----------------------------------------------------

#ifdef __linux__
// SIGKILL mid-profiled-run: the .folded artifact is committed atomically
// at run end (tmp + fsync + rename), so after the kill it must be
// either absent or complete well-formed folded text — never torn.
TEST(ProfilerCrashTest, SigkillMidRunLeavesFoldedAbsentOrWellFormed) {
  std::string folded =
      ::testing::TempDir() + "/crash_profile_" +
      std::to_string(static_cast<long>(getpid())) + ".folded";
  std::remove(folded.c_str());

  pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Child: a profiled run large enough to outlive the parent's kill
    // delay. _exit on every path — gtest must not double-report.
    xml::Document doc = ProfiledCorpus(4000);
    core::Config config = datagen::MovieConfig(10).value();
    config.mutable_observability().metrics = true;
    config.mutable_observability().profile_path = folded;
    auto result = core::Detector(config).Run(doc);
    _exit(result.ok() ? 0 : 1);
  }

  // Let the child reach the profiled run, then kill it hard. Whether it
  // dies mid-run or after committing is timing-dependent — both ends of
  // the race are valid; the artifact invariant must hold in either.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);

  std::ifstream in(folded);
  if (in.good()) {
    // A committed file may be empty (a fast run can finish between
    // sampler ticks); the invariant is that no line is ever torn.
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      auto space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos)
          << "torn folded line: " << line;
      for (char c : line.substr(space + 1)) {
        ASSERT_TRUE(c >= '0' && c <= '9')
            << "torn folded count: " << line;
      }
    }
  }
  std::remove(folded.c_str());
}
#endif

}  // namespace
}  // namespace sxnm::obs
