// sxnm_obs metrics: sharded counter/histogram correctness (including
// under the thread pool — test names contain "Parallel" so the tsan
// preset's filter picks them up), quantile math, and snapshot export.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/parallel.h"

namespace sxnm::obs {
namespace {

TEST(MetricsCounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.counter");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(MetricsCounterTest, RegistryReturnsSameHandleForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("dup");
  Counter& b = registry.counter("dup");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);
}

TEST(MetricsCounterTest, ParallelAddsAreLossless) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("parallel.adds");
  constexpr size_t kTasks = 2000;
  util::ParallelFor(kTasks, /*num_threads=*/8, [&](size_t) {
    counter.Add(1);
    counter.Add(2);
  });
  EXPECT_EQ(counter.Value(), kTasks * 3);
}

TEST(MetricsCounterTest, ParallelRegistryLookupsAreSafe) {
  // Workers resolve metric names concurrently (the detector's per-pass
  // flush does exactly this); creation must be race-free and every
  // increment must land.
  MetricsRegistry registry;
  constexpr size_t kTasks = 512;
  util::ParallelFor(kTasks, /*num_threads=*/8, [&](size_t i) {
    registry.counter(i % 2 == 0 ? "shared.even" : "shared.odd").Add();
    registry.histogram("shared.hist", DefaultSizeBounds())
        .Observe(double(i % 8));
  });
  EXPECT_EQ(registry.counter("shared.even").Value() +
                registry.counter("shared.odd").Value(),
            kTasks);
  EXPECT_EQ(registry.histogram("shared.hist", DefaultSizeBounds())
                .TotalCount(),
            kTasks);
}

TEST(MetricsHistogramTest, ParallelObservationsAreLossless) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("parallel.obs", std::vector<double>{2, 4, 8});
  constexpr size_t kTasks = 4000;
  util::ParallelFor(kTasks, /*num_threads=*/8,
                    [&](size_t i) { histogram.Observe(double(i % 10)); });
  EXPECT_EQ(histogram.TotalCount(), kTasks);
  double expected_sum = 0;
  for (size_t i = 0; i < kTasks; ++i) expected_sum += double(i % 10);
  EXPECT_DOUBLE_EQ(histogram.Sum(), expected_sum);
}

TEST(MetricsHistogramTest, BucketAssignmentUsesLeSemantics) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("le", std::vector<double>{1, 2, 4});
  histogram.Observe(1.0);  // == bound -> bucket 0
  histogram.Observe(1.5);  // bucket 1
  histogram.Observe(4.0);  // == last bound -> bucket 2
  histogram.Observe(5.0);  // overflow
  std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(MetricsHistogramTest, QuantileInterpolatesWithinBucket) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("q", std::vector<double>{10});
  for (int i = 0; i < 5; ++i) histogram.Observe(5.0);
  // All five observations sit in the single [0, 10] bucket; the median
  // rank (2 of 0..4) interpolates to the bucket midpoint.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 10.0);
}

TEST(MetricsHistogramTest, QuantileIsMonotonicAcrossBuckets) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("mono", std::vector<double>{25, 50, 75, 100});
  for (int v = 1; v <= 100; ++v) histogram.Observe(double(v));
  double last = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double value = histogram.Quantile(q);
    EXPECT_GE(value, last) << "q=" << q;
    last = value;
  }
  // The p50 of 1..100 must land in the 25..50 bucket's value range.
  EXPECT_GE(histogram.Quantile(0.5), 25.0);
  EXPECT_LE(histogram.Quantile(0.5), 50.0);
}

TEST(MetricsHistogramTest, QuantileOverflowCollapsesToLastBound) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("ovf", std::vector<double>{10});
  histogram.Observe(1000.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 10.0);
}

TEST(MetricsHistogramTest, BucketQuantileOfEmptyDataIsZero) {
  EXPECT_DOUBLE_EQ(
      BucketQuantile({1.0, 2.0}, std::vector<uint64_t>{0, 0, 0}, 0.5), 0.0);
}

TEST(MetricsHistogramTest, QuantileOfEmptyHistogramIsZero) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("empty", std::vector<double>{1, 10});
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram.Quantile(q), 0.0) << "q=" << q;
  }
}

TEST(MetricsHistogramTest, QuantileOfSingleObservationStaysInItsBucket) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("single", std::vector<double>{10, 20, 40});
  histogram.Observe(15.0);
  // One observation in (10, 20]: every quantile must stay inside that
  // bucket's value range, and must be monotone in q.
  double last = 0.0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    double value = histogram.Quantile(q);
    EXPECT_GE(value, 10.0) << "q=" << q;
    EXPECT_LE(value, 20.0) << "q=" << q;
    EXPECT_GE(value, last) << "q=" << q;
    last = value;
  }
}

TEST(MetricsHistogramTest, QuantileAllOverflowCollapsesEveryQuantile) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("allovf", std::vector<double>{1, 2});
  for (int i = 0; i < 7; ++i) histogram.Observe(100.0 + i);
  // The overflow bucket has no upper bound to interpolate toward, so
  // every rank collapses to the last finite bound.
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram.Quantile(q), 2.0) << "q=" << q;
  }
}

TEST(MetricsHistogramTest, QuantileInterpolatesAtBucketBoundaries) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("bndry", std::vector<double>{10, 20});
  // Two observations in [0, 10], two in (10, 20]: a target rank falling
  // in the gap between the buckets' occupied ranks must clamp to the
  // upper bucket's lower edge instead of extrapolating below it (the
  // unclamped formula returned 5.0 at q=0.5 here — below the q=0.25
  // answer, i.e. non-monotone).
  histogram.Observe(5.0);
  histogram.Observe(5.0);
  histogram.Observe(15.0);
  histogram.Observe(15.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.25), 7.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.75), 12.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 20.0);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsEveryWrite) {
  MetricsRegistry registry(/*enabled=*/false);
  EXPECT_FALSE(registry.enabled());
  Counter& counter = registry.counter("off.counter");
  Gauge& gauge = registry.gauge("off.gauge");
  Histogram& histogram = registry.histogram("off.hist", DefaultTimeBounds());
  counter.Add(100);
  gauge.Set(3.5);
  histogram.Observe(1.0);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  EXPECT_EQ(histogram.TotalCount(), 0u);
}

TEST(MetricsRegistryTest, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("g");
  gauge.Set(1.0);
  gauge.Set(7.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), 7.25);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  registry.counter("r.c").Add(5);
  registry.histogram("r.h", std::vector<double>{1}).Observe(0.5);
  registry.Reset();
  EXPECT_EQ(registry.counter("r.c").Value(), 0u);
  EXPECT_EQ(registry.histogram("r.h", std::vector<double>{1}).TotalCount(),
            0u);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.histograms.size(), 1u);
}

TEST(MetricsSnapshotTest, SamplesAreSortedByName) {
  MetricsRegistry registry;
  registry.counter("z.last").Add(1);
  registry.counter("a.first").Add(2);
  registry.gauge("m.gauge").Set(4.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[1].name, "z.last");
  EXPECT_EQ(snapshot.CounterOr("z.last"), 1u);
  EXPECT_EQ(snapshot.CounterOr("missing", 99), 99u);
  EXPECT_DOUBLE_EQ(snapshot.GaugeOr("m.gauge"), 4.0);
  EXPECT_EQ(snapshot.FindHistogram("none"), nullptr);
  EXPECT_FALSE(snapshot.empty());
}

TEST(MetricsSnapshotTest, HistogramSampleQuantileMatchesLive) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("s.h", std::vector<double>{10, 20});
  for (int i = 0; i < 10; ++i) histogram.Observe(5.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  const auto* sample = snapshot.FindHistogram("s.h");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->total_count, 10u);
  EXPECT_DOUBLE_EQ(sample->Quantile(0.5), histogram.Quantile(0.5));
}

TEST(MetricsSnapshotTest, WriteJsonEmitsAllMetricKinds) {
  MetricsRegistry registry;
  registry.counter("c").Add(3);
  registry.gauge("g").Set(1.5);
  registry.histogram("h", std::vector<double>{2}).Observe(1.0);
  std::ostringstream os;
  registry.Snapshot().WriteJson(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"c\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\": 1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\": {\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"+inf\""), std::string::npos) << json;
}

TEST(MetricsSnapshotTest, PrometheusTextCoversAllMetricKinds) {
  MetricsRegistry registry;
  registry.counter("sw.comparisons").Add(42);
  registry.gauge("run.threads").Set(8.0);
  registry.histogram("sw.similarity", std::vector<double>{0.5, 1.0})
      .Observe(0.25);
  std::ostringstream os;
  registry.Snapshot().ToPrometheusText(os);
  std::string text = os.str();
  // Dotted names are sanitized and prefixed, each with a TYPE line.
  EXPECT_NE(text.find("# TYPE sxnm_sw_comparisons counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_sw_comparisons 42"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE sxnm_run_threads gauge"), std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_run_threads 8"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE sxnm_sw_similarity histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_sw_similarity_sum 0.25"), std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_sw_similarity_count 1"), std::string::npos)
      << text;
}

TEST(MetricsSnapshotTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("h", std::vector<double>{1, 2});
  histogram.Observe(0.5);  // bucket le=1
  histogram.Observe(1.5);  // bucket le=2
  histogram.Observe(9.0);  // overflow
  std::ostringstream os;
  registry.Snapshot().ToPrometheusText(os);
  std::string text = os.str();
  // Prometheus buckets are cumulative, ending with le="+Inf" == _count.
  EXPECT_NE(text.find("sxnm_h_bucket{le=\"1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_h_bucket{le=\"2\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_h_bucket{le=\"+Inf\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_h_count 3"), std::string::npos) << text;
}

TEST(MetricsSnapshotTest, PrometheusCollidingNamesGetUniqueFamilies) {
  // Distinct dotted names can sanitize onto the same Prometheus family:
  // "sw.pairs_done" and "sw.pairs.done" both map to sxnm_sw_pairs_done.
  // Later arrivals must be suffixed so each family (and its # TYPE
  // header) appears exactly once.
  MetricsRegistry registry;
  registry.counter("sw.pairs_done").Add(10);
  registry.gauge("sw.pairs.done").Set(3.0);
  std::ostringstream os;
  registry.Snapshot().ToPrometheusText(os);
  std::string text = os.str();
  // The counter wins the base name (counters emit before gauges); the
  // colliding gauge gets a deterministic _2 suffix.
  EXPECT_NE(text.find("# TYPE sxnm_sw_pairs_done counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_sw_pairs_done 10"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE sxnm_sw_pairs_done_2 gauge"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_sw_pairs_done_2 3"), std::string::npos) << text;
  // Exactly one # TYPE per family: the base name's header appears once.
  size_t first = text.find("# TYPE sxnm_sw_pairs_done counter");
  EXPECT_EQ(text.find("# TYPE sxnm_sw_pairs_done counter", first + 1),
            std::string::npos)
      << text;
}

TEST(MetricsSnapshotTest, PrometheusThreeWayCollisionSuffixesInOrder) {
  MetricsRegistry registry;
  registry.counter("a.b").Add(1);
  registry.counter("a_b").Add(2);
  registry.gauge("a:b").Set(3.0);  // ':' is legal, no collision
  registry.gauge("a-b").Set(4.0);
  std::ostringstream os;
  registry.Snapshot().ToPrometheusText(os);
  std::string text = os.str();
  // Counters sort "a.b" < "a_b"; the gauge "a-b" arrives third. ":" is
  // a legal Prometheus character so "a:b" keeps its own family.
  EXPECT_NE(text.find("sxnm_a_b 1"), std::string::npos) << text;
  EXPECT_NE(text.find("sxnm_a_b_2 2"), std::string::npos) << text;
  EXPECT_NE(text.find("sxnm_a_b_3 4"), std::string::npos) << text;
  EXPECT_NE(text.find("sxnm_a:b 3"), std::string::npos) << text;
}

TEST(MetricsSnapshotTest, PrometheusHelpComesFromTheHelpRegistry) {
  MetricsRegistry registry;
  registry.counter("sw.comparisons").Add(5);  // seeded engine metric
  registry.counter("custom.metric").Add(1);   // no help registered
  std::ostringstream os;
  registry.Snapshot().ToPrometheusText(os);
  std::string text = os.str();
  EXPECT_NE(text.find("# HELP sxnm_sw_comparisons "), std::string::npos)
      << text;
  // HELP precedes TYPE for the same family (exposition-format order).
  EXPECT_LT(text.find("# HELP sxnm_sw_comparisons "),
            text.find("# TYPE sxnm_sw_comparisons counter"));
  // Unknown names emit no HELP line but still get their TYPE.
  EXPECT_EQ(text.find("# HELP sxnm_custom_metric"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE sxnm_custom_metric counter"),
            std::string::npos)
      << text;
}

TEST(MetricsSnapshotTest, SetPrometheusHelpRegistersAndEscapes) {
  SetPrometheusHelp("test.help_metric", "line one\nwith \\ backslash");
  EXPECT_EQ(PrometheusHelp("test.help_metric"),
            "line one\nwith \\ backslash");
  MetricsRegistry registry;
  registry.counter("test.help_metric").Add(1);
  std::ostringstream os;
  registry.Snapshot().ToPrometheusText(os);
  std::string text = os.str();
  // The exposition format escapes newline and backslash in HELP text.
  EXPECT_NE(
      text.find("# HELP sxnm_test_help_metric line one\\nwith \\\\ backslash"),
      std::string::npos)
      << text;
  EXPECT_EQ(PrometheusHelp("never.registered"), "");
}

TEST(MetricsSnapshotTest, PrometheusSpecialGaugeValuesUseExpositionSpellings) {
  MetricsRegistry registry;
  registry.gauge("special.nan").Set(std::numeric_limits<double>::quiet_NaN());
  registry.gauge("special.pinf").Set(std::numeric_limits<double>::infinity());
  registry.gauge("special.ninf").Set(-std::numeric_limits<double>::infinity());
  std::ostringstream os;
  registry.Snapshot().ToPrometheusText(os);
  std::string text = os.str();
  // The exposition format spells the specials NaN / +Inf / -Inf; the
  // plain printf forms ("nan", "inf") are not valid sample values.
  EXPECT_NE(text.find("sxnm_special_nan NaN"), std::string::npos) << text;
  EXPECT_NE(text.find("sxnm_special_pinf +Inf"), std::string::npos) << text;
  EXPECT_NE(text.find("sxnm_special_ninf -Inf"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf\n"), std::string::npos) << text;
}

TEST(MetricsSnapshotTest, PrometheusNonFiniteHistogramBoundsAndSum) {
  MetricsRegistry registry;
  registry
      .histogram("special.hist",
                 std::vector<double>{0.25,
                                     std::numeric_limits<double>::infinity()})
      .Observe(0.1);
  registry.histogram("special.hist", std::vector<double>{})
      .Observe(std::numeric_limits<double>::infinity());
  std::ostringstream os;
  registry.Snapshot().ToPrometheusText(os);
  std::string text = os.str();
  // Finite bounds render as plain numbers in the le label; the
  // explicit infinite bound uses the canonical "+Inf" spelling, and an
  // infinite observation makes the sum "+Inf" too.
  EXPECT_NE(text.find("sxnm_special_hist_bucket{le=\"0.25\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_special_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_special_hist_sum +Inf"), std::string::npos)
      << text;
  EXPECT_NE(text.find("sxnm_special_hist_count 2"), std::string::npos) << text;
}

TEST(MetricsShardTest, ThisThreadShardIsStableAndInRange) {
  size_t shard = ThisThreadShard();
  EXPECT_LT(shard, kNumShards);
  EXPECT_EQ(ThisThreadShard(), shard);
}

}  // namespace
}  // namespace sxnm::obs
