// Snapshot container format and durable IO: round-trips, the corruption
// matrix (every class of structural damage must surface as a clean
// kDataLoss), fault-injected write/read failures, and the atomic commit
// protocol's crash guarantees.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/crc32.h"
#include "persist/io.h"
#include "persist/snapshot.h"
#include "util/fault_injection.h"

namespace sxnm::persist {
namespace {

using util::ScopedFault;
using util::StatusCode;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// --- CRC-32C ---------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  // "123456789" is the classic check value for Castagnoli.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, SensitiveToEveryByte) {
  std::string data = "snapshot payload bytes";
  uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string flipped = data;
    flipped[i] ^= 0x01;
    EXPECT_NE(Crc32c(flipped), base) << "byte " << i;
  }
}

// --- Encoder / Decoder -----------------------------------------------------

TEST(EncoderDecoderTest, RoundTripsEveryType) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutBool(true);
  enc.PutBool(false);
  enc.PutU32(0xDEADBEEFu);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI64(-42);
  enc.PutDouble(3.25);
  enc.PutString("hello");
  enc.PutString("");  // empty strings are legal

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.GetU8().value(), 0xAB);
  EXPECT_TRUE(dec.GetBool().value());
  EXPECT_FALSE(dec.GetBool().value());
  EXPECT_EQ(dec.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetI64().value(), -42);
  EXPECT_EQ(dec.GetDouble().value(), 3.25);
  EXPECT_EQ(dec.GetString().value(), "hello");
  EXPECT_EQ(dec.GetString().value(), "");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(EncoderDecoderTest, TruncationFailsEveryGetterCleanly) {
  Decoder empty("");
  EXPECT_EQ(empty.GetU8().status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(empty.GetU32().status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(empty.GetU64().status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(empty.GetDouble().status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(empty.GetString().status().code(), StatusCode::kDataLoss);
}

TEST(EncoderDecoderTest, BoolRejectsNonCanonicalBytes) {
  Decoder dec(std::string_view("\x02", 1));
  EXPECT_EQ(dec.GetBool().status().code(), StatusCode::kDataLoss);
}

TEST(EncoderDecoderTest, StringLengthBeyondBufferIsDataLoss) {
  Encoder enc;
  enc.PutU64(1000);  // claims 1000 bytes, provides 3
  Encoder full;
  full.PutString("abc");
  std::string bytes = enc.bytes() + full.bytes().substr(8);
  Decoder dec(bytes);
  EXPECT_EQ(dec.GetString().status().code(), StatusCode::kDataLoss);
}

TEST(EncoderDecoderTest, GetCountRejectsOversizedClaims) {
  Encoder enc;
  enc.PutU64(1u << 20);
  Decoder dec(enc.bytes());
  auto count = dec.GetCount(100);
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kDataLoss);

  Decoder dec2(enc.bytes());
  EXPECT_EQ(dec2.GetCount(1u << 20).value(), 1u << 20);
}

// --- Snapshot container ----------------------------------------------------

SnapshotWriter MakeWriter() {
  SnapshotWriter writer;
  Encoder cursor;
  cursor.PutU64(3);
  writer.AddFrame(FrameType::kCursor, std::move(cursor));
  writer.AddFrame(FrameType::kGkTable, "first table");
  writer.AddFrame(FrameType::kGkTable, "second table");
  writer.AddFrame(FrameType::kMetrics, "");
  return writer;
}

TEST(SnapshotTest, RoundTripsFramesInOrder) {
  std::string bytes = MakeWriter().Serialize();
  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->version(), kSnapshotVersion);
  ASSERT_EQ(reader->frames().size(), 4u);

  const Frame* cursor = reader->Find(FrameType::kCursor);
  ASSERT_NE(cursor, nullptr);
  Decoder dec(cursor->payload);
  EXPECT_EQ(dec.GetU64().value(), 3u);

  auto tables = reader->FindAll(FrameType::kGkTable);
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0]->payload, "first table");
  EXPECT_EQ(tables[1]->payload, "second table");

  EXPECT_EQ(reader->Find(FrameType::kExplain), nullptr);
}

TEST(SnapshotTest, EmptySnapshotIsValid) {
  SnapshotWriter writer;
  auto reader = SnapshotReader::Parse(writer.Serialize());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->frames().empty());
}

TEST(SnapshotTest, EveryTruncationPointIsDataLossOrVersionRefusal) {
  // Chop the file at every byte boundary: nothing may parse except the
  // full serialization — a torn tail can never half-succeed.
  std::string bytes = MakeWriter().Serialize();
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto reader = SnapshotReader::Parse(std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(reader.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss)
        << "prefix of " << len << " bytes";
  }
  EXPECT_TRUE(SnapshotReader::Parse(bytes).ok());
}

TEST(SnapshotTest, EverySingleBitFlipIsRejected) {
  // Flip one bit in each byte of the file: magic, version, frame
  // headers, payloads, checksums, end frame — all damage must surface.
  std::string bytes = MakeWriter().Serialize();
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] ^= 0x10;
    auto reader = SnapshotReader::Parse(corrupt);
    ASSERT_FALSE(reader.ok()) << "flip at byte " << i << " parsed";
    StatusCode code = reader.status().code();
    // A flip inside the version word is a version refusal, everything
    // else is corruption.
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kFailedPrecondition)
        << "flip at byte " << i << ": " << reader.status().ToString();
  }
}

TEST(SnapshotTest, TrailingGarbageIsDataLoss) {
  std::string bytes = MakeWriter().Serialize() + "extra";
  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotTest, MissingEndFrameIsTornWrite) {
  // Serialize two writers and splice: a complete frame sequence without
  // the end frame must be rejected even though every CRC checks out.
  SnapshotWriter inner;
  inner.AddFrame(FrameType::kCursor, "cursor");
  std::string bytes = inner.Serialize();
  SnapshotWriter empty;
  size_t end_frame_size = empty.Serialize().size() - (8 + 4);
  bytes.resize(bytes.size() - end_frame_size);
  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reader.status().message().find("end frame"), std::string::npos);
}

TEST(SnapshotTest, UnsupportedVersionIsFailedPrecondition) {
  std::string bytes = MakeWriter().Serialize();
  bytes[8] = static_cast<char>(kSnapshotVersion + 1);  // u32 LE low byte
  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, WrongMagicIsDataLoss) {
  std::string bytes = MakeWriter().Serialize();
  bytes[0] = 'X';
  auto reader = SnapshotReader::Parse(bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos);
}

// --- Atomic IO -------------------------------------------------------------

class PersistIoTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Instance().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Instance().DisarmAll(); }
};

TEST_F(PersistIoTest, AtomicWriteRoundTrips) {
  std::string path = TempPath("atomic_roundtrip.bin");
  std::string payload("binary\0payload", 14);
  ASSERT_TRUE(AtomicWriteFile(path, payload).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  EXPECT_FALSE(PathExists(path + ".tmp")) << "tmp must be renamed away";
  EXPECT_TRUE(RemoveFile(path));
}

TEST_F(PersistIoTest, AtomicWriteReplacesExistingContent) {
  std::string path = TempPath("atomic_replace.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "old").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "new content").ok());
  EXPECT_EQ(ReadAll(path), "new content");
  RemoveFile(path);
}

TEST_F(PersistIoTest, ReadMissingFileIsNotFound) {
  auto read = ReadFileToString(TempPath("does_not_exist.bin"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(PersistIoTest, InjectedWriteFaultLeavesDestinationUntouched) {
  std::string path = TempPath("fault_write.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "committed").ok());
  ScopedFault fault("persist.write");
  auto status = AtomicWriteFile(path, "torn");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ReadAll(path), "committed") << "failed write must not tear";
  RemoveFile(path);
  RemoveFile(path + ".tmp");
}

TEST_F(PersistIoTest, InjectedFsyncFaultLeavesDestinationUntouched) {
  std::string path = TempPath("fault_fsync.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "committed").ok());
  ScopedFault fault("persist.fsync");
  auto status = AtomicWriteFile(path, "torn");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(ReadAll(path), "committed");
  RemoveFile(path);
  RemoveFile(path + ".tmp");
}

TEST_F(PersistIoTest, InjectedRenameFaultLeavesDestinationUntouched) {
  std::string path = TempPath("fault_rename.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "committed").ok());
  ScopedFault fault("persist.rename");
  auto status = AtomicWriteFile(path, "torn");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(ReadAll(path), "committed");
  RemoveFile(path);
  RemoveFile(path + ".tmp");
}

TEST_F(PersistIoTest, InjectedReadFaultIsDataLoss) {
  std::string path = TempPath("fault_read.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "data").ok());
  ScopedFault fault("persist.read");
  auto read = ReadFileToString(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  RemoveFile(path);
}

TEST_F(PersistIoTest, StaleTmpFileIsOverwrittenByNextCommit) {
  // A crash between write and rename leaves path.tmp behind; the next
  // commit must ignore and replace it.
  std::string path = TempPath("stale_tmp.bin");
  {
    std::ofstream tmp(path + ".tmp", std::ios::binary);
    tmp << "stale garbage from a crashed writer";
  }
  ASSERT_TRUE(AtomicWriteFile(path, "fresh").ok());
  EXPECT_EQ(ReadAll(path), "fresh");
  EXPECT_FALSE(PathExists(path + ".tmp"));
  RemoveFile(path);
}

TEST_F(PersistIoTest, WriterWriteFileCommitsParseableSnapshot) {
  std::string path = TempPath("writer_commit.snap");
  ASSERT_TRUE(MakeWriter().WriteFile(path).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  auto reader = SnapshotReader::Parse(*bytes);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->frames().size(), 4u);
  RemoveFile(path);
}

}  // namespace
}  // namespace sxnm::persist
