// Robustness tests at unusual scales and shapes: large documents, deep
// nesting, wide fan-out, degenerate configurations. These guard the
// substrate against the failure modes a downstream user will hit first.

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "sxnm/detector.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xml/xpath.h"

namespace sxnm {
namespace {

TEST(StressTest, LargeDocumentRoundTrip) {
  datagen::MovieDataOptions gen;
  gen.num_movies = 5000;
  gen.seed = 1;
  xml::Document doc = datagen::GenerateCleanMovies(gen);
  size_t elements = doc.element_count();
  EXPECT_GT(elements, 20000u);

  std::string text = xml::WriteDocument(doc);
  auto reparsed = xml::Parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->element_count(), elements);
}

TEST(StressTest, DeeplyNestedDocument) {
  constexpr int kDepth = 500;
  std::string text;
  for (int i = 0; i < kDepth; ++i) text += "<d>";
  text += "payload";
  for (int i = 0; i < kDepth; ++i) text += "</d>";

  auto doc = xml::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->element_count(), size_t(kDepth));
  // Descendant XPath reaches the bottom.
  auto leaves = xml::XPath::Parse("//d")->SelectFromRoot(doc.value());
  ASSERT_TRUE(leaves.ok());
  EXPECT_EQ(leaves->size(), size_t(kDepth));
  // Round-trips.
  auto again = xml::Parse(xml::WriteDocument(doc.value()));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->element_count(), size_t(kDepth));
}

TEST(StressTest, VeryWideElement) {
  constexpr int kWidth = 20000;
  std::string text = "<r>";
  for (int i = 0; i < kWidth; ++i) text += "<c/>";
  text += "</r>";
  auto doc = xml::Parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->NumChildren(), size_t(kWidth));
  EXPECT_EQ(doc->element_count(), size_t(kWidth) + 1);
}

TEST(StressTest, DetectorOnSingleInstance) {
  auto doc = xml::Parse("<db><movies><movie><title>Only</title></movie>"
                        "</movies></db>");
  ASSERT_TRUE(doc.ok());
  core::Config config;
  auto movie = core::CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "K1-K4"}})
                   .Build();
  ASSERT_TRUE(movie.ok());
  ASSERT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  auto result = core::Detector(config).Run(doc.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("movie")->num_instances, 1u);
  EXPECT_EQ(result->Find("movie")->comparisons, 0u);
  EXPECT_EQ(result->Find("movie")->clusters.num_clusters(), 1u);
}

TEST(StressTest, ManyCandidateTypes) {
  // 20 sibling candidate types in one config; detector must handle the
  // forest and ordering without quadratic blowup or confusion.
  std::string text = "<db>";
  core::Config config;
  for (int t = 0; t < 20; ++t) {
    std::string name = "type" + std::to_string(t);
    text += "<" + name + ">v" + std::to_string(t) + "</" + name + ">";
    text += "<" + name + ">v" + std::to_string(t) + "</" + name + ">";
    auto cand = core::CandidateBuilder(name, "db/" + name)
                    .Path(1, "text()")
                    .Od(1, 1.0)
                    .Key({{1, "C1-C4"}})
                    .Window(2)
                    .OdThreshold(0.9)
                    .Build();
    ASSERT_TRUE(cand.ok());
    ASSERT_TRUE(config.AddCandidate(std::move(cand).value()).ok());
  }
  text += "</db>";
  auto doc = xml::Parse(text);
  ASSERT_TRUE(doc.ok());
  auto result = core::Detector(config).Run(doc.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->candidates.size(), 20u);
  for (const auto& cand : result->candidates) {
    EXPECT_EQ(cand.num_instances, 2u);
    EXPECT_EQ(cand.duplicate_pairs.size(), 1u)
        << cand.name << ": identical values must match";
  }
}

TEST(StressTest, PathologicalKeyAllEmpty) {
  // Every instance produces an empty key (no digits in titles): the sort
  // degenerates but the algorithm must stay correct.
  auto doc = xml::Parse(
      "<db><movies>"
      "<movie><title>Alpha Beta</title></movie>"
      "<movie><title>Alpha Betb</title></movie>"
      "<movie><title>Gamma Delta</title></movie>"
      "</movies></db>");
  ASSERT_TRUE(doc.ok());
  core::Config config;
  auto movie = core::CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "D1-D4"}})  // titles have no digits
                   .Window(3)
                   .OdThreshold(0.85)
                   .Build();
  ASSERT_TRUE(movie.ok());
  ASSERT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  auto result = core::Detector(config).Run(doc.value());
  ASSERT_TRUE(result.ok());
  // All keys equal "": document order kept, window 3 compares all pairs.
  EXPECT_EQ(result->Find("movie")->duplicate_pairs.size(), 1u);
}

TEST(StressTest, UnicodeHeavyDocumentSurvivesPipeline) {
  std::string text =
      "<db><movies>"
      "<movie><title>\xE3\x82\xAB\xE3\x83\xA9 \xD0\x96\xD0\xA9</title></movie>"
      "<movie><title>\xE3\x82\xAB\xE3\x83\xA9 \xD0\x96\xD0\xAE</title></movie>"
      "</movies></db>";
  auto doc = xml::Parse(text);
  ASSERT_TRUE(doc.ok());
  core::Config config;
  auto movie = core::CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Od(1, 1.0)
                   .Key({{1, "C1-C6"}})
                   .Window(2)
                   .OdThreshold(0.5)
                   .Build();
  ASSERT_TRUE(movie.ok());
  ASSERT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  auto result = core::Detector(config).Run(doc.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Keys are empty (no ASCII alnum); byte-level edit similarity still
  // compares the pair sensibly.
  EXPECT_EQ(result->Find("movie")->comparisons, 1u);
}

}  // namespace
}  // namespace sxnm
