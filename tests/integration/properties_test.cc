// Cross-module property tests: invariants of the SXNM pipeline that must
// hold for any data, checked over generated corpora.

#include <gtest/gtest.h>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/experiment.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "sxnm/detector.h"
#include "sxnm/sliding_window.h"
#include "xml/parser.h"

namespace sxnm {
namespace {

xml::Document DirtyMovies(size_t n, uint64_t seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = n;
  gen.seed = seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

class WindowMonotonicity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowMonotonicity, RecallNonDecreasingInWindowSize) {
  // Larger windows compare supersets of pairs, so the set of accepted
  // pairs (and hence recall) can only grow.
  xml::Document doc = DirtyMovies(150, GetParam());
  auto config = datagen::MovieConfig(2);
  ASSERT_TRUE(config.ok());
  auto single = eval::WithSingleKey(config.value(), "movie", 0);
  ASSERT_TRUE(single.ok());

  double previous_recall = -1.0;
  size_t previous_pairs = 0;
  for (size_t w : {2u, 4u, 8u, 16u}) {
    auto eval = eval::RunAndEvaluate(
        eval::WithWindowFor(single.value(), "movie", w).value(), doc,
        "movie");
    ASSERT_TRUE(eval.ok());
    EXPECT_GE(eval->metrics.recall, previous_recall)
        << "window " << w << " seed " << GetParam();
    EXPECT_GE(eval->detected_pair_count, previous_pairs);
    previous_recall = eval->metrics.recall;
    previous_pairs = eval->detected_pair_count;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowMonotonicity,
                         ::testing::Values(1, 2, 3));

TEST(WindowEqualsAllPairsProperty, HugeWindowMatchesExhaustive) {
  // With window >= n, SXNM accepts exactly the pairs an exhaustive
  // comparison would accept (for a single pass; multi-pass is a subset
  // union of identical all-pairs sets).
  xml::Document doc = DirtyMovies(60, 4);
  auto config = datagen::MovieConfig(2);
  ASSERT_TRUE(config.ok());
  auto single = eval::WithSingleKey(config.value(), "movie", 0);
  ASSERT_TRUE(single.ok());

  auto small = core::Detector(
                   eval::WithWindowFor(single.value(), "movie", 4).value())
                   .Run(doc);
  auto huge = core::Detector(
                  eval::WithWindowFor(single.value(), "movie", 10000).value())
                  .Run(doc);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(huge.ok());

  const auto& small_pairs = small->Find("movie")->duplicate_pairs;
  const auto& huge_pairs = huge->Find("movie")->duplicate_pairs;
  // Small-window accepted pairs are a subset of the all-pairs result.
  for (const auto& pair : small_pairs) {
    EXPECT_NE(std::find(huge_pairs.begin(), huge_pairs.end(), pair),
              huge_pairs.end());
  }
  size_t n = huge->Find("movie")->num_instances;
  EXPECT_EQ(huge->Find("movie")->comparisons, n * (n - 1) / 2);
}

TEST(MultiPassProperty, MpPairsSupersetOfEachSinglePass) {
  xml::Document doc = DirtyMovies(120, 5);
  auto config = datagen::MovieConfig(6);
  ASSERT_TRUE(config.ok());

  auto mp = core::Detector(config.value()).Run(doc);
  ASSERT_TRUE(mp.ok());
  const auto& mp_pairs = mp->Find("movie")->duplicate_pairs;

  for (size_t k = 0; k < 3; ++k) {
    auto sp_config = eval::WithSingleKey(config.value(), "movie", k);
    ASSERT_TRUE(sp_config.ok());
    auto sp = core::Detector(sp_config.value()).Run(doc);
    ASSERT_TRUE(sp.ok());
    for (const auto& pair : sp->Find("movie")->duplicate_pairs) {
      EXPECT_NE(std::find(mp_pairs.begin(), mp_pairs.end(), pair),
                mp_pairs.end())
          << "pair from single pass " << k << " missing in multi-pass";
    }
  }
}

TEST(DeterminismProperty, SameInputSameOutput) {
  xml::Document doc = DirtyMovies(100, 6);
  auto config = datagen::MovieConfig(8);
  ASSERT_TRUE(config.ok());
  core::Detector detector(config.value());
  auto a = detector.Run(doc);
  auto b = detector.Run(doc);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Find("movie")->duplicate_pairs,
            b->Find("movie")->duplicate_pairs);
  EXPECT_EQ(a->Find("movie")->clusters.clusters(),
            b->Find("movie")->clusters.clusters());
}

TEST(ClusterPartitionProperty, EveryInstanceInExactlyOneCluster) {
  xml::Document doc = DirtyMovies(200, 7);
  auto config = datagen::MovieConfig(10);
  ASSERT_TRUE(config.ok());
  auto result = core::Detector(config.value()).Run(doc);
  ASSERT_TRUE(result.ok());
  const core::CandidateResult* movie = result->Find("movie");

  std::vector<int> seen(movie->num_instances, 0);
  for (const auto& cluster : movie->clusters.clusters()) {
    for (size_t ordinal : cluster) ++seen[ordinal];
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "ordinal " << i;
  }
}

TEST(ClosureProperty, AcceptedPairsAlwaysIntraCluster) {
  xml::Document doc = DirtyMovies(150, 8);
  auto config = datagen::MovieConfig(8);
  ASSERT_TRUE(config.ok());
  auto result = core::Detector(config.value()).Run(doc);
  ASSERT_TRUE(result.ok());
  const core::CandidateResult* movie = result->Find("movie");
  for (const auto& [a, b] : movie->duplicate_pairs) {
    EXPECT_EQ(movie->clusters.cid(a), movie->clusters.cid(b));
  }
}

TEST(ComparisonBoundProperty, ComparisonsBoundedByWindowFormula) {
  xml::Document doc = DirtyMovies(180, 9);
  for (size_t w : {2u, 5u, 9u}) {
    auto config = datagen::MovieConfig(w);
    ASSERT_TRUE(config.ok());
    auto result = core::Detector(config.value()).Run(doc);
    ASSERT_TRUE(result.ok());
    const core::CandidateResult* movie = result->Find("movie");
    size_t per_pass = core::WindowPairCount(movie->num_instances, w);
    EXPECT_LE(movie->comparisons, 3 * per_pass)
        << "multi-pass with 3 keys compares at most 3x one pass";
    EXPECT_GE(movie->comparisons, per_pass)
        << "at least the first pass is fully compared";
  }
}

TEST(MetricsConsistencyProperty, DetectedPairsMatchMetricsDenominator) {
  xml::Document doc = DirtyMovies(150, 10);
  auto config = datagen::MovieConfig(6);
  ASSERT_TRUE(config.ok());
  const core::CandidateConfig* cand = config->Find("movie");
  auto gold = eval::GoldClusterSet(doc, cand->absolute_path_str);
  ASSERT_TRUE(gold.ok());
  auto result = core::Detector(config.value()).Run(doc);
  ASSERT_TRUE(result.ok());
  const core::CandidateResult* movie = result->Find("movie");

  eval::PairMetrics m = eval::PairwiseMetrics(gold.value(), movie->clusters);
  EXPECT_EQ(m.detected_pairs, movie->clusters.NumDuplicatePairs());
  EXPECT_EQ(m.gold_pairs, gold->NumDuplicatePairs());
  EXPECT_GE(m.detected_pairs, movie->duplicate_pairs.size())
      << "closure can only add pairs";
}

TEST(ThresholdMonotonicityProperty, HigherThresholdFewerPairs) {
  xml::Document doc = DirtyMovies(150, 11);
  size_t previous = SIZE_MAX;
  for (double threshold : {0.5, 0.65, 0.8, 0.95}) {
    auto config = datagen::MovieConfig(8);
    ASSERT_TRUE(config.ok());
    config->Find("movie")->classifier.od_threshold = threshold;
    auto result = core::Detector(config.value()).Run(doc);
    ASSERT_TRUE(result.ok());
    size_t pairs = result->Find("movie")->duplicate_pairs.size();
    EXPECT_LE(pairs, previous) << "threshold " << threshold;
    previous = pairs;
  }
}

}  // namespace
}  // namespace sxnm
