// End-to-end integration tests: full generated-data pipelines through
// SXNM, asserting quality floors against ground truth, plus whole-system
// round trips (serialize -> reparse -> detect; config from XML; dedup).

#include <gtest/gtest.h>

#include "datagen/dirty_gen.h"
#include "datagen/freedb.h"
#include "datagen/movies.h"
#include "datagen/template_gen.h"
#include "eval/experiment.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "sxnm/config_xml.h"
#include "sxnm/dedup_writer.h"
#include "sxnm/detector.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xml/xpath.h"

namespace sxnm {
namespace {

TEST(EndToEndMovies, QualityFloorOnDataSet1) {
  datagen::MovieDataOptions gen;
  gen.num_movies = 500;
  gen.seed = 101;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(7));
  ASSERT_TRUE(dirty.ok());

  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());
  auto eval = eval::RunAndEvaluate(config.value(), dirty.value(), "movie");
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();

  EXPECT_GT(eval->metrics.recall, 0.6) << eval->metrics.ToString();
  EXPECT_GT(eval->metrics.precision, 0.85) << eval->metrics.ToString();
  // Efficiency: far fewer comparisons than all-pairs.
  size_t all_pairs = eval->instances * (eval->instances - 1) / 2;
  EXPECT_LT(eval->comparisons, all_pairs / 5);
}

TEST(EndToEndMovies, CleanDataYieldsNoOrFewDuplicates) {
  datagen::MovieDataOptions gen;
  gen.num_movies = 400;
  gen.seed = 55;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto config = datagen::MovieConfig(/*window=*/5);
  ASSERT_TRUE(config.ok());
  auto eval = eval::RunAndEvaluate(config.value(), clean, "movie");
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->metrics.gold_pairs, 0u);
  // A handful of near-title false positives is tolerable, a flood is not.
  EXPECT_LT(eval->detected_pair_count, 8u);
}

TEST(EndToEndMovies, SerializeReparseDetectIsIdentical) {
  datagen::MovieDataOptions gen;
  gen.num_movies = 120;
  gen.seed = 9;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(3));
  ASSERT_TRUE(dirty.ok());

  auto reparsed = xml::Parse(xml::WriteDocument(dirty.value()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();

  auto config = datagen::MovieConfig(6);
  ASSERT_TRUE(config.ok());
  core::Detector detector(config.value());
  auto direct = detector.Run(dirty.value());
  auto roundtrip = detector.Run(reparsed.value());
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_EQ(direct->Find("movie")->duplicate_pairs,
            roundtrip->Find("movie")->duplicate_pairs);
}

TEST(EndToEndMovies, ConfigThroughXmlRoundTripGivesSameResult) {
  datagen::MovieDataOptions gen;
  gen.num_movies = 150;
  gen.seed = 21;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(4));
  ASSERT_TRUE(dirty.ok());

  auto config = datagen::MovieConfig(8);
  ASSERT_TRUE(config.ok());
  auto reparsed_config =
      core::ConfigFromXmlString(core::ConfigToXmlString(config.value()));
  ASSERT_TRUE(reparsed_config.ok()) << reparsed_config.status().ToString();

  auto a = core::Detector(config.value()).Run(dirty.value());
  auto b = core::Detector(reparsed_config.value()).Run(dirty.value());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Find("movie")->duplicate_pairs,
            b->Find("movie")->duplicate_pairs);
}

TEST(EndToEndMovies, DedupRemovesDetectedDuplicates) {
  datagen::MovieDataOptions gen;
  gen.num_movies = 200;
  gen.seed = 31;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(5));
  ASSERT_TRUE(dirty.ok());

  auto config = datagen::MovieConfig(10);
  ASSERT_TRUE(config.ok());
  core::Detector detector(config.value());
  auto result = detector.Run(dirty.value());
  ASSERT_TRUE(result.ok());

  core::DedupStats stats;
  auto deduped = core::Deduplicate(dirty.value(), result.value(),
                                   core::RepresentativeStrategy::kRichest,
                                   &stats);
  ASSERT_TRUE(deduped.ok());

  auto count = [](const xml::Document& d) {
    return xml::XPath::Parse("movie_database/movies/movie")
        .value()
        .SelectFromRoot(d)
        ->size();
  };
  EXPECT_EQ(count(deduped.value()),
            count(dirty.value()) - stats.elements_removed);
  EXPECT_GT(stats.elements_removed, 0u);

  // Re-running detection on the deduplicated output finds fewer pairs.
  auto second = detector.Run(deduped.value());
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->Find("movie")->duplicate_pairs.size(),
            result->Find("movie")->duplicate_pairs.size());
}

TEST(EndToEndCds, DescendantGateBeatsOdOnlyOnF1) {
  // The Experiment set 3 headline: using descendants yields a better best
  // f-measure than the object description alone.
  auto doc = datagen::GenerateDataSet2(300, 77);
  ASSERT_TRUE(doc.ok());
  auto config = datagen::CdConfig(6);
  ASSERT_TRUE(config.ok());

  core::ClassifierConfig od_only = config->Find("disc")->classifier;
  od_only.mode = core::CombineMode::kOdOnly;
  auto eval_od = eval::RunAndEvaluate(
      eval::WithClassifier(config.value(), "disc", od_only).value(),
      doc.value(), "disc");
  ASSERT_TRUE(eval_od.ok());

  core::ClassifierConfig gated = od_only;
  gated.mode = core::CombineMode::kDescGate;
  gated.desc_threshold = 0.1;  // "low descendants threshold is best"
  auto eval_gate = eval::RunAndEvaluate(
      eval::WithClassifier(config.value(), "disc", gated).value(),
      doc.value(), "disc");
  ASSERT_TRUE(eval_gate.ok());

  EXPECT_GT(eval_gate->metrics.f1, eval_od->metrics.f1)
      << "od-only: " << eval_od->metrics.ToString()
      << "\nwith descendants: " << eval_gate->metrics.ToString();
  EXPECT_GT(eval_gate->metrics.precision, eval_od->metrics.precision);
}

TEST(EndToEndCds, ScalesTo2kDiscsQuickly) {
  auto doc = datagen::GenerateDataSet3(1000, 5, 0.03);
  ASSERT_TRUE(doc.ok());
  auto config = datagen::Ds3Config(5);
  ASSERT_TRUE(config.ok());
  core::Detector detector(config.value());
  util::Stopwatch watch;
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(watch.ElapsedSeconds(), 30.0);
  EXPECT_GT(result->Find("disc")->num_instances, 1000u - 10);
}

TEST(EndToEndScalability, BottomUpCandidatesAllProduceClusters) {
  datagen::MovieDataOptions gen;
  gen.num_movies = 150;
  gen.seed = 41;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(clean, datagen::FewDuplicatesPreset(6));
  ASSERT_TRUE(dirty.ok());

  auto config = datagen::MovieScalabilityConfig(3);
  ASSERT_TRUE(config.ok());
  core::Detector detector(config.value());
  auto result = detector.Run(dirty.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  for (const char* name : {"title", "person", "movie"}) {
    const core::CandidateResult* cand = result->Find(name);
    ASSERT_NE(cand, nullptr) << name;
    EXPECT_GT(cand->num_instances, 0u) << name;
    // Each candidate had ~20% duplication: expect at least some found.
    EXPECT_GT(cand->duplicate_pairs.size(), 0u) << name;
  }

  // Processing order: title and person strictly before movie.
  ASSERT_EQ(result->candidates.size(), 3u);
  EXPECT_EQ(result->candidates[2].name, "movie");
}

TEST(EndToEndGold, GoldOrdinalsAlignWithDetectorOrdinals) {
  // The gold extraction and the candidate forest must agree on instance
  // ordering, otherwise every metric would be garbage.
  datagen::MovieDataOptions gen;
  gen.num_movies = 80;
  gen.seed = 61;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty = datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(8));
  ASSERT_TRUE(dirty.ok());

  auto config = datagen::MovieConfig(10);
  ASSERT_TRUE(config.ok());
  core::Detector detector(config.value());
  auto result = detector.Run(dirty.value());
  ASSERT_TRUE(result.ok());
  const core::CandidateResult* movie = result->Find("movie");

  auto labels =
      eval::GoldLabels(dirty.value(), "movie_database/movies/movie");
  ASSERT_TRUE(labels.ok());
  ASSERT_EQ(labels->size(), movie->num_instances);

  // Every instance's gold label matches the one on its element.
  for (const core::GkRow& row : movie->gk.rows) {
    const xml::Element* e = dirty->ElementById(row.eid);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->AttributeOr(datagen::kGoldAttribute, ""),
              (*labels)[row.ordinal]);
  }
}

}  // namespace
}  // namespace sxnm
