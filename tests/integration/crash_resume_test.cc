// Crash matrix: fork a child that runs a checkpointed detection and is
// SIGKILLed at a precise point — before the first snapshot is durable,
// between passes, mid snapshot-write (after write, after fsync, before
// rename), and after the final pass during artifact export — then resume
// in the parent and prove the result is identical to an uninterrupted
// run. The kill is a real SIGKILL raised inside the instrumented step
// (FaultAction::kKill): no destructors, no atexit, no flushing — exactly
// what OOM kills and node preemptions do.

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "extsort/extsort.h"
#include "persist/io.h"
#include "sxnm/detector.h"
#include "util/fault_injection.h"
#include "xml/node.h"

namespace sxnm::core {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

xml::Document DirtyMovies(size_t num_movies, unsigned data_seed,
                          unsigned dirty_seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = data_seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty =
      datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(dirty_seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

void ExpectIdenticalResults(const DetectionResult& a,
                            const DetectionResult& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    const CandidateResult& ca = a.candidates[i];
    const CandidateResult& cb = b.candidates[i];
    SCOPED_TRACE(ca.name);
    EXPECT_EQ(ca.name, cb.name);
    EXPECT_EQ(ca.duplicate_pairs, cb.duplicate_pairs);
    EXPECT_EQ(ca.duplicate_eid_pairs, cb.duplicate_eid_pairs);
    EXPECT_EQ(ca.comparisons, cb.comparisons);
    EXPECT_EQ(ca.clusters.clusters(), cb.clusters.clusters());
  }
  EXPECT_EQ(a.TotalComparisons(), b.TotalComparisons());
}

/// One cell of the crash matrix: where the child dies.
struct KillPoint {
  const char* name;
  const char* site;     // fault site that raises SIGKILL
  uint64_t hit;         // 1-based hit of that site
  bool needs_report;    // arm an artifact export after the last checkpoint
};

// Sites hit in a two-level run with every-pass checkpointing (the final
// level is never committed — a successful run would delete it moments
// later):
//   persist.write  1        -> post-KG snapshot       (not yet durable)
//   detector.pass  1..2     -> level-1 window passes
//   persist.write  2        -> level-1 snapshot
//   detector.pass  3        -> level-2 (movie) pass
//   persist.write  3        -> DetectionReport export (with needs_report)
const KillPoint kKillPoints[] = {
    // Killed inside the very first snapshot write: nothing durable yet,
    // resume must behave as a fresh run.
    {"before_first_checkpoint", "persist.write", 1, false},
    // Killed at the start of a level-2 pass: level 1 is durable.
    {"between_passes", "detector.pass", 3, false},
    // Killed mid-commit of the level-1 snapshot, after the payload
    // write / after fsync: the tmp file is torn or complete but never
    // renamed; the destination still holds the post-KG snapshot.
    {"during_snapshot_write", "persist.fsync", 2, false},
    {"during_snapshot_rename", "persist.rename", 2, false},
    // Killed after the final pass, while exporting the report: level 1
    // is durable; resume replays it, re-runs the final level, and still
    // exports the report.
    {"after_final_pass", "persist.write", 3, true},
};

class CrashResumeTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Instance().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Instance().DisarmAll(); }
};

void RunCrashMatrixCell(const KillPoint& kill, size_t num_threads,
                        bool dag_and_batch) {
  std::string tag = std::string(kill.name) + "_t" +
                    std::to_string(num_threads) +
                    (dag_and_batch ? "_dag" : "_plain");
  SCOPED_TRACE(tag);

  auto config_or = datagen::MovieScalabilityConfig(/*window=*/5);
  ASSERT_TRUE(config_or.ok());
  Config config = config_or.value();
  config.set_num_threads(num_threads);
  for (CandidateConfig& cand : config.mutable_candidates()) {
    cand.dag_compression = dag_and_batch;
    cand.batch_scoring = dag_and_batch;
  }
  xml::Document doc = DirtyMovies(80, 31, 4);

  auto baseline = Detector(config).Run(doc);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string ckpt = TempPath("crash_" + tag + ".ckpt");
  std::string report = TempPath("crash_" + tag + ".report.json");
  persist::RemoveFile(ckpt);
  persist::RemoveFile(ckpt + ".tmp");
  persist::RemoveFile(report);

  Config run_config = config;
  run_config.mutable_checkpoint().path = ckpt;
  if (kill.needs_report) {
    run_config.mutable_observability().metrics = true;
    run_config.mutable_observability().report_path = report;
  }

  pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // In the child: arm the kill and run. SIGKILL fires inside the
    // instrumented step; if the run somehow finishes, exit with a
    // marker the parent will flag.
    util::FaultInjector::Instance().Arm(kill.site, kill.hit,
                                        util::FaultAction::kKill);
    auto result = Detector(run_config).Run(doc);
    (void)result;
    ::_exit(42);
  }

  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child exited instead of dying (status " << wstatus << ")";
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Whatever instant the child died at, the checkpoint path holds either
  // nothing or one complete, verifiable snapshot — and the resumed run
  // equals the uninterrupted baseline.
  auto resumed = Detector(run_config).Run(doc);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdenticalResults(baseline.value(), resumed.value());
  EXPECT_FALSE(persist::PathExists(ckpt))
      << "completed resume must remove the snapshot";
  if (kill.needs_report) {
    EXPECT_TRUE(persist::PathExists(report))
        << "resume must still export the report";
  }
  persist::RemoveFile(ckpt + ".tmp");
  persist::RemoveFile(report);
}

TEST_F(CrashResumeTest, KillMatrixSerial) {
  for (const KillPoint& kill : kKillPoints) {
    RunCrashMatrixCell(kill, /*num_threads=*/1, /*dag_and_batch=*/true);
  }
}

TEST_F(CrashResumeTest, KillMatrixParallel) {
  for (const KillPoint& kill : kKillPoints) {
    RunCrashMatrixCell(kill, /*num_threads=*/4, /*dag_and_batch=*/true);
  }
}

TEST_F(CrashResumeTest, KillMatrixSerialPlainKernels) {
  for (const KillPoint& kill : kKillPoints) {
    RunCrashMatrixCell(kill, /*num_threads=*/1, /*dag_and_batch=*/false);
  }
}

TEST_F(CrashResumeTest, KillMatrixParallelPlainKernels) {
  for (const KillPoint& kill : kKillPoints) {
    RunCrashMatrixCell(kill, /*num_threads=*/4, /*dag_and_batch=*/false);
  }
}

TEST_F(CrashResumeTest, KillDuringExternalSortSpillResumesIdentically) {
  // An out-of-core run (memory budget + shards) SIGKILLed inside a
  // spill-file write: the checkpoint path still holds nothing or one
  // complete snapshot, and the resumed run — which re-sorts its levels
  // from scratch, ignoring the dead incarnation's orphaned .run files —
  // equals the uninterrupted baseline.
  auto config_or = datagen::MovieScalabilityConfig(/*window=*/5);
  ASSERT_TRUE(config_or.ok());
  Config config = config_or.value();
  config.set_num_threads(4);
  config.set_shards(2);
  config.set_memory_budget_bytes(64 * 1024);  // small enough to spill
  std::string spill_dir = TempPath("crash_spill_dir");
  std::filesystem::remove_all(spill_dir);
  std::filesystem::create_directories(spill_dir);
  config.set_spill_dir(spill_dir);
  xml::Document doc = DirtyMovies(80, 31, 4);

  auto baseline = Detector(config).Run(doc);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string ckpt = TempPath("crash_spill.ckpt");
  persist::RemoveFile(ckpt);
  persist::RemoveFile(ckpt + ".tmp");
  Config run_config = config;
  run_config.mutable_checkpoint().path = ckpt;

  pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    util::FaultInjector::Instance().Arm(extsort::kSpillFaultSite, 1,
                                        util::FaultAction::kKill);
    auto result = Detector(run_config).Run(doc);
    (void)result;
    ::_exit(42);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child exited instead of dying in the spill (status " << wstatus
      << ") — the budget must be small enough to force spilling";
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  auto resumed = Detector(run_config).Run(doc);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdenticalResults(baseline.value(), resumed.value());
  EXPECT_FALSE(persist::PathExists(ckpt))
      << "completed resume must remove the snapshot";
  persist::RemoveFile(ckpt + ".tmp");
  std::filesystem::remove_all(spill_dir);  // orphaned .run files expected
}

TEST_F(CrashResumeTest, RepeatedCrashesMakeForwardProgress) {
  // Kill during every level's snapshot commit in turn, resuming after
  // each death: the run must ratchet forward and finally complete.
  auto config_or = datagen::MovieScalabilityConfig(/*window=*/5);
  ASSERT_TRUE(config_or.ok());
  Config config = config_or.value();
  xml::Document doc = DirtyMovies(80, 31, 4);

  auto baseline = Detector(config).Run(doc);
  ASSERT_TRUE(baseline.ok());

  std::string ckpt = TempPath("crash_ratchet.ckpt");
  persist::RemoveFile(ckpt);
  Config run_config = config;
  run_config.mutable_checkpoint().path = ckpt;

  // Each incarnation dies after its first snapshot commit lands, so
  // every crash still moves the durable frontier one level forward.
  // Incarnation 1 dies renaming the level-1 snapshot (post-KG commit is
  // durable); incarnation 2 — which, resumed, skips the post-KG write —
  // dies entering the final pass (level-1 commit is durable).
  const struct {
    const char* site;
    uint64_t hit;
  } kCrashes[] = {{"persist.rename", 2}, {"detector.pass", 3}};
  for (const auto& crash : kCrashes) {
    pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      util::FaultInjector::Instance().Arm(crash.site, crash.hit,
                                          util::FaultAction::kKill);
      auto result = Detector(run_config).Run(doc);
      (void)result;
      ::_exit(42);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
  }

  auto resumed = Detector(run_config).Run(doc);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdenticalResults(baseline.value(), resumed.value());
  EXPECT_FALSE(persist::PathExists(ckpt));
  persist::RemoveFile(ckpt + ".tmp");
}

}  // namespace
}  // namespace sxnm::core
