#include "datagen/vocab.h"

#include <gtest/gtest.h>

#include <set>

#include "util/string_util.h"

namespace sxnm::datagen {
namespace {

TEST(VocabTest, ListsNonEmptyAndReasonable) {
  EXPECT_GT(FirstNames().size(), 100u);
  EXPECT_GT(LastNames().size(), 100u);
  EXPECT_GT(TitleWords().size(), 80u);
  EXPECT_GT(MusicGenres().size(), 15u);
  EXPECT_GT(MovieGenres().size(), 10u);
  EXPECT_GT(BandWords().size(), 30u);
  EXPECT_GT(TrackWords().size(), 40u);
}

TEST(VocabTest, RandomPersonNameShape) {
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    std::string name = RandomPersonName(rng);
    auto parts = util::SplitWhitespace(name);
    EXPECT_EQ(parts.size(), 2u) << name;
  }
}

TEST(VocabTest, RandomTitleWordCount) {
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    auto words = util::SplitWhitespace(RandomTitle(rng));
    EXPECT_GE(words.size(), 2u);
    EXPECT_LE(words.size(), 4u);
  }
}

TEST(VocabTest, RandomTitlesAreDiverse) {
  util::Rng rng(3);
  std::set<std::string> titles;
  for (int i = 0; i < 500; ++i) titles.insert(RandomTitle(rng));
  EXPECT_GT(titles.size(), 300u) << "titles should rarely collide";
}

TEST(VocabTest, RandomArtistNonEmpty) {
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(RandomArtist(rng).empty());
  }
}

TEST(VocabTest, RandomDiscIdShape) {
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string id = RandomDiscId(rng);
    ASSERT_EQ(id.size(), 8u);
    for (char c : id) {
      EXPECT_TRUE(util::IsAsciiDigit(c) || (c >= 'a' && c <= 'f')) << id;
    }
  }
}

TEST(VocabTest, DeterministicUnderSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(RandomTitle(a), RandomTitle(b));
  }
}

TEST(VocabTest, ReviewSentenceEndsWithPeriod) {
  util::Rng rng(6);
  std::string s = RandomReviewSentence(rng);
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.back(), '.');
}

}  // namespace
}  // namespace sxnm::datagen
