#include "datagen/movies.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/template_gen.h"
#include "xml/xpath.h"

namespace sxnm::datagen {
namespace {

TEST(MovieGenTest, StructureMatchesDataSet1Schema) {
  MovieDataOptions options;
  options.num_movies = 50;
  xml::Document doc = GenerateCleanMovies(options);
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->name(), "movie_database");

  auto movies = xml::XPath::Parse("movie_database/movies/movie")
                    .value()
                    .SelectFromRoot(doc);
  ASSERT_TRUE(movies.ok());
  ASSERT_EQ(movies->size(), 50u);

  for (const xml::Element* movie : movies.value()) {
    EXPECT_TRUE(movie->HasAttribute("length"));
    EXPECT_TRUE(movie->HasAttribute(kGoldAttribute));
    EXPECT_GE(movie->ChildElements("title").size(), 1u);
    EXPECT_LE(movie->ChildElements("title").size(), 2u);
    const xml::Element* people = movie->FirstChildElement("people");
    ASSERT_NE(people, nullptr);
    for (const xml::Element* person : people->ChildElements("person")) {
      EXPECT_NE(person->FirstChildElement("lastname"), nullptr);
      EXPECT_GE(person->ChildElements("firstname").size(), 1u);
    }
  }
}

TEST(MovieGenTest, TitlesAreUnique) {
  MovieDataOptions options;
  options.num_movies = 300;
  xml::Document doc = GenerateCleanMovies(options);
  auto titles = xml::XPath::Parse("movie_database/movies/movie/title")
                    .value()
                    .SelectFromRoot(doc);
  ASSERT_TRUE(titles.ok());
  std::set<std::string> unique;
  for (const xml::Element* t : titles.value()) {
    EXPECT_TRUE(unique.insert(t->DirectText()).second)
        << "duplicate clean title: " << t->DirectText();
  }
}

TEST(MovieGenTest, YearSometimesMissing) {
  MovieDataOptions options;
  options.num_movies = 400;
  xml::Document doc = GenerateCleanMovies(options);
  auto movies = xml::XPath::Parse("movie_database/movies/movie")
                    .value()
                    .SelectFromRoot(doc);
  size_t without_year = 0;
  for (const xml::Element* movie : movies.value()) {
    if (!movie->HasAttribute("year")) ++without_year;
  }
  EXPECT_GT(without_year, 0u) << "missing years drive Key 2's weakness";
  EXPECT_LT(without_year, 100u);
}

TEST(MovieGenTest, DeterministicUnderSeed) {
  MovieDataOptions options;
  options.num_movies = 20;
  options.seed = 77;
  xml::Document a = GenerateCleanMovies(options);
  xml::Document b = GenerateCleanMovies(options);
  EXPECT_EQ(a.element_count(), b.element_count());
  EXPECT_EQ(a.root()->DeepText(), b.root()->DeepText());
}

TEST(SharedCastTest, ActorsRecurAcrossMovies) {
  SharedCastOptions options;
  options.num_movies = 200;
  options.pool_size = 40;
  options.seed = 9;
  xml::Document doc = GenerateSharedCastMovies(options);

  auto persons =
      xml::XPath::Parse("movie_database/movies/movie/people/person")
          .value()
          .SelectFromRoot(doc);
  ASSERT_TRUE(persons.ok());
  ASSERT_GT(persons->size(), 200u);

  // Gold ids reference the pool; the same actor must appear in several
  // movies (the M:N property), and identical gold means identical name.
  std::map<std::string, std::set<std::string>> names_by_gold;
  for (const xml::Element* p : persons.value()) {
    names_by_gold[p->AttributeOr(kGoldAttribute, "?")].insert(p->DeepText());
  }
  size_t recurring = 0;
  for (const auto& [gold, names] : names_by_gold) {
    EXPECT_EQ(names.size(), 1u) << "clean data: one spelling per actor "
                                << gold;
    (void)gold;
  }
  std::map<std::string, int> appearances;
  for (const xml::Element* p : persons.value()) {
    ++appearances[p->AttributeOr(kGoldAttribute, "?")];
  }
  for (const auto& [gold, count] : appearances) {
    (void)gold;
    if (count > 1) ++recurring;
  }
  EXPECT_GT(recurring, 20u) << "most pool actors play in several movies";
}

TEST(SharedCastTest, MovieTitlesUniqueAndGoldDistinct) {
  SharedCastOptions options;
  options.num_movies = 100;
  options.seed = 4;
  xml::Document doc = GenerateSharedCastMovies(options);
  auto movies = xml::XPath::Parse("movie_database/movies/movie")
                    .value()
                    .SelectFromRoot(doc);
  ASSERT_TRUE(movies.ok());
  ASSERT_EQ(movies->size(), 100u);
  std::set<std::string> titles, golds;
  for (const xml::Element* m : movies.value()) {
    EXPECT_TRUE(
        titles.insert(m->FirstChildElement("title")->DirectText()).second);
    EXPECT_TRUE(golds.insert(m->AttributeOr(kGoldAttribute, "?")).second);
  }
}

TEST(MoviePresetTest, DirtyPresetsHaveExpectedRules) {
  DirtyOptions ds1 = DataSet1DirtyPreset(1);
  ASSERT_EQ(ds1.rules.size(), 1u);
  EXPECT_DOUBLE_EQ(ds1.rules[0].dup_probability, 0.4);

  DirtyOptions few = FewDuplicatesPreset(1);
  ASSERT_EQ(few.rules.size(), 3u);
  for (const auto& rule : few.rules) {
    EXPECT_DOUBLE_EQ(rule.dup_probability, 0.2);
    EXPECT_EQ(rule.max_duplicates, 1);
  }

  DirtyOptions many = ManyDuplicatesPreset(1);
  ASSERT_EQ(many.rules.size(), 3u);
  EXPECT_DOUBLE_EQ(many.rules[0].dup_probability, 1.0);
  EXPECT_EQ(many.rules[0].max_duplicates, 2);
  EXPECT_DOUBLE_EQ(many.rules[1].dup_probability, 0.2);
}

TEST(MoviePresetTest, PresetsApplyCleanly) {
  MovieDataOptions options;
  options.num_movies = 60;
  xml::Document clean = GenerateCleanMovies(options);
  for (auto preset :
       {DataSet1DirtyPreset(9), FewDuplicatesPreset(9),
        ManyDuplicatesPreset(9)}) {
    auto dirty = MakeDirty(clean, preset);
    ASSERT_TRUE(dirty.ok()) << dirty.status().ToString();
    EXPECT_GT(dirty->element_count(), clean.element_count());
  }
}

TEST(MovieConfigTest, MatchesTable3a) {
  auto config = MovieConfig(10);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  ASSERT_EQ(config->candidates().size(), 1u);
  const core::CandidateConfig& movie = config->candidates()[0];
  EXPECT_EQ(movie.name, "movie");
  EXPECT_EQ(movie.window_size, 10u);
  ASSERT_EQ(movie.keys.size(), 3u) << "three keys as in Tab. 3(a)";
  EXPECT_EQ(movie.keys[0].parts[0].pattern.ToString(), "K1-K5");
  EXPECT_EQ(movie.od.size(), 2u);
  EXPECT_DOUBLE_EQ(movie.od[0].relevance, 0.8);
  EXPECT_DOUBLE_EQ(movie.od[1].relevance, 0.2);
  EXPECT_TRUE(config->Validate().ok());
}

TEST(MovieConfigTest, ScalabilityConfigIsBottomUpReady) {
  auto config = MovieScalabilityConfig(3);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->candidates().size(), 3u);
  EXPECT_NE(config->Find("movie"), nullptr);
  EXPECT_NE(config->Find("title"), nullptr);
  EXPECT_NE(config->Find("person"), nullptr);
  EXPECT_TRUE(config->Validate().ok());
}

}  // namespace
}  // namespace sxnm::datagen
