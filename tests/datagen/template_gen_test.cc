#include "datagen/template_gen.h"

#include <gtest/gtest.h>

#include <set>

#include "xml/xpath.h"

namespace sxnm::datagen {
namespace {

TEST(TemplateGenTest, FixedStructure) {
  TemplateNode root{"db"};
  root.Child(TemplateNode{"item"}.Occurs(3, 3).Text(Fixed("x")));
  util::Rng rng(1);
  xml::Document doc = TemplateGenerator(root).Generate(rng);
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->name(), "db");
  auto items = doc.root()->ChildElements("item");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0]->DirectText(), "x");
}

TEST(TemplateGenTest, OccursRangeRespected) {
  TemplateNode root{"db"};
  root.Child(TemplateNode{"item"}.Occurs(2, 5));
  util::Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    xml::Document doc = TemplateGenerator(root).Generate(rng);
    size_t n = doc.root()->ChildElements("item").size();
    EXPECT_GE(n, 2u);
    EXPECT_LE(n, 5u);
  }
}

TEST(TemplateGenTest, AttributesGenerated) {
  TemplateNode root{"db"};
  root.Attr("version", Fixed("7"));
  util::Rng rng(3);
  xml::Document doc = TemplateGenerator(root).Generate(rng);
  EXPECT_EQ(doc.root()->AttributeOr("version", ""), "7");
}

TEST(TemplateGenTest, AttributePresenceProbability) {
  TemplateNode root{"db"};
  root.Child(TemplateNode{"item"}.Occurs(500, 500).Attr(
      "opt", Fixed("v"), /*presence=*/0.5));
  util::Rng rng(4);
  xml::Document doc = TemplateGenerator(root).Generate(rng);
  size_t with = 0;
  for (const xml::Element* item : doc.root()->ChildElements("item")) {
    if (item->HasAttribute("opt")) ++with;
  }
  EXPECT_GT(with, 400u / 2);
  EXPECT_LT(with, 600u / 2 + 100);
}

TEST(TemplateGenTest, GoldIdsUniqueAndSequentialPerName) {
  TemplateNode root{"db"};
  root.Child(TemplateNode{"a"}.Occurs(3, 3).Gold());
  root.Child(TemplateNode{"b"}.Occurs(2, 2).Gold());
  util::Rng rng(5);
  xml::Document doc = TemplateGenerator(root).Generate(rng);

  std::set<std::string> ids;
  for (const xml::Element* a : doc.root()->ChildElements("a")) {
    ids.insert(a->AttributeOr(kGoldAttribute, ""));
  }
  for (const xml::Element* b : doc.root()->ChildElements("b")) {
    ids.insert(b->AttributeOr(kGoldAttribute, ""));
  }
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_TRUE(ids.count("a-0"));
  EXPECT_TRUE(ids.count("a-2"));
  EXPECT_TRUE(ids.count("b-1"));
}

TEST(TemplateGenTest, NestedChildren) {
  TemplateNode person{"person"};
  person.Child(TemplateNode{"lastname"}.Text(Fixed("Doe")));
  TemplateNode root{"db"};
  root.Child(TemplateNode{"people"}.Child(
      std::move(person.Occurs(2, 2))));
  util::Rng rng(6);
  xml::Document doc = TemplateGenerator(root).Generate(rng);
  auto path = xml::XPath::Parse("db/people/person/lastname").value();
  auto found = path.SelectFromRoot(doc);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->size(), 2u);
}

TEST(TemplateGenTest, ElementIdsAssigned) {
  TemplateNode root{"db"};
  root.Child(TemplateNode{"x"}.Occurs(4, 4));
  util::Rng rng(7);
  xml::Document doc = TemplateGenerator(root).Generate(rng);
  EXPECT_EQ(doc.element_count(), 5u);
  EXPECT_EQ(doc.root()->id(), 0);
}

TEST(TemplateGenTest, DeterministicUnderSeed) {
  TemplateNode root{"db"};
  root.Child(TemplateNode{"item"}.Occurs(1, 10).Text(
      [](util::Rng& rng) { return std::to_string(rng.NextInt(0, 999)); }));
  util::Rng rng1(99), rng2(99);
  xml::Document d1 = TemplateGenerator(root).Generate(rng1);
  xml::Document d2 = TemplateGenerator(root).Generate(rng2);
  EXPECT_EQ(d1.element_count(), d2.element_count());
  EXPECT_EQ(d1.root()->DeepText(), d2.root()->DeepText());
}

TEST(StripGoldTest, RemovesAllGoldAttributes) {
  TemplateNode root{"db"};
  root.Gold();
  root.Child(TemplateNode{"a"}.Occurs(3, 3).Gold().Child(
      TemplateNode{"b"}.Gold()));
  util::Rng rng(8);
  xml::Document doc = TemplateGenerator(root).Generate(rng);
  size_t removed = StripGoldAttributes(doc);
  EXPECT_EQ(removed, 7u);  // db + 3*a + 3*b
  auto all = xml::XPath::Parse("//*").value().SelectFromRoot(doc);
  ASSERT_TRUE(all.ok());
  for (const xml::Element* e : all.value()) {
    EXPECT_FALSE(e->HasAttribute(kGoldAttribute));
  }
  EXPECT_TRUE(doc.root()->HasAttribute(kGoldAttribute) == false);
}

TEST(StripGoldTest, EmptyDocument) {
  xml::Document doc;
  EXPECT_EQ(StripGoldAttributes(doc), 0u);
}

}  // namespace
}  // namespace sxnm::datagen
