#include "datagen/freedb.h"

#include <gtest/gtest.h>

#include <map>

#include "datagen/template_gen.h"
#include "util/string_util.h"
#include "xml/xpath.h"

namespace sxnm::datagen {
namespace {

TEST(FreeDbTest, CatalogShape) {
  FreeDbOptions options;
  options.num_discs = 100;
  xml::Document doc = GenerateFreeDbCatalog(options);
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->name(), "freedb");

  auto discs = xml::XPath::Parse("freedb/disc").value().SelectFromRoot(doc);
  ASSERT_TRUE(discs.ok());
  ASSERT_EQ(discs->size(), 100u);
  for (const xml::Element* disc : discs.value()) {
    EXPECT_NE(disc->FirstChildElement("artist"), nullptr)
        << "at least one artist";
    EXPECT_NE(disc->FirstChildElement("dtitle"), nullptr);
    const xml::Element* tracks = disc->FirstChildElement("tracks");
    ASSERT_NE(tracks, nullptr);
    EXPECT_GE(tracks->ChildElements("title").size(), 3u);
    EXPECT_LE(tracks->ChildElements("title").size(), 12u);
    EXPECT_TRUE(disc->HasAttribute(kGoldAttribute));
  }
}

TEST(FreeDbTest, OptionalFieldsSometimesMissing) {
  FreeDbOptions options;
  options.num_discs = 300;
  options.year_presence = 0.5;
  options.did_presence = 0.5;
  options.genre_presence = 0.5;
  xml::Document doc = GenerateFreeDbCatalog(options);
  auto discs = xml::XPath::Parse("freedb/disc").value().SelectFromRoot(doc);
  size_t with_year = 0, with_did = 0, with_genre = 0;
  for (const xml::Element* disc : discs.value()) {
    with_year += disc->FirstChildElement("year") != nullptr;
    with_did += disc->FirstChildElement("did") != nullptr;
    with_genre += disc->FirstChildElement("genre") != nullptr;
  }
  EXPECT_GT(with_year, 100u);
  EXPECT_LT(with_year, 200u);
  EXPECT_GT(with_did, 100u);
  EXPECT_LT(with_did, 200u);
  EXPECT_GT(with_genre, 100u);
  EXPECT_LT(with_genre, 200u);
}

TEST(FreeDbTest, SeriesDiscsPresent) {
  FreeDbOptions options;
  options.num_discs = 500;
  options.series_fraction = 0.2;
  xml::Document doc = GenerateFreeDbCatalog(options);
  auto titles =
      xml::XPath::Parse("freedb/disc/dtitle").value().SelectFromRoot(doc);
  size_t series = 0;
  for (const xml::Element* t : titles.value()) {
    if (t->DirectText().find("(CD") != std::string::npos) ++series;
  }
  EXPECT_GT(series, 50u) << "series confusers are the Fig. 4(d) FP source";
}

TEST(FreeDbTest, VariousArtistsPresent) {
  FreeDbOptions options;
  options.num_discs = 500;
  options.various_artists_fraction = 0.2;
  xml::Document doc = GenerateFreeDbCatalog(options);
  auto artists =
      xml::XPath::Parse("freedb/disc/artist").value().SelectFromRoot(doc);
  size_t various = 0;
  for (const xml::Element* a : artists.value()) {
    if (util::StartsWith(a->DirectText(), "Various")) ++various;
  }
  EXPECT_GT(various, 40u);
}

TEST(FreeDbTest, UnreadableEntriesHaveNoKeyMaterial) {
  FreeDbOptions options;
  options.num_discs = 500;
  options.unreadable_fraction = 0.2;
  xml::Document doc = GenerateFreeDbCatalog(options);
  auto titles =
      xml::XPath::Parse("freedb/disc/dtitle").value().SelectFromRoot(doc);
  size_t unreadable = 0;
  for (const xml::Element* t : titles.value()) {
    if (util::ExtractAlnum(t->DirectText()).empty()) ++unreadable;
  }
  EXPECT_GT(unreadable, 30u)
      << "unreadable discs produce empty keys (Fig. 4(d) discussion)";
}

TEST(FreeDbTest, SeriesMembersAreDistinctRealObjects) {
  FreeDbOptions options;
  options.num_discs = 200;
  options.series_fraction = 0.5;
  xml::Document doc = GenerateFreeDbCatalog(options);
  auto discs = xml::XPath::Parse("freedb/disc").value().SelectFromRoot(doc);
  std::map<std::string, int> by_gold;
  for (const xml::Element* d : discs.value()) {
    ++by_gold[d->AttributeOr(kGoldAttribute, "?")];
  }
  for (const auto& [gold, count] : by_gold) {
    EXPECT_EQ(count, 1) << "series parts must have distinct gold ids: "
                        << gold;
  }
}

TEST(DataSet2Test, CleanPlusOneDuplicateEach) {
  auto doc = GenerateDataSet2(100, 42);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  auto discs =
      xml::XPath::Parse("freedb/disc").value().SelectFromRoot(doc.value());
  ASSERT_TRUE(discs.ok());
  EXPECT_EQ(discs->size(), 200u) << "paper: 500 clean + 500 duplicates";

  std::map<std::string, int> by_gold;
  for (const xml::Element* d : discs.value()) {
    ++by_gold[d->AttributeOr(kGoldAttribute, "?")];
  }
  EXPECT_EQ(by_gold.size(), 100u);
  for (const auto& [gold, count] : by_gold) {
    EXPECT_EQ(count, 2) << gold;
  }
}

TEST(DataSet3Test, LargeCatalogWithFewDuplicates) {
  auto doc = GenerateDataSet3(500, 13, /*dup_fraction=*/0.05);
  ASSERT_TRUE(doc.ok());
  auto discs =
      xml::XPath::Parse("freedb/disc").value().SelectFromRoot(doc.value());
  ASSERT_TRUE(discs.ok());
  EXPECT_GT(discs->size(), 500u);
  EXPECT_LT(discs->size(), 560u);
}

TEST(CdConfigTest, MatchesTable3b) {
  auto config = CdConfig(6);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_TRUE(config->Validate().ok());
  const core::CandidateConfig* disc = config->Find("disc");
  ASSERT_NE(disc, nullptr);
  EXPECT_EQ(disc->keys.size(), 3u);
  EXPECT_EQ(disc->od.size(), 3u);
  EXPECT_DOUBLE_EQ(disc->od[0].relevance, 0.4);  // did
  EXPECT_DOUBLE_EQ(disc->od[1].relevance, 0.3);  // artist
  EXPECT_DOUBLE_EQ(disc->od[2].relevance, 0.3);  // dtitle
  EXPECT_NE(config->Find("track_title"), nullptr);
}

TEST(Ds3ConfigTest, MatchesTable3c) {
  auto config = Ds3Config(5);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_TRUE(config->Validate().ok());
  EXPECT_EQ(config->candidates().size(), 4u);
  const core::CandidateConfig* disc = config->Find("disc");
  ASSERT_NE(disc, nullptr);
  EXPECT_EQ(disc->keys.size(), 2u);
  EXPECT_NE(config->Find("dtitle"), nullptr);
  EXPECT_NE(config->Find("artist"), nullptr);
  EXPECT_NE(config->Find("track_title"), nullptr);
}

}  // namespace
}  // namespace sxnm::datagen
