#include "datagen/dirty_gen.h"

#include <gtest/gtest.h>

#include <map>

#include "datagen/template_gen.h"
#include "xml/parser.h"
#include "xml/xpath.h"

namespace sxnm::datagen {
namespace {

xml::Document CleanItems(size_t n) {
  TemplateNode root{"db"};
  root.Child(TemplateNode{"item"}
                 .Occurs(static_cast<int>(n), static_cast<int>(n))
                 .Gold()
                 .Text([](util::Rng& rng) {
                   return "value number " + std::to_string(rng.NextInt(0, 1 << 20));
                 }));
  util::Rng rng(11);
  return TemplateGenerator(root).Generate(rng);
}

size_t CountItems(const xml::Document& doc) {
  return xml::XPath::Parse("db/item").value().SelectFromRoot(doc)->size();
}

TEST(DirtyGenTest, DupProbabilityOneDoublesEveryElement) {
  xml::Document clean = CleanItems(50);
  DirtyOptions options;
  options.seed = 1;
  options.rules.push_back({"db/item", 1.0, 1, 1});
  DirtyStats stats;
  auto dirty = MakeDirty(clean, options, &stats);
  ASSERT_TRUE(dirty.ok()) << dirty.status().ToString();
  EXPECT_EQ(CountItems(dirty.value()), 100u);
  EXPECT_EQ(stats.elements_considered, 50u);
  EXPECT_EQ(stats.elements_duplicated, 50u);
  EXPECT_EQ(stats.duplicates_created, 50u);
}

TEST(DirtyGenTest, DupProbabilityZeroChangesNothing) {
  xml::Document clean = CleanItems(30);
  DirtyOptions options;
  options.rules.push_back({"db/item", 0.0, 1, 1});
  auto dirty = MakeDirty(clean, options);
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(CountItems(dirty.value()), 30u);
}

TEST(DirtyGenTest, DuplicateCountRange) {
  xml::Document clean = CleanItems(40);
  DirtyOptions options;
  options.seed = 3;
  options.rules.push_back({"db/item", 1.0, 1, 2});
  DirtyStats stats;
  auto dirty = MakeDirty(clean, options, &stats);
  ASSERT_TRUE(dirty.ok());
  size_t total = CountItems(dirty.value());
  EXPECT_GE(total, 80u);
  EXPECT_LE(total, 120u);
  EXPECT_GT(total, 85u) << "some elements should get 2 duplicates";
}

TEST(DirtyGenTest, DuplicatesInheritGoldIdentity) {
  xml::Document clean = CleanItems(20);
  DirtyOptions options;
  options.seed = 5;
  options.rules.push_back({"db/item", 1.0, 1, 1});
  auto dirty = MakeDirty(clean, options);
  ASSERT_TRUE(dirty.ok());

  std::map<std::string, int> by_gold;
  auto items = xml::XPath::Parse("db/item").value().SelectFromRoot(
      dirty.value());
  for (const xml::Element* item : items.value()) {
    ++by_gold[item->AttributeOr(kGoldAttribute, "?")];
  }
  EXPECT_EQ(by_gold.size(), 20u);
  for (const auto& [gold, count] : by_gold) {
    EXPECT_EQ(count, 2) << gold;
  }
}

TEST(DirtyGenTest, PollutionChangesSomeText) {
  xml::Document clean = CleanItems(100);
  DirtyOptions options;
  options.seed = 7;
  options.rules.push_back({"db/item", 1.0, 1, 1});
  options.errors.field_error_probability = 0.8;
  DirtyStats stats;
  auto dirty = MakeDirty(clean, options, &stats);
  ASSERT_TRUE(dirty.ok());
  EXPECT_GT(stats.values_polluted, 30u);

  // Originals keep their exact text (pollution applies to copies only):
  // group by gold id; at least one member must equal the clean text.
  std::map<std::string, std::vector<std::string>> texts;
  auto items =
      xml::XPath::Parse("db/item").value().SelectFromRoot(dirty.value());
  for (const xml::Element* item : items.value()) {
    texts[item->AttributeOr(kGoldAttribute, "?")].push_back(
        item->DirectText());
  }
  auto clean_items =
      xml::XPath::Parse("db/item").value().SelectFromRoot(clean);
  for (const xml::Element* item : clean_items.value()) {
    const auto& group = texts[item->AttributeOr(kGoldAttribute, "?")];
    EXPECT_NE(std::find(group.begin(), group.end(), item->DirectText()),
              group.end());
  }
}

TEST(DirtyGenTest, SeedDeterminism) {
  xml::Document clean = CleanItems(25);
  DirtyOptions options;
  options.seed = 13;
  options.rules.push_back({"db/item", 0.5, 1, 2});
  auto d1 = MakeDirty(clean, options);
  auto d2 = MakeDirty(clean, options);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->element_count(), d2->element_count());
  EXPECT_EQ(d1->root()->DeepText(), d2->root()->DeepText());
}

TEST(DirtyGenTest, InvalidRulePathRejected) {
  xml::Document clean = CleanItems(5);
  DirtyOptions options;
  options.rules.push_back({"db/item/text()", 1.0, 1, 1});
  EXPECT_FALSE(MakeDirty(clean, options).ok());
  options.rules = {{"bad[path", 1.0, 1, 1}};
  EXPECT_FALSE(MakeDirty(clean, options).ok());
}

TEST(DirtyGenTest, DuplicatingRootRejected) {
  xml::Document clean = CleanItems(5);
  DirtyOptions options;
  options.rules.push_back({"db", 1.0, 1, 1});
  auto result = MakeDirty(clean, options);
  EXPECT_FALSE(result.ok());
}

TEST(DirtyGenTest, EmptyDocumentRejected) {
  xml::Document empty;
  DirtyOptions options;
  EXPECT_FALSE(MakeDirty(empty, options).ok());
}

TEST(PolluteValueTest, NoPollutionWhenProbabilityZero) {
  ErrorModel errors;
  errors.field_error_probability = 0.0;
  util::Rng rng(1);
  bool polluted = true;
  EXPECT_EQ(PolluteValue("unchanged", errors, rng, &polluted), "unchanged");
  EXPECT_FALSE(polluted);
}

TEST(PolluteValueTest, EditsStayBounded) {
  ErrorModel errors;
  errors.field_error_probability = 1.0;
  errors.min_edits = 1;
  errors.max_edits = 2;
  errors.severe_probability = 0.0;
  errors.word_swap_probability = 0.0;
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    std::string out = PolluteValue("abcdefghij", errors, rng);
    // 1-2 single-char edits: length can change by at most 2.
    EXPECT_GE(out.size(), 8u);
    EXPECT_LE(out.size(), 12u);
  }
}

TEST(PolluteValueTest, SevereCorruptionChangesPrefix) {
  ErrorModel errors;
  errors.field_error_probability = 1.0;
  errors.severe_probability = 1.0;
  util::Rng rng(3);
  std::string out = PolluteValue("Matrix", errors, rng);
  EXPECT_NE(out.substr(0, 1), "M") << "severe corruption moves the key";
  EXPECT_GT(out.size(), 6u);
}

TEST(PolluteValueTest, EmptyValueSurvives) {
  ErrorModel errors;
  errors.field_error_probability = 1.0;
  errors.severe_probability = 0.0;
  util::Rng rng(4);
  // Inserts are the only applicable edit; must not crash.
  for (int i = 0; i < 50; ++i) {
    std::string out = PolluteValue("", errors, rng);
    EXPECT_LE(out.size(), 3u);
  }
}

TEST(DirtyGenTest, FieldDropRemovesOnlyLeafElements) {
  // Items have a container <wrap> with leaves inside; only leaves drop.
  auto clean = xml::Parse(R"(
<db>
  <item _gold="g0"><wrap><leaf>a</leaf><leaf>b</leaf></wrap></item>
</db>)");
  ASSERT_TRUE(clean.ok());
  DirtyOptions options;
  options.seed = 17;
  options.rules.push_back({"db/item", 1.0, 1, 1});
  options.errors.field_error_probability = 0.0;
  options.errors.field_drop_probability = 1.0;
  auto dirty = MakeDirty(clean.value(), options);
  ASSERT_TRUE(dirty.ok());
  auto wraps =
      xml::XPath::Parse("db/item/wrap").value().SelectFromRoot(dirty.value());
  ASSERT_TRUE(wraps.ok());
  EXPECT_EQ(wraps->size(), 2u) << "containers never dropped";
  auto leaves = xml::XPath::Parse("db/item/wrap/leaf")
                    .value()
                    .SelectFromRoot(dirty.value());
  ASSERT_TRUE(leaves.ok());
  EXPECT_EQ(leaves->size(), 2u) << "the copy's leaves all dropped";
}

}  // namespace
}  // namespace sxnm::datagen
