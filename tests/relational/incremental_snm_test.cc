#include "relational/incremental_snm.h"

#include <gtest/gtest.h>

#include "datagen/dirty_gen.h"
#include "datagen/vocab.h"
#include "text/edit_distance.h"
#include "util/rng.h"

namespace sxnm::relational {
namespace {

Schema NameSchema() { return Schema({"name"}); }

KeyFn FirstFieldKey() {
  return [](const Record& r) { return r.field(0); };
}

MatchFn EditMatch(double threshold) {
  return [threshold](const Record& a, const Record& b) {
    return text::NormalizedEditSimilarity(a.field(0), b.field(0)) >=
           threshold;
  };
}

SnmOptions Options(size_t window) {
  SnmOptions options;
  options.window_size = window;
  return options;
}

TEST(IncrementalSnmTest, SingleBatchFindsAdjacentDuplicates) {
  IncrementalSnm inc(NameSchema(), {FirstFieldKey()}, EditMatch(0.8),
                     Options(2));
  auto pairs = inc.AddBatch({{{"Hernandez"}},
                             {{"Hernadez"}},
                             {{"Stolfo"}},
                             {{"Naumann"}},
                             {{"Nauman"}}});
  EXPECT_EQ(pairs, (std::vector<RecordPair>{{0, 1}, {3, 4}}));
  EXPECT_EQ(inc.NumRecords(), 5u);
}

TEST(IncrementalSnmTest, CrossBatchDuplicatesFound) {
  IncrementalSnm inc(NameSchema(), {FirstFieldKey()}, EditMatch(0.8),
                     Options(2));
  auto first = inc.AddBatch({{{"Hernandez"}}, {{"Stolfo"}}});
  EXPECT_TRUE(first.empty());
  // The new packet's record is a duplicate of an old one.
  auto second = inc.AddBatch({{{"Hernadez"}}});
  EXPECT_EQ(second, (std::vector<RecordPair>{{0, 2}}));
}

TEST(IncrementalSnmTest, NewlyAcceptedOnlyReportsNewPairs) {
  IncrementalSnm inc(NameSchema(), {FirstFieldKey()}, EditMatch(0.8),
                     Options(3));
  auto first = inc.AddBatch({{{"aaaaa"}}, {{"aaaab"}}});
  EXPECT_EQ(first.size(), 1u);
  auto second = inc.AddBatch({{{"zzzz"}}});
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(inc.Snapshot().duplicate_pairs.size(), 1u);
}

TEST(IncrementalSnmTest, EmptyBatchIsNoOp) {
  IncrementalSnm inc(NameSchema(), {FirstFieldKey()}, EditMatch(0.8),
                     Options(2));
  EXPECT_TRUE(inc.AddBatch({}).empty());
  EXPECT_EQ(inc.NumRecords(), 0u);
}

TEST(IncrementalSnmTest, SnapshotClustersMatchClosure) {
  IncrementalSnm inc(NameSchema(), {FirstFieldKey()}, EditMatch(0.75),
                     Options(3));
  inc.AddBatch({{{"aaaa"}}, {{"aaab"}}});
  inc.AddBatch({{{"aabb"}}});
  SnmResult snapshot = inc.Snapshot();
  // Closure merges the chain 0~1~2.
  std::vector<size_t> biggest;
  for (const auto& c : snapshot.clusters) {
    if (c.size() > biggest.size()) biggest = c;
  }
  EXPECT_EQ(biggest, (std::vector<size_t>{0, 1, 2}));
}

// Property: incremental pairs are a superset of one-shot batch SNM pairs
// over the same final table, for any batch split.
TEST(IncrementalSnmTest, SupersetOfBatchSnm) {
  // Generate a dirty person table.
  util::Rng rng(99);
  datagen::ErrorModel errors;
  errors.field_error_probability = 0.7;
  std::vector<Record> records;
  for (int i = 0; i < 200; ++i) {
    std::string name = datagen::RandomPersonName(rng);
    records.push_back({{name}});
    if (rng.NextBool(0.3)) {
      records.push_back({{datagen::PolluteValue(name, errors, rng)}});
    }
  }

  for (size_t batch_size : {1u, 7u, 50u, 1000u}) {
    IncrementalSnm inc(NameSchema(), {FirstFieldKey()}, EditMatch(0.8),
                       Options(4));
    Table full(NameSchema());
    for (size_t start = 0; start < records.size(); start += batch_size) {
      std::vector<Record> batch(
          records.begin() + static_cast<long>(start),
          records.begin() +
              static_cast<long>(std::min(start + batch_size, records.size())));
      inc.AddBatch(batch);
    }
    for (const Record& r : records) full.AddRecord(r);

    SnmResult batch_result =
        RunSnm(full, {FirstFieldKey()}, EditMatch(0.8), Options(4));
    SnmResult inc_result = inc.Snapshot();

    for (const RecordPair& pair : batch_result.duplicate_pairs) {
      EXPECT_NE(std::find(inc_result.duplicate_pairs.begin(),
                          inc_result.duplicate_pairs.end(), pair),
                inc_result.duplicate_pairs.end())
          << "batch pair (" << pair.first << "," << pair.second
          << ") missing incrementally at batch size " << batch_size;
    }
  }
}

TEST(IncrementalSnmTest, OneBigBatchEqualsBatchSnmExactly) {
  // When everything arrives in one packet in sorted-insertion order, the
  // neighborhoods coincide with the batch window, so the accepted pairs
  // are identical (both directions).
  std::vector<Record> records = {{{"aaaa"}}, {{"aaab"}}, {{"bbbb"}},
                                 {{"bbbc"}}, {{"cccc"}}};
  IncrementalSnm inc(NameSchema(), {FirstFieldKey()}, EditMatch(0.75),
                     Options(2));
  inc.AddBatch(records);

  Table full(NameSchema());
  for (const Record& r : records) full.AddRecord(r);
  SnmResult batch =
      RunSnm(full, {FirstFieldKey()}, EditMatch(0.75), Options(2));

  EXPECT_EQ(inc.Snapshot().duplicate_pairs, batch.duplicate_pairs);
}

TEST(IncrementalSnmTest, MultiPassKeys) {
  // Key 2 catches what key 1's window misses, incrementally.
  Schema schema({"name", "city"});
  std::vector<KeyFn> keys = {
      [](const Record& r) { return r.field(0); },
      [](const Record& r) { return r.field(1); },
  };
  MatchFn match = [](const Record& a, const Record& b) {
    return text::NormalizedEditSimilarity(a.field(0), b.field(0)) >= 0.85;
  };
  IncrementalSnm inc(schema, keys, match, Options(2));
  inc.AddBatch({{{"John Smith", "Berlin"}},
                {{"Johnny A", "Munich"}},
                {{"Johnson B", "Hamburg"}},
                {{"Jolly C", "Dresden"}}});
  auto pairs = inc.AddBatch({{{"Jon Smith", "Berlin"}}});
  EXPECT_EQ(pairs, (std::vector<RecordPair>{{0, 4}}))
      << "found via the city key although the name key separates them";
}

TEST(IncrementalSnmTest, StatsAccumulate) {
  IncrementalSnm inc(NameSchema(), {FirstFieldKey()}, EditMatch(0.8),
                     Options(2));
  inc.AddBatch({{{"a"}}, {{"b"}}});
  size_t after_first = inc.Snapshot().stats.comparisons;
  inc.AddBatch({{{"c"}}});
  EXPECT_GT(inc.Snapshot().stats.comparisons, after_first);
  EXPECT_EQ(inc.Snapshot().stats.passes, 1u);
}

}  // namespace
}  // namespace sxnm::relational
