#include "relational/record.h"

#include <gtest/gtest.h>

namespace sxnm::relational {
namespace {

TEST(SchemaTest, FieldIndexLookup) {
  Schema schema({"title", "year", "length"});
  EXPECT_EQ(schema.NumFields(), 3u);
  EXPECT_EQ(schema.FieldIndex("title"), 0);
  EXPECT_EQ(schema.FieldIndex("length"), 2);
  EXPECT_EQ(schema.FieldIndex("missing"), -1);
}

TEST(SchemaTest, EmptySchema) {
  Schema schema;
  EXPECT_EQ(schema.NumFields(), 0u);
  EXPECT_EQ(schema.FieldIndex("x"), -1);
}

TEST(TableTest, AddAndAccessRecords) {
  Table table(Schema({"a", "b"}));
  EXPECT_EQ(table.NumRecords(), 0u);
  size_t i0 = table.AddRow({"1", "2"});
  size_t i1 = table.AddRow({"3", "4"});
  EXPECT_EQ(i0, 0u);
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(table.NumRecords(), 2u);
  EXPECT_EQ(table.record(0).field(0), "1");
  EXPECT_EQ(table.record(1).field(1), "4");
}

TEST(TableTest, RecordsVectorMatches) {
  Table table(Schema({"x"}));
  table.AddRow({"v"});
  ASSERT_EQ(table.records().size(), 1u);
  EXPECT_EQ(table.records()[0].fields[0], "v");
}

}  // namespace
}  // namespace sxnm::relational
