#include "relational/snm.h"

#include <gtest/gtest.h>

#include "text/edit_distance.h"

namespace sxnm::relational {
namespace {

// Table of names where records 0/1 and 3/4 are fuzzy duplicates.
Table SampleTable() {
  Table table(Schema({"name"}));
  table.AddRow({"Hernandez"});   // 0
  table.AddRow({"Hernadez"});    // 1 ~ 0
  table.AddRow({"Stolfo"});      // 2
  table.AddRow({"Naumann"});     // 3
  table.AddRow({"Nauman"});      // 4 ~ 3
  table.AddRow({"Weis"});        // 5
  return table;
}

KeyFn FirstFieldKey() {
  return [](const Record& r) { return r.field(0); };
}

MatchFn EditMatch(double threshold) {
  return [threshold](const Record& a, const Record& b) {
    return text::NormalizedEditSimilarity(a.field(0), b.field(0)) >=
           threshold;
  };
}

TEST(SnmTest, FindsAdjacentDuplicates) {
  SnmOptions options;
  options.window_size = 2;
  SnmResult result =
      RunSnm(SampleTable(), {FirstFieldKey()}, EditMatch(0.8), options);
  // Sorted by name: Hernadez, Hernandez, Nauman, Naumann, Stolfo, Weis.
  EXPECT_EQ(result.duplicate_pairs,
            (std::vector<RecordPair>{{0, 1}, {3, 4}}));
  EXPECT_EQ(result.stats.passes, 1u);
}

TEST(SnmTest, WindowTwoComparesNMinusOnePairs) {
  SnmOptions options;
  options.window_size = 2;
  SnmResult result =
      RunSnm(SampleTable(), {FirstFieldKey()}, EditMatch(0.99), options);
  EXPECT_EQ(result.stats.comparisons, 5u);
  EXPECT_TRUE(result.duplicate_pairs.empty());
}

TEST(SnmTest, LargeWindowEqualsAllPairs) {
  SnmOptions options;
  options.window_size = 100;
  SnmResult snm =
      RunSnm(SampleTable(), {FirstFieldKey()}, EditMatch(0.8), options);
  SnmResult naive = RunNaiveAllPairs(SampleTable(), EditMatch(0.8));
  EXPECT_EQ(snm.duplicate_pairs, naive.duplicate_pairs);
  EXPECT_EQ(snm.stats.comparisons, naive.stats.comparisons);
}

TEST(SnmTest, MultiPassFindsWhatSinglePassMisses) {
  // Key 1 sorts by name; key 2 sorts by the city field. The two John
  // Smiths are separated under key 1 by a run of interposed names, but
  // adjacent under key 2.
  Table table(Schema({"name", "city"}));
  table.AddRow({"John Smith", "Berlin"});   // 0
  table.AddRow({"Jon Smith", "Berlin"});    // 1 (dup of 0)
  // Lexicographically between "John Smith" and "Jon Smith":
  table.AddRow({"Johnny A", "Munich"});
  table.AddRow({"Johnson B", "Hamburg"});
  table.AddRow({"Jolly C", "Dresden"});

  MatchFn match = [](const Record& a, const Record& b) {
    return text::NormalizedEditSimilarity(a.field(0), b.field(0)) >= 0.85;
  };
  KeyFn by_name = [](const Record& r) { return r.field(0); };
  KeyFn by_city = [](const Record& r) { return r.field(1); };

  SnmOptions options;
  options.window_size = 2;
  SnmResult single = RunSnm(table, {by_name}, match, options);
  EXPECT_TRUE(single.duplicate_pairs.empty())
      << "window 2 on name key misses the pair";

  SnmResult multi = RunSnm(table, {by_name, by_city}, match, options);
  EXPECT_EQ(multi.duplicate_pairs, (std::vector<RecordPair>{{0, 1}}));
  EXPECT_EQ(multi.stats.passes, 2u);
}

TEST(SnmTest, PairsNotRecomparedAcrossPasses) {
  SnmOptions options;
  options.window_size = 3;
  // Same key twice: second pass visits identical windows; every pair must
  // be counted once.
  SnmResult once =
      RunSnm(SampleTable(), {FirstFieldKey()}, EditMatch(0.8), options);
  SnmResult twice = RunSnm(SampleTable(), {FirstFieldKey(), FirstFieldKey()},
                           EditMatch(0.8), options);
  EXPECT_EQ(once.stats.comparisons, twice.stats.comparisons);
  EXPECT_EQ(once.duplicate_pairs, twice.duplicate_pairs);
}

TEST(SnmTest, TransitiveClosureBuildsClusters) {
  Table table(Schema({"name"}));
  table.AddRow({"aaaa"});
  table.AddRow({"aaab"});  // ~ 0
  table.AddRow({"aabb"});  // ~ 1 but not ~ 0
  SnmOptions options;
  options.window_size = 3;
  SnmResult result = RunSnm(table, {FirstFieldKey()}, EditMatch(0.75),
                            options);
  // 0~1 (sim .75), 1~2 (sim .75), 0~2 (sim .5): closure merges all three.
  ASSERT_FALSE(result.clusters.empty());
  std::vector<size_t> big;
  for (const auto& c : result.clusters) {
    if (c.size() > big.size()) big = c;
  }
  EXPECT_EQ(big, (std::vector<size_t>{0, 1, 2}));
}

TEST(SnmTest, ClosureCanBeDisabled) {
  SnmOptions options;
  options.window_size = 2;
  options.transitive_closure = false;
  SnmResult result =
      RunSnm(SampleTable(), {FirstFieldKey()}, EditMatch(0.8), options);
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_FALSE(result.duplicate_pairs.empty());
}

TEST(SnmTest, EmptyTable) {
  Table table(Schema({"name"}));
  SnmOptions options;
  SnmResult result = RunSnm(table, {FirstFieldKey()}, EditMatch(0.5),
                            options);
  EXPECT_EQ(result.stats.comparisons, 0u);
  EXPECT_TRUE(result.duplicate_pairs.empty());
}

TEST(DeSnmTest, ExactKeyGroupsMergedWithoutComparison) {
  Table table(Schema({"name"}));
  table.AddRow({"same"});
  table.AddRow({"same"});
  table.AddRow({"same"});
  table.AddRow({"other"});
  SnmOptions options;
  options.window_size = 2;
  SnmResult result =
      RunDeSnm(table, {FirstFieldKey()}, EditMatch(0.99), options);
  // The three "same" records form one cluster; only representative pairs
  // are compared in the window (other vs same).
  std::vector<size_t> big;
  for (const auto& c : result.clusters) {
    if (c.size() > big.size()) big = c;
  }
  EXPECT_EQ(big, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(result.stats.comparisons, 1u)
      << "window slides over 2 distinct keys only";
}

TEST(DeSnmTest, FewerComparisonsThanSnmWithDuplicateKeys) {
  Table table(Schema({"name"}));
  for (int i = 0; i < 10; ++i) table.AddRow({"dup"});
  table.AddRow({"unique"});
  SnmOptions options;
  options.window_size = 5;
  SnmResult snm = RunSnm(table, {FirstFieldKey()}, EditMatch(0.9), options);
  SnmResult desnm =
      RunDeSnm(table, {FirstFieldKey()}, EditMatch(0.9), options);
  EXPECT_LT(desnm.stats.comparisons, snm.stats.comparisons);
  // Both find the same 10-record cluster.
  auto biggest = [](const SnmResult& r) {
    size_t best = 0;
    for (const auto& c : r.clusters) best = std::max(best, c.size());
    return best;
  };
  EXPECT_EQ(biggest(snm), 10u);
  EXPECT_EQ(biggest(desnm), 10u);
}

TEST(BlockingTest, ComparesOnlyWithinBlocks) {
  Table table(Schema({"name", "block"}));
  table.AddRow({"aaaa", "x"});
  table.AddRow({"aaab", "x"});
  table.AddRow({"aaac", "y"});  // similar but different block
  KeyFn block_key = [](const Record& r) { return r.field(1); };
  SnmResult result = RunBlocking(table, {block_key}, EditMatch(0.75));
  EXPECT_EQ(result.duplicate_pairs, (std::vector<RecordPair>{{0, 1}}));
  EXPECT_EQ(result.stats.comparisons, 1u);
}

TEST(NaiveTest, ComparesEveryPair) {
  SnmResult result = RunNaiveAllPairs(SampleTable(), EditMatch(0.8));
  EXPECT_EQ(result.stats.comparisons, 15u);  // C(6,2)
  EXPECT_EQ(result.duplicate_pairs,
            (std::vector<RecordPair>{{0, 1}, {3, 4}}));
}

TEST(WeightedFieldMatchTest, WeightsNormalized) {
  // Weights 2 and 2 act like 0.5/0.5.
  MatchFn match = MakeWeightedFieldMatch(
      {0, 1}, {2.0, 2.0},
      {text::NormalizedEditSimilarity, text::NormalizedEditSimilarity},
      /*threshold=*/0.75);
  Record a{{"same", "same"}};
  Record b{{"same", "xxxx"}};
  EXPECT_FALSE(match(a, b)) << "0.5*1 + 0.5*0 = 0.5 < 0.75";
  Record c{{"same", "samx"}};
  EXPECT_TRUE(match(a, c)) << "0.5*1 + 0.5*0.75 = 0.875";
}

TEST(WeightedFieldMatchTest, ThresholdBoundary) {
  MatchFn match = MakeWeightedFieldMatch(
      {0}, {1.0}, {text::NormalizedEditSimilarity}, /*threshold=*/0.75);
  Record a{{"abcd"}};
  Record b{{"abcx"}};
  EXPECT_TRUE(match(a, b)) << "exactly at threshold counts as duplicate";
}

TEST(SnmStatsTest, PhaseTimersPopulated) {
  SnmOptions options;
  options.window_size = 3;
  SnmResult result =
      RunSnm(SampleTable(), {FirstFieldKey()}, EditMatch(0.8), options);
  auto phases = result.stats.timer.Phases();
  std::vector<std::string> names;
  for (const auto& [name, secs] : phases) {
    names.push_back(name);
    EXPECT_GE(secs, 0.0);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "key_generation"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sort"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "window"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "closure"), names.end());
}

}  // namespace
}  // namespace sxnm::relational
