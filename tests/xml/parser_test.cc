#include "xml/parser.h"

#include <gtest/gtest.h>

#include "xml/writer.h"

namespace sxnm::xml {
namespace {

TEST(ParserTest, MinimalDocument) {
  auto doc = Parse("<root/>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_NE(doc->root(), nullptr);
  EXPECT_EQ(doc->root()->name(), "root");
  EXPECT_EQ(doc->root()->NumChildren(), 0u);
}

TEST(ParserTest, NestedElementsAndText) {
  auto doc = Parse("<a><b>hello</b><c><d>deep</d></c></a>");
  ASSERT_TRUE(doc.ok());
  const Element* root = doc->root();
  EXPECT_EQ(root->ChildElements().size(), 2u);
  EXPECT_EQ(root->FirstChildElement("b")->DirectText(), "hello");
  EXPECT_EQ(root->FirstChildElement("c")->FirstChildElement("d")->DirectText(),
            "deep");
}

TEST(ParserTest, AttributesBothQuoteStyles) {
  auto doc = Parse(R"(<m year="1999" length='136'/>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->AttributeOr("year", ""), "1999");
  EXPECT_EQ(doc->root()->AttributeOr("length", ""), "136");
}

TEST(ParserTest, XmlDeclarationCaptured) {
  auto doc = Parse("<?xml version=\"1.1\" encoding=\"ISO-8859-1\"?><r/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->version(), "1.1");
  EXPECT_EQ(doc->encoding(), "ISO-8859-1");
}

TEST(ParserTest, PredefinedEntities) {
  auto doc = Parse("<t>a &amp; b &lt;c&gt; &quot;d&quot; &apos;e&apos;</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->DirectText(), "a & b <c> \"d\" 'e'");
}

TEST(ParserTest, NumericCharacterReferences) {
  auto doc = Parse("<t>&#65;&#x42;&#x2713;</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->DirectText(), "AB✓");
}

TEST(ParserTest, EntitiesInAttributes) {
  auto doc = Parse(R"(<t a="x &amp; y"/>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->AttributeOr("a", ""), "x & y");
}

TEST(ParserTest, CdataSection) {
  auto doc = Parse("<t><![CDATA[<not> & parsed]]></t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->DirectText(), "<not> & parsed");
  ASSERT_EQ(doc->root()->NumChildren(), 1u);
  EXPECT_EQ(doc->root()->children()[0]->kind(), NodeKind::kCdata);
}

TEST(ParserTest, CommentsSkippedByDefault) {
  auto doc = Parse("<t><!-- ignore -->kept</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->NumChildren(), 1u);
  EXPECT_EQ(doc->root()->DirectText(), "kept");
}

TEST(ParserTest, CommentsKeptWhenRequested) {
  ParseOptions options;
  options.keep_comments = true;
  auto doc = Parse("<t><!-- note --></t>", options);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root()->NumChildren(), 1u);
  EXPECT_EQ(doc->root()->children()[0]->kind(), NodeKind::kComment);
}

TEST(ParserTest, WhitespaceTextSkippedByDefault) {
  auto doc = Parse("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->NumChildren(), 2u);
}

TEST(ParserTest, WhitespaceTextKeptWhenRequested) {
  ParseOptions options;
  options.skip_whitespace_text = false;
  auto doc = Parse("<a> <b/> </a>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->NumChildren(), 3u);
}

TEST(ParserTest, ProcessingInstructionsSkipped) {
  auto doc = Parse("<?pi data?><t><?inner pi?>x</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->DirectText(), "x");
}

TEST(ParserTest, DoctypeSkipped) {
  auto doc = Parse(
      "<!DOCTYPE movie_database [ <!ELEMENT movie (title)> ]><r/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->name(), "r");
}

TEST(ParserTest, ElementIdsAssignedAfterParse) {
  auto doc = Parse("<a><b/><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->element_count(), 4u);
  EXPECT_EQ(doc->ElementById(0)->name(), "a");
  EXPECT_EQ(doc->ElementById(1)->name(), "b");
  EXPECT_EQ(doc->ElementById(2)->name(), "c");
  EXPECT_EQ(doc->ElementById(3)->name(), "d");
}

TEST(ParserTest, Utf8PassThrough) {
  auto doc = Parse("<t>\xE3\x82\xAB\xE3\x83\xA9</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->DirectText(), "\xE3\x82\xAB\xE3\x83\xA9");
}

// --- Error reporting -------------------------------------------------------

struct BadInput {
  const char* name;
  const char* input;
};

class ParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParserErrorTest, RejectsMalformedInput) {
  auto doc = Parse(GetParam().input);
  EXPECT_FALSE(doc.ok()) << GetParam().name;
  EXPECT_EQ(doc.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("line"), std::string::npos)
      << "error should carry a position: " << doc.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserErrorTest,
    ::testing::Values(
        BadInput{"empty", ""}, BadInput{"only_space", "   "},
        BadInput{"unclosed_root", "<a>"},
        BadInput{"mismatched_tags", "<a><b></a></b>"},
        BadInput{"wrong_end_tag", "<a></b>"},
        BadInput{"content_after_root", "<a/><b/>"},
        BadInput{"text_at_top_level", "<a/>junk"},
        BadInput{"double_root_text", "hello<a/>"},
        BadInput{"unterminated_start_tag", "<a foo"},
        BadInput{"attr_missing_value", "<a foo></a>"},
        BadInput{"attr_unquoted", "<a foo=bar></a>"},
        BadInput{"attr_unterminated", "<a foo=\"bar></a>"},
        BadInput{"duplicate_attribute", "<a x=\"1\" x=\"2\"/>"},
        BadInput{"lt_in_attribute", "<a x=\"a<b\"/>"},
        BadInput{"unknown_entity", "<a>&unknown;</a>"},
        BadInput{"unterminated_entity", "<a>&amp</a>"},
        BadInput{"bad_char_ref", "<a>&#xZZ;</a>"},
        BadInput{"char_ref_out_of_range", "<a>&#x110000;</a>"},
        BadInput{"unterminated_comment", "<a><!-- x</a>"},
        BadInput{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadInput{"bare_ampersand_eof", "<a>&"},
        BadInput{"empty_element_name", "<>x</>"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

TEST(ParserTest, ErrorPositionPointsAtProblem) {
  auto doc = Parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status().ToString();
}

TEST(ParseFileTest, MissingFileIsNotFound) {
  auto doc = ParseFile("/nonexistent/path/file.xml");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), util::StatusCode::kNotFound);
}

TEST(ParseFileTest, RoundTripThroughDisk) {
  std::string path = ::testing::TempDir() + "/sxnm_parser_test.xml";
  auto original = Parse("<catalog><item id=\"1\">X &amp; Y</item></catalog>");
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(WriteDocumentToFile(original.value(), path));
  auto reread = ParseFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(reread->root()->FirstChildElement("item")->DirectText(), "X & Y");
}

}  // namespace
}  // namespace sxnm::xml
