#include "xml/writer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace sxnm::xml {
namespace {

TEST(EscapeTest, TextEscaping) {
  EXPECT_EQ(EscapeText("a & b < c > d"), "a &amp; b &lt; c &gt; d");
  EXPECT_EQ(EscapeText("\"quotes\" stay"), "\"quotes\" stay");
  EXPECT_EQ(EscapeText(""), "");
}

TEST(EscapeTest, AttributeEscaping) {
  EXPECT_EQ(EscapeAttribute("a \"b\" & c"), "a &quot;b&quot; &amp; c");
}

TEST(WriterTest, CompactSingleLine) {
  auto doc = Parse("<a><b>x</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  WriteOptions options;
  options.indent = 0;
  options.declaration = false;
  EXPECT_EQ(WriteDocument(doc.value(), options), "<a><b>x</b><c/></a>");
}

TEST(WriterTest, PrettyPrintIndents) {
  auto doc = Parse("<a><b>x</b></a>");
  ASSERT_TRUE(doc.ok());
  WriteOptions options;
  options.declaration = false;
  std::string out = WriteDocument(doc.value(), options);
  EXPECT_NE(out.find("<a>\n  <b>x</b>\n</a>"), std::string::npos) << out;
}

TEST(WriterTest, DeclarationEmittedWithDefaults) {
  auto doc = Parse("<r/>");
  ASSERT_TRUE(doc.ok());
  std::string out = WriteDocument(doc.value());
  EXPECT_NE(out.find("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"),
            std::string::npos);
}

TEST(WriterTest, DeclarationPreservesParsedValues) {
  auto doc = Parse("<?xml version=\"1.1\" encoding=\"latin1\"?><r/>");
  ASSERT_TRUE(doc.ok());
  std::string out = WriteDocument(doc.value());
  EXPECT_NE(out.find("version=\"1.1\""), std::string::npos);
  EXPECT_NE(out.find("encoding=\"latin1\""), std::string::npos);
}

TEST(WriterTest, AttributesQuotedAndEscaped) {
  Document doc;
  auto root = std::make_unique<Element>("r");
  root->SetAttribute("a", "x \"y\" & z");
  doc.SetRoot(std::move(root));
  WriteOptions options;
  options.indent = 0;
  options.declaration = false;
  EXPECT_EQ(WriteDocument(doc, options),
            "<r a=\"x &quot;y&quot; &amp; z\"/>");
}

TEST(WriterTest, CdataPreserved) {
  auto doc = Parse("<t><![CDATA[a < b]]></t>");
  ASSERT_TRUE(doc.ok());
  WriteOptions options;
  options.indent = 0;
  options.declaration = false;
  EXPECT_EQ(WriteDocument(doc.value(), options),
            "<t><![CDATA[a < b]]></t>");
}

TEST(WriterTest, CommentsPreservedWhenKept) {
  ParseOptions parse_options;
  parse_options.keep_comments = true;
  auto doc = Parse("<t><!-- note --></t>", parse_options);
  ASSERT_TRUE(doc.ok());
  WriteOptions options;
  options.indent = 0;
  options.declaration = false;
  EXPECT_EQ(WriteDocument(doc.value(), options), "<t><!-- note --></t>");
}

TEST(WriterTest, WriteElementSubtree) {
  auto doc = Parse("<a><b attr=\"1\">x</b></a>");
  ASSERT_TRUE(doc.ok());
  const Element* b = doc->root()->FirstChildElement("b");
  EXPECT_EQ(WriteElement(*b, {.indent = 0, .declaration = false}),
            "<b attr=\"1\">x</b>");
}

// Property: parse(write(parse(x))) produces the same serialization as
// parse(x) for a corpus of documents.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, WriteParseWriteIsStable) {
  auto doc1 = Parse(GetParam());
  ASSERT_TRUE(doc1.ok()) << doc1.status().ToString();
  std::string first = WriteDocument(doc1.value());
  auto doc2 = Parse(first);
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString();
  std::string second = WriteDocument(doc2.value());
  EXPECT_EQ(first, second);
  EXPECT_EQ(doc1->element_count(), doc2->element_count());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "<r/>", "<r a=\"1\" b=\"2\"/>", "<r>text</r>",
        "<a><b><c><d>deep</d></c></b></a>",
        "<m year=\"1999\"><title>The &amp; Matrix</title></m>",
        "<t>mixed <b>inline</b> content</t>",
        "<t><![CDATA[<raw>]]></t>",
        "<movies><movie><title>A</title></movie>"
        "<movie><title>B</title></movie></movies>",
        "<u>\xC3\xBC\xE3\x82\xAB</u>"));

TEST(WriterTest, MixedContentKeptInline) {
  auto doc = Parse("<p>before <em>x</em> after</p>");
  ASSERT_TRUE(doc.ok());
  std::string out =
      WriteDocument(doc.value(), {.indent = 0, .declaration = false});
  EXPECT_EQ(out, "<p>before <em>x</em> after</p>");
}

TEST(WriterFileTest, FailsOnUnwritablePath) {
  Document doc;
  doc.SetRoot(std::make_unique<Element>("r"));
  EXPECT_FALSE(WriteDocumentToFile(doc, "/nonexistent_dir/x.xml"));
}

}  // namespace
}  // namespace sxnm::xml
