#include "xml/node.h"

#include <gtest/gtest.h>

namespace sxnm::xml {
namespace {

std::unique_ptr<Element> BuildMovie() {
  auto movie = std::make_unique<Element>("movie");
  movie->SetAttribute("year", "1999");
  Element* title = movie->AddElement("title");
  title->AddText("The ");
  title->AddText(" Matrix");
  Element* people = movie->AddElement("people");
  Element* person = people->AddElement("person");
  person->AddElement("lastname")->AddText("Reeves");
  return movie;
}

TEST(ElementTest, NameAndKind) {
  Element e("movie");
  EXPECT_EQ(e.name(), "movie");
  EXPECT_TRUE(e.IsElement());
  EXPECT_FALSE(e.IsText());
  EXPECT_EQ(e.AsElement(), &e);
}

TEST(ElementTest, AttributesSetGetRemove) {
  Element e("m");
  EXPECT_FALSE(e.HasAttribute("year"));
  EXPECT_EQ(e.FindAttribute("year"), nullptr);
  e.SetAttribute("year", "1999");
  ASSERT_TRUE(e.HasAttribute("year"));
  EXPECT_EQ(*e.FindAttribute("year"), "1999");
  e.SetAttribute("year", "2000");  // overwrite
  EXPECT_EQ(*e.FindAttribute("year"), "2000");
  EXPECT_EQ(e.attributes().size(), 1u);
  EXPECT_EQ(e.AttributeOr("year", "x"), "2000");
  EXPECT_EQ(e.AttributeOr("missing", "x"), "x");
  EXPECT_TRUE(e.RemoveAttribute("year"));
  EXPECT_FALSE(e.RemoveAttribute("year"));
  EXPECT_FALSE(e.HasAttribute("year"));
}

TEST(ElementTest, ChildrenAndParentLinks) {
  auto movie = BuildMovie();
  EXPECT_EQ(movie->NumChildren(), 2u);
  Element* title = movie->FirstChildElement("title");
  ASSERT_NE(title, nullptr);
  EXPECT_EQ(title->parent(), movie.get());
  EXPECT_EQ(movie->FirstChildElement("nonexistent"), nullptr);
}

TEST(ElementTest, ChildElementsFilterByName) {
  Element e("root");
  e.AddElement("a");
  e.AddText("text in between");
  e.AddElement("b");
  e.AddElement("a");
  EXPECT_EQ(e.ChildElements().size(), 3u);
  EXPECT_EQ(e.ChildElements("a").size(), 2u);
  EXPECT_EQ(e.ChildElements("b").size(), 1u);
  EXPECT_TRUE(e.ChildElements("c").empty());
}

TEST(ElementTest, DirectAndDeepText) {
  auto movie = BuildMovie();
  Element* title = movie->FirstChildElement("title");
  EXPECT_EQ(title->DirectText(), "The Matrix");
  EXPECT_EQ(movie->DirectText(), "") << "movie has no direct text children";
  EXPECT_EQ(movie->DeepText(), "The Matrix Reeves");
}

TEST(ElementTest, RemoveChild) {
  auto movie = BuildMovie();
  movie->RemoveChild(0);  // drop <title>
  EXPECT_EQ(movie->NumChildren(), 1u);
  EXPECT_EQ(movie->FirstChildElement("title"), nullptr);
}

TEST(ElementTest, TakeChildDetaches) {
  auto movie = BuildMovie();
  std::unique_ptr<Node> taken = movie->TakeChild(0);
  EXPECT_EQ(movie->NumChildren(), 1u);
  ASSERT_TRUE(taken->IsElement());
  EXPECT_EQ(taken->parent(), nullptr);
  EXPECT_EQ(taken->AsElement()->name(), "title");
}

TEST(ElementTest, CloneIsDeepAndIndependent) {
  auto movie = BuildMovie();
  auto copy = movie->Clone();
  EXPECT_EQ(copy->name(), "movie");
  EXPECT_EQ(copy->AttributeOr("year", ""), "1999");
  EXPECT_EQ(copy->DeepText(), movie->DeepText());
  // Mutating the copy leaves the original intact.
  copy->FirstChildElement("title")->AddText(" Reloaded");
  EXPECT_NE(copy->DeepText(), movie->DeepText());
  EXPECT_EQ(copy->id(), kInvalidElementId) << "clone resets IDs";
}

TEST(ElementTest, SubtreeElementCount) {
  auto movie = BuildMovie();
  // movie, title, people, person, lastname
  EXPECT_EQ(movie->SubtreeElementCount(), 5u);
  EXPECT_EQ(Element("leaf").SubtreeElementCount(), 1u);
}

TEST(DocumentTest, AssignElementIdsInDocumentOrder) {
  Document doc;
  doc.SetRoot(BuildMovie());
  EXPECT_EQ(doc.element_count(), 5u);
  EXPECT_EQ(doc.root()->id(), 0);
  EXPECT_EQ(doc.ElementById(0), doc.root());
  // Pre-order: movie(0), title(1), people(2), person(3), lastname(4).
  EXPECT_EQ(doc.ElementById(1)->name(), "title");
  EXPECT_EQ(doc.ElementById(2)->name(), "people");
  EXPECT_EQ(doc.ElementById(3)->name(), "person");
  EXPECT_EQ(doc.ElementById(4)->name(), "lastname");
  EXPECT_EQ(doc.ElementById(5), nullptr);
  EXPECT_EQ(doc.ElementById(-1), nullptr);
}

TEST(DocumentTest, ReassignAfterMutation) {
  Document doc;
  doc.SetRoot(BuildMovie());
  doc.root()->AddElement("extra");
  EXPECT_EQ(doc.element_count(), 5u) << "stale until reassignment";
  doc.AssignElementIds();
  EXPECT_EQ(doc.element_count(), 6u);
}

TEST(DocumentTest, CloneCopiesStructureAndIds) {
  Document doc;
  doc.SetRoot(BuildMovie());
  Document copy = doc.Clone();
  EXPECT_EQ(copy.element_count(), doc.element_count());
  EXPECT_EQ(copy.ElementById(1)->name(), "title");
  EXPECT_NE(copy.root(), doc.root());
}

TEST(DocumentTest, EmptyDocument) {
  Document doc;
  EXPECT_EQ(doc.root(), nullptr);
  EXPECT_EQ(doc.AssignElementIds(), 0u);
  EXPECT_EQ(doc.element_count(), 0u);
}

TEST(TextNodeTest, TextAndCdataKinds) {
  TextNode text("hello");
  EXPECT_EQ(text.kind(), NodeKind::kText);
  EXPECT_TRUE(text.IsText());
  EXPECT_EQ(text.AsElement(), nullptr);
  TextNode cdata("raw <stuff>", /*cdata=*/true);
  EXPECT_EQ(cdata.kind(), NodeKind::kCdata);
  EXPECT_TRUE(cdata.IsText());
  EXPECT_EQ(cdata.text(), "raw <stuff>");
}

TEST(CommentNodeTest, Kind) {
  CommentNode c(" note ");
  EXPECT_EQ(c.kind(), NodeKind::kComment);
  EXPECT_FALSE(c.IsText());
  EXPECT_EQ(c.text(), " note ");
}

}  // namespace
}  // namespace sxnm::xml
