// Hostile-input hardening of the XML front end: hard ParseOptions limits
// (depth / bytes / nodes / attributes / diagnostics), the recovering
// parse mode that skips malformed subtrees, and the exact StatusCode +
// line/column contract of parser and XPath error paths.

#include <string>

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/xpath.h"

namespace sxnm::xml {
namespace {

using util::StatusCode;

std::string Nested(size_t depth) {
  std::string out;
  out.reserve(depth * 7 + 8);
  for (size_t i = 0; i < depth; ++i) out += "<d>";
  out += "x";
  for (size_t i = 0; i < depth; ++i) out += "</d>";
  return out;
}

// ---------------------------------------------------------------------------
// Hard limits.

TEST(ParserLimitsTest, TenThousandDeepNestingParsesWithoutStackOverflow) {
  // Exactly at the default max_depth: must parse (iteratively — the
  // machine stack never sees the nesting) and tear down iteratively too.
  auto doc = Parse(Nested(10'000));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const Element* e = doc->root();
  size_t depth = 0;
  while (e != nullptr) {
    ++depth;
    e = e->children().empty() ? nullptr : e->children()[0]->AsElement();
  }
  EXPECT_EQ(depth, 10'000u);
}

TEST(ParserLimitsTest, BeyondMaxDepthIsResourceExhausted) {
  auto doc = Parse(Nested(10'001));
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(doc.status().message().find("max_depth=10000"),
            std::string::npos);
  EXPECT_NE(doc.status().message().find("line "), std::string::npos);
}

TEST(ParserLimitsTest, DepthLimitIsHardEvenInRecoverMode) {
  ParseOptions options;
  options.max_depth = 8;
  auto recovered = ParseRecovering(Nested(50), options);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParserLimitsTest, MultiMegabyteTextNodeParses) {
  std::string huge(4u << 20, 'a');  // 4 MiB of text content
  auto doc = Parse("<r>" + huge + "</r>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->root()->children().size(), 1u);
  const Node* child = doc->root()->children()[0].get();
  ASSERT_TRUE(child->IsText());
  EXPECT_EQ(static_cast<const TextNode*>(child)->text().size(), 4u << 20);
}

TEST(ParserLimitsTest, MaxInputBytesRejectsOversizedDocument) {
  ParseOptions options;
  options.max_input_bytes = 64;
  std::string input = "<r>" + std::string(100, 'x') + "</r>";
  auto doc = Parse(input, options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(doc.status().message().find("max_input_bytes=64"),
            std::string::npos);
}

TEST(ParserLimitsTest, MaxNodesCountsElementsAndText) {
  ParseOptions options;
  options.max_nodes = 5;
  auto ok = Parse("<r><a/><b/></r>", options);  // 3 elements + 0 text
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  auto too_many = Parse("<r><a>t</a><b>t</b><c>t</c></r>", options);
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(too_many.status().message().find("max_nodes=5"),
            std::string::npos);
}

TEST(ParserLimitsTest, MaxAttrCountRejectsAttributeBombs) {
  ParseOptions options;
  options.max_attr_count = 3;
  auto ok = Parse(R"(<r a="1" b="2" c="3"/>)", options);
  EXPECT_TRUE(ok.ok());
  auto bomb = Parse(R"(<r a="1" b="2" c="3" d="4"/>)", options);
  ASSERT_FALSE(bomb.ok());
  EXPECT_EQ(bomb.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(bomb.status().message().find("max_attr_count=3"),
            std::string::npos);
}

TEST(ParserLimitsTest, MaxDiagnosticsCapsRecovery) {
  ParseOptions options;
  options.max_diagnostics = 2;
  std::string input = "<db>";
  for (int i = 0; i < 10; ++i) input += "<rec><bad</rec>";
  input += "</db>";
  auto recovered = ParseRecovering(input, options);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(recovered.status().message().find("max_diagnostics=2"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Recovering parse.

TEST(RecoveringParseTest, CleanInputHasNoDiagnostics) {
  auto recovered = ParseRecovering("<r><a>x</a></r>");
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->clean());
  EXPECT_EQ(recovered->doc.root()->name(), "r");
}

TEST(RecoveringParseTest, SkipsMalformedSubtreeAndResynchronizes) {
  // Record 2 contains a malformed child tag; strict parsing fails, while
  // recovery skips the broken <t> subtree, resynchronizes, and keeps the
  // sibling records (and record 2's shell) intact.
  constexpr const char* kInput =
      "<db>\n"
      "  <rec id=\"1\"><t>ok</t></rec>\n"
      "  <rec id=\"2\"><t id=broken>x</t></rec>\n"
      "  <rec id=\"3\"><t>ok</t></rec>\n"
      "</db>\n";
  ASSERT_FALSE(Parse(kInput).ok());

  auto recovered = ParseRecovering(kInput);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->clean());
  size_t recs = 0;
  for (const auto& child : recovered->doc.root()->children()) {
    if (const Element* e = child->AsElement(); e && e->name() == "rec") {
      ++recs;
      const std::string* id = e->FindAttribute("id");
      ASSERT_NE(id, nullptr);
      if (*id == "2") {
        EXPECT_TRUE(e->children().empty());  // broken subtree skipped
      } else {
        EXPECT_EQ(e->children().size(), 1u);  // intact records untouched
      }
    }
  }
  EXPECT_EQ(recs, 3u);
}

TEST(RecoveringParseTest, MismatchedEndTagImplicitlyCloses) {
  // A missing </t> is repaired by implicit close at </rec> — the record
  // survives with its content and the problem is reported.
  auto recovered = ParseRecovering(
      "<db><rec id=\"1\"><t>kept</rec><rec id=\"2\"><t>ok</t></rec></db>");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->diagnostics.size(), 1u);
  EXPECT_NE(recovered->diagnostics[0].message.find("implicitly closed"),
            std::string::npos);
  EXPECT_EQ(recovered->doc.root()->children().size(), 2u);
}

TEST(RecoveringParseTest, DiagnosticsCarryLineAndColumn) {
  auto recovered = ParseRecovering("<db>\n  <rec><bad</rec>\n  <ok/>\n</db>");
  ASSERT_TRUE(recovered.ok());
  ASSERT_FALSE(recovered->diagnostics.empty());
  const Diagnostic& diag = recovered->diagnostics[0];
  EXPECT_EQ(diag.line, 2u);
  EXPECT_GT(diag.column, 0u);
  EXPECT_EQ(diag.code, StatusCode::kParseError);
  EXPECT_NE(diag.ToString().find("line 2, column "), std::string::npos);
  EXPECT_NE(diag.ToString().find("PARSE_ERROR"), std::string::npos);
}

TEST(RecoveringParseTest, StrayEndTagIgnoredWithDiagnostic) {
  auto recovered = ParseRecovering("<r><a/></b></r>");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->diagnostics.size(), 1u);
  EXPECT_EQ(recovered->doc.root()->children().size(), 1u);
}

TEST(RecoveringParseTest, StrictFailuresStillFailWhenNothingSalvageable) {
  auto recovered = ParseRecovering("");
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Exact error contract: parser.

TEST(ParserErrorContractTest, StrictErrorsCarryCodeAndPosition) {
  auto doc = Parse("<r>\n  <a></b>\n</r>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("mismatched end tag"),
            std::string::npos);
  EXPECT_NE(doc.status().message().find("at line 2, column "),
            std::string::npos);
}

TEST(ParserErrorContractTest, UnknownEntityNamedWithPosition) {
  auto doc = Parse("<r>&nosuch;</r>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("&nosuch;"), std::string::npos);
  EXPECT_NE(doc.status().message().find("at line 1, column "),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Exact error contract: XPath.

TEST(XPathErrorContractTest, MalformedPathsAreInvalidArgument) {
  for (const char* bad : {"", "a//", "a[", "a[x]", "a[0]", "@", "a/@/b"}) {
    auto parsed = XPath::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: '" << bad << "'";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << "path '" << bad << "': " << parsed.status().ToString();
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

TEST(XPathErrorContractTest, ErrorMessageNamesTheOffendingPath) {
  auto parsed = XPath::Parse("title/text()/more");
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace sxnm::xml
