// Property test: for randomly generated documents of varied shapes,
// serialize -> parse -> serialize reaches a fixpoint, structure is
// preserved, and XPath evaluation agrees before and after the round trip.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "util/rng.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xml/xpath.h"

namespace sxnm::xml {
namespace {

// Grows a random tree: random names, attributes (with escapable
// characters), text (with entities-requiring content), varying fan-out.
void GrowRandom(Element* element, util::Rng& rng, int depth) {
  static constexpr const char* kNames[] = {"alpha", "beta", "gamma",
                                           "delta", "item",  "node"};
  static constexpr const char* kTexts[] = {
      "plain text",       "with & ampersand", "less < than",
      "greater > than",   "quo\"tes and 'apostrophes'",
      "unicode \xC3\xA9\xE3\x82\xAB", "  spaced  out  "};

  int attrs = rng.NextInt(0, 3);
  for (int a = 0; a < attrs; ++a) {
    element->SetAttribute(std::string("attr") + std::to_string(a),
                          kTexts[rng.NextBelow(std::size(kTexts))]);
  }
  if (depth <= 0) {
    if (rng.NextBool(0.7)) {
      element->AddText(kTexts[rng.NextBelow(std::size(kTexts))]);
    }
    return;
  }
  int children = rng.NextInt(0, 4);
  if (children == 0 && rng.NextBool(0.5)) {
    element->AddText(kTexts[rng.NextBelow(std::size(kTexts))]);
  }
  for (int c = 0; c < children; ++c) {
    Element* child =
        element->AddElement(kNames[rng.NextBelow(std::size(kNames))]);
    GrowRandom(child, rng, depth - 1);
  }
}

Document RandomDocument(uint64_t seed) {
  util::Rng rng(seed);
  auto root = std::make_unique<Element>("root");
  GrowRandom(root.get(), rng, 4);
  Document doc;
  doc.SetRoot(std::move(root));
  return doc;
}

class RoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripProperty, SerializeParseFixpoint) {
  Document original = RandomDocument(GetParam());
  std::string first = WriteDocument(original);
  auto parsed = Parse(first);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << first;
  std::string second = WriteDocument(parsed.value());
  EXPECT_EQ(first, second);
  EXPECT_EQ(parsed->element_count(), original.element_count());
}

TEST_P(RoundTripProperty, CompactAndPrettyAgreeStructurally) {
  Document original = RandomDocument(GetParam());
  WriteOptions compact;
  compact.indent = 0;
  auto from_compact = Parse(WriteDocument(original, compact));
  auto from_pretty = Parse(WriteDocument(original));
  ASSERT_TRUE(from_compact.ok());
  ASSERT_TRUE(from_pretty.ok());
  EXPECT_EQ(from_compact->element_count(), from_pretty->element_count());
  // Deep text agrees modulo whitespace normalization.
  EXPECT_EQ(from_compact->root()->DeepText(),
            from_pretty->root()->DeepText());
}

TEST_P(RoundTripProperty, XPathResultsSurviveRoundTrip) {
  Document original = RandomDocument(GetParam());
  auto parsed = Parse(WriteDocument(original));
  ASSERT_TRUE(parsed.ok());
  for (const char* path : {"//item", "//alpha", "root/*", "//node/@attr0"}) {
    auto xp = XPath::Parse(path);
    ASSERT_TRUE(xp.ok()) << path;
    if (xp->SelectsValue()) continue;
    auto before = xp->SelectFromRoot(original);
    auto after = xp->SelectFromRoot(parsed.value());
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(before->size(), after->size()) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace sxnm::xml
