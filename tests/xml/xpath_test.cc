#include "xml/xpath.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace sxnm::xml {
namespace {

// The paper's Fig. 2(a) movie, extended with a second person and tracks.
constexpr const char* kDoc = R"(
<movie_database>
  <movies>
    <movie year="1999" ID="m1">
      <title>Matrix</title>
      <people>
        <person>Keanu Reeves</person>
        <person>Laurence Fishburne</person>
      </people>
    </movie>
    <movie year="1998" ID="m2">
      <title>Mask of Zorro</title>
      <title>Zorro</title>
      <people>
        <person>Antonio Banderas</person>
      </people>
    </movie>
  </movies>
</movie_database>
)";

class XPathFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parsed = Parse(kDoc);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    doc_ = std::move(parsed).value();
  }

  const Element& Movie(int index) {
    auto movies = XPath::Parse("movie_database/movies/movie")
                      .value()
                      .SelectFromRoot(doc_)
                      .value();
    return *movies[size_t(index)];
  }

  Document doc_;
};

TEST_F(XPathFixture, ParseAndToStringRoundTrip) {
  for (const char* p :
       {"title/text()", "@year", "people/person[1]/text()",
        "movie_database/movies/movie", "a/b/c", "tracks/title",
        "//person", "a//b/text()", "*", "a/*/c[2]"}) {
    auto parsed = XPath::Parse(p);
    ASSERT_TRUE(parsed.ok()) << p << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->ToString(), p);
  }
}

TEST_F(XPathFixture, LeadingSlashNormalized) {
  auto parsed = XPath::Parse("/a/b");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), "a/b");
}

TEST_F(XPathFixture, ParseErrors) {
  for (const char* p :
       {"", "  ", "a//", "a/", "/", "@", "a/@x/b", "a/text()/b", "a[0]",
        "a[-1]", "a[x]", "a[1", "//@attr", "//text()", "a/@x[1]",
        "count(a)", "a//"}) {
    auto parsed = XPath::Parse(p);
    EXPECT_FALSE(parsed.ok()) << "should reject: '" << p << "'";
  }
}

TEST_F(XPathFixture, SelectsValueDetection) {
  EXPECT_TRUE(XPath::Parse("title/text()")->SelectsValue());
  EXPECT_TRUE(XPath::Parse("@year")->SelectsValue());
  EXPECT_FALSE(XPath::Parse("title")->SelectsValue());
}

TEST_F(XPathFixture, AbsolutePathFromRoot) {
  auto path = XPath::Parse("movie_database/movies/movie").value();
  auto movies = path.SelectFromRoot(doc_);
  ASSERT_TRUE(movies.ok());
  ASSERT_EQ(movies->size(), 2u);
  EXPECT_EQ((*movies)[0]->AttributeOr("ID", ""), "m1");
  EXPECT_EQ((*movies)[1]->AttributeOr("ID", ""), "m2");
}

TEST_F(XPathFixture, AbsolutePathRootMismatch) {
  auto path = XPath::Parse("wrong_root/movies/movie").value();
  auto movies = path.SelectFromRoot(doc_);
  ASSERT_TRUE(movies.ok());
  EXPECT_TRUE(movies->empty());
}

TEST_F(XPathFixture, RelativeTextSelection) {
  auto path = XPath::Parse("title/text()").value();
  EXPECT_EQ(path.SelectFirstValue(Movie(0)), "Matrix");
  auto values = path.SelectValues(Movie(1));
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], "Mask of Zorro");
  EXPECT_EQ(values[1], "Zorro");
}

TEST_F(XPathFixture, AttributeSelection) {
  auto path = XPath::Parse("@year").value();
  EXPECT_EQ(path.SelectFirstValue(Movie(0)), "1999");
  EXPECT_EQ(path.SelectFirstValue(Movie(1)), "1998");
}

TEST_F(XPathFixture, MissingAttributeYieldsNothing) {
  auto path = XPath::Parse("@missing").value();
  EXPECT_TRUE(path.SelectValues(Movie(0)).empty());
  EXPECT_EQ(path.SelectFirstValue(Movie(0)), "");
}

TEST_F(XPathFixture, PositionalPredicate) {
  auto path = XPath::Parse("people/person[1]/text()").value();
  EXPECT_EQ(path.SelectFirstValue(Movie(0)), "Keanu Reeves");
  auto second = XPath::Parse("people/person[2]/text()").value();
  EXPECT_EQ(second.SelectFirstValue(Movie(0)), "Laurence Fishburne");
  EXPECT_EQ(second.SelectFirstValue(Movie(1)), "")
      << "movie 2 has only one person";
}

TEST_F(XPathFixture, ElementStepYieldsDeepText) {
  // A path ending in an element selects the element's deep text, the
  // shorthand used in Tab. 3 configurations.
  auto path = XPath::Parse("people").value();
  EXPECT_EQ(path.SelectFirstValue(Movie(0)),
            "Keanu Reeves Laurence Fishburne");
}

TEST_F(XPathFixture, WildcardStep) {
  auto path = XPath::Parse("*").value();
  auto children = path.SelectElements(Movie(0));
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children->size(), 2u);  // title, people
}

TEST_F(XPathFixture, DescendantAxis) {
  auto path = XPath::Parse("//person").value();
  auto from_root = path.SelectFromRoot(doc_);
  ASSERT_TRUE(from_root.ok());
  EXPECT_EQ(from_root->size(), 3u);

  auto relative = path.SelectElements(Movie(0));
  ASSERT_TRUE(relative.ok());
  EXPECT_EQ(relative->size(), 2u);
}

TEST_F(XPathFixture, DescendantAxisMidPath) {
  auto path = XPath::Parse("movies//person").value();
  auto result = path.SelectFromRoot(doc_);
  // First step 'movies' does not match root 'movie_database'.
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());

  auto path2 = XPath::Parse("movie_database//person").value();
  auto result2 = path2.SelectFromRoot(doc_);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->size(), 3u);
}

TEST_F(XPathFixture, SelectElementsRejectsValuePaths) {
  auto path = XPath::Parse("title/text()").value();
  auto result = path.SelectElements(Movie(0));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(XPathFixture, SelectFromRootRejectsValuePaths) {
  auto path = XPath::Parse("movie_database/@x").value();
  EXPECT_FALSE(path.SelectFromRoot(doc_).ok());
}

TEST_F(XPathFixture, DocumentOrderPreserved) {
  auto path = XPath::Parse("//title").value();
  auto titles = path.SelectFromRoot(doc_);
  ASSERT_TRUE(titles.ok());
  ASSERT_EQ(titles->size(), 3u);
  EXPECT_EQ((*titles)[0]->DirectText(), "Matrix");
  EXPECT_EQ((*titles)[1]->DirectText(), "Mask of Zorro");
  EXPECT_EQ((*titles)[2]->DirectText(), "Zorro");
}

TEST_F(XPathFixture, EmptyPathSelectsContext) {
  XPath path;  // default constructed: no steps
  auto elements = path.SelectElements(Movie(0));
  ASSERT_TRUE(elements.ok());
  ASSERT_EQ(elements->size(), 1u);
  EXPECT_EQ((*elements)[0]->AttributeOr("ID", ""), "m1");
}

TEST_F(XPathFixture, TextOnElementWithoutDirectText) {
  auto path = XPath::Parse("people/text()").value();
  auto values = path.SelectValues(Movie(0));
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "") << "people has no direct text";
}

TEST_F(XPathFixture, MutableOverloadsReturnSameNodes) {
  auto path = XPath::Parse("movie_database/movies/movie").value();
  auto mutable_result = path.SelectFromRoot(doc_);
  ASSERT_TRUE(mutable_result.ok());
  (*mutable_result)[0]->SetAttribute("touched", "yes");
  EXPECT_EQ(Movie(0).AttributeOr("touched", ""), "yes");
}

TEST_F(XPathFixture, EqualityOperator) {
  EXPECT_EQ(XPath::Parse("a/b").value(), XPath::Parse("/a/b").value());
  EXPECT_FALSE(XPath::Parse("a/b").value() == XPath::Parse("a/c").value());
}

}  // namespace
}  // namespace sxnm::xml
