// Data-integration scenario from the paper's introduction: two
// heterogeneous movie catalogs (already schema-matched into the common
// target schema) are combined into one document; duplicate detection then
// identifies the objects both sources describe, and fusion produces the
// "unique, complete, and correct representation for every real-world
// object".
//
// Source A knows years and reviews; source B knows lengths and casts.
// After SXNM + kFuse dedup, each surviving movie carries the union.
//
// Usage: data_integration [movies_per_source]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <set>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "datagen/vocab.h"
#include "datagen/template_gen.h"
#include "sxnm/dedup_writer.h"
#include "sxnm/detector.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "xml/writer.h"
#include "xml/xpath.h"

namespace {

using sxnm::xml::Document;
using sxnm::xml::Element;

// Builds the combined document: both sources' movies under one root. The
// overlap fraction of source B's movies describe the same real-world
// films as source A (with dirty titles); gold ids mark the truth.
Document CombineSources(size_t per_source, double overlap,
                        uint64_t seed) {
  sxnm::util::Rng rng(seed);
  sxnm::datagen::ErrorModel errors;
  errors.field_error_probability = 0.6;
  errors.max_edits = 2;

  auto root = std::make_unique<Element>("movie_database");
  Element* movies = root->AddElement("movies");

  std::vector<std::string> titles;
  std::set<std::string> unique;
  while (titles.size() < per_source) {
    std::string t = sxnm::datagen::RandomTitle(rng);
    if (unique.insert(t).second) titles.push_back(t);
  }

  // Source A: title + year + review.
  for (size_t i = 0; i < per_source; ++i) {
    Element* movie = movies->AddElement("movie");
    movie->SetAttribute(sxnm::datagen::kGoldAttribute,
                        "film-" + std::to_string(i));
    movie->SetAttribute("source", "A");
    movie->SetAttribute("year", std::to_string(rng.NextInt(1960, 2005)));
    movie->AddElement("title")->AddText(titles[i]);
    movie->AddElement("review")->AddText(
        sxnm::datagen::RandomReviewSentence(rng));
  }

  // Source B: title (possibly dirty) + length + cast; `overlap` of them
  // re-describe source A films.
  for (size_t i = 0; i < per_source; ++i) {
    Element* movie = movies->AddElement("movie");
    movie->SetAttribute("source", "B");
    movie->SetAttribute("length", std::to_string(rng.NextInt(60, 220)));
    std::string title;
    if (rng.NextBool(overlap)) {
      size_t ref = rng.NextBelow(per_source);
      movie->SetAttribute(sxnm::datagen::kGoldAttribute,
                          "film-" + std::to_string(ref));
      title = sxnm::datagen::PolluteValue(titles[ref], errors, rng);
    } else {
      movie->SetAttribute(sxnm::datagen::kGoldAttribute,
                          "filmB-" + std::to_string(i));
      do {
        title = sxnm::datagen::RandomTitle(rng);
      } while (unique.count(title) > 0);
    }
    movie->AddElement("title")->AddText(title);
    Element* people = movie->AddElement("people");
    for (int c = 0; c < rng.NextInt(1, 3); ++c) {
      Element* person = people->AddElement("person");
      person->AddElement("lastname")->AddText(
          sxnm::datagen::LastNames()[rng.NextBelow(
              sxnm::datagen::LastNames().size())]);
    }
  }

  Document doc;
  doc.SetRoot(std::move(root));
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  size_t per_source = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;

  Document combined = CombineSources(per_source, /*overlap=*/0.5, 42);
  std::printf("combined catalog: %zu movies from two sources\n",
              sxnm::xml::XPath::Parse("movie_database/movies/movie")
                  ->SelectFromRoot(combined)
                  ->size());

  auto config = sxnm::datagen::MovieConfig(/*window=*/10);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  config->Find("movie")->classifier.od_threshold = 0.7;

  sxnm::core::Detector detector(config.value());
  auto result = detector.Run(combined);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  const auto* movie = result->Find("movie");
  std::printf("cross-source matches found: %zu pairs in %zu clusters\n",
              movie->duplicate_pairs.size(),
              movie->clusters.NonTrivialClusters().size());

  sxnm::core::DedupStats stats;
  auto integrated = sxnm::core::Deduplicate(
      combined, result.value(), sxnm::core::RepresentativeStrategy::kFuse,
      &stats);
  if (!integrated.ok()) {
    std::cerr << integrated.status().ToString() << "\n";
    return 1;
  }
  std::printf("after fusion: %zu movies (%zu removed, %zu attributes and "
              "%zu children fused)\n",
              sxnm::xml::XPath::Parse("movie_database/movies/movie")
                  ->SelectFromRoot(integrated.value())
                  ->size(),
              stats.elements_removed, stats.attributes_fused,
              stats.children_fused);

  // Show one fused movie: it should carry year AND length AND both
  // sources' children.
  auto fused_movies = sxnm::xml::XPath::Parse("movie_database/movies/movie")
                          ->SelectFromRoot(integrated.value());
  for (const Element* m : fused_movies.value()) {
    if (m->HasAttribute("year") && m->HasAttribute("length") &&
        m->FirstChildElement("review") != nullptr &&
        m->FirstChildElement("people") != nullptr) {
      std::printf("\nexample integrated record:\n%s\n",
                  sxnm::xml::WriteElement(*m).c_str());
      break;
    }
  }
  return 0;
}
