// Configuration tool: validates an SXNM XML configuration file and prints
// a human-readable summary (candidates, paths, keys with sample key
// values, thresholds). With no argument, prints the built-in Data set 1
// configuration as a ready-to-edit template.
//
// Usage: config_tool [config.xml]

#include <cstdio>
#include <iostream>

#include "datagen/movies.h"
#include "sxnm/config_xml.h"
#include "sxnm/key_pattern.h"
#include "util/exit_code.h"

namespace {

void PrintSummary(const sxnm::core::Config& config) {
  for (const auto& cand : config.candidates()) {
    std::printf("candidate '%s'\n", cand.name.c_str());
    std::printf("  path:    %s\n", cand.absolute_path.ToString().c_str());
    std::printf("  window:  %zu   use-descendants: %s\n", cand.window_size,
                cand.use_descendants ? "true" : "false");
    std::printf("  classifier: mode=%s od-threshold=%.2f "
                "desc-threshold=%.2f\n",
                sxnm::core::CombineModeName(cand.classifier.mode),
                cand.classifier.od_threshold, cand.classifier.desc_threshold);
    for (const auto& path : cand.paths) {
      std::printf("  PATH %d -> %s\n", path.id, path.path.ToString().c_str());
    }
    for (const auto& od : cand.od) {
      std::printf("  OD pid=%d relevance=%.2f phi=%s\n", od.pid, od.relevance,
                  od.similarity_name.c_str());
    }
    for (size_t k = 0; k < cand.keys.size(); ++k) {
      std::printf("  KEY %zu:", k + 1);
      for (const auto& part : cand.keys[k].parts) {
        std::printf(" [pid=%d %s]", part.pid,
                    part.pattern.ToString().c_str());
      }
      std::printf("\n");
    }
    // Demonstrate the pattern engine on the paper's running example.
    if (!cand.keys.empty()) {
      std::printf("  sample: pattern '%s' on \"Mask of Zorro\" -> \"%s\"\n",
                  cand.keys[0].parts[0].pattern.ToString().c_str(),
                  cand.keys[0].parts[0].pattern.Apply("Mask of Zorro").c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    auto config = sxnm::datagen::MovieConfig(/*window=*/10);
    if (!config.ok()) {
      std::cerr << config.status().ToString() << "\n";
      return sxnm::util::kExitConfig;
    }
    std::printf("No config given; showing the built-in Data set 1 "
                "configuration.\n\n");
    PrintSummary(config.value());
    std::printf("XML form (feed this back via: config_tool <file>):\n\n%s",
                sxnm::core::ConfigToXmlString(config.value()).c_str());
    return 0;
  }

  auto config = sxnm::core::ConfigFromXmlFile(argv[1]);
  if (!config.ok()) {
    std::cerr << "INVALID: " << config.status().ToString() << "\n";
    return sxnm::util::kExitConfig;
  }
  std::printf("OK: %s parses and validates.\n\n", argv[1]);
  PrintSummary(config.value());
  return 0;
}
