// Movie-database deduplication on generated data (the paper's Data set 1
// scenario): generate a clean artificial movie collection, pollute it with
// duplicates, run SXNM with the observability layer on, and report
// recall / precision / f-measure against the known ground truth plus the
// engine's own per-pass DetectionReport and metrics.
//
// Usage: movie_dedup [num_movies] [window] [trace.json] [report.json]
//
// When given a third argument the run's span trace is written there as
// Chrome trace_event JSON (open in chrome://tracing or Perfetto); a
// fourth argument saves the DetectionReport as JSON.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "sxnm/detector.h"
#include "util/exit_code.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_movies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  size_t window = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;

  // Generate clean data (ToXGene substitute), then pollute it (Dirty XML
  // Data Generator substitute).
  sxnm::datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = 20060326;  // EDBT 2006
  sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(gen);

  sxnm::datagen::DirtyStats dirty_stats;
  auto dirty = sxnm::datagen::MakeDirty(
      clean, sxnm::datagen::DataSet1DirtyPreset(/*seed=*/99), &dirty_stats);
  if (!dirty.ok()) {
    std::cerr << dirty.status().ToString() << "\n";
    return sxnm::util::ExitCodeForStatus(dirty.status());
  }
  std::printf("clean movies:      %zu\n", num_movies);
  std::printf("duplicates added:  %zu\n", dirty_stats.duplicates_created);
  std::printf("values polluted:   %zu\n\n", dirty_stats.values_polluted);

  // Configure (Tab. 3(a)) with observability on and run.
  auto config = sxnm::datagen::MovieConfig(window);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return sxnm::util::kExitConfig;
  }
  config->mutable_observability().metrics = true;
  if (argc > 3) config->mutable_observability().trace_path = argv[3];
  if (argc > 4) config->mutable_observability().report_path = argv[4];

  auto result = sxnm::core::Detector(config.value()).Run(dirty.value());
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return sxnm::util::ExitCodeForStatus(result.status());
  }
  const sxnm::core::CandidateResult* movie = result->Find("movie");

  auto gold = sxnm::eval::GoldClusterSet(
      dirty.value(), config->Find("movie")->absolute_path.ToString());
  if (!gold.ok()) {
    std::cerr << gold.status().ToString() << "\n";
    return sxnm::util::ExitCodeForStatus(gold.status());
  }
  sxnm::eval::PairMetrics quality =
      sxnm::eval::PairwiseMetrics(gold.value(), movie->clusters);

  std::printf("window size:       %zu\n", window);
  std::printf("movie instances:   %zu\n", movie->num_instances);
  std::printf("comparisons:       %zu  (naive all-pairs: %zu)\n",
              movie->comparisons,
              movie->num_instances * (movie->num_instances - 1) / 2);
  std::printf("quality:           %s\n\n", quality.ToString().c_str());

  sxnm::util::TablePrinter phases({"phase", "seconds"});
  phases.AddRow({"key generation (KG)",
                 sxnm::util::FormatDouble(result->KeyGenerationSeconds(), 4)});
  phases.AddRow({"sliding window (SW)",
                 sxnm::util::FormatDouble(result->SlidingWindowSeconds(), 4)});
  phases.AddRow({"transitive closure (TC)",
                 sxnm::util::FormatDouble(
                     result->TransitiveClosureSeconds(), 4)});
  phases.AddRow({"duplicate detection (SW+TC)",
                 sxnm::util::FormatDouble(
                     result->DuplicateDetectionSeconds(), 4)});
  phases.Print(std::cout);

  // The engine's own accounting: one row per (candidate, pass).
  std::printf("\nper-pass detection report:\n%s",
              result->report.ToTable().c_str());

  // The report and the registry describe the same kernel invocations.
  uint64_t counter = result->metrics.CounterOr("sw.comparisons");
  std::printf("\nregistry sw.comparisons:   %llu\n",
              static_cast<unsigned long long>(counter));
  std::printf("report total comparisons:  %llu  (%s)\n",
              static_cast<unsigned long long>(
                  result->report.TotalComparisons()),
              result->report.TotalComparisons() == counter ? "match"
                                                           : "MISMATCH");
  if (result->report.TotalComparisons() != counter) {
    return sxnm::util::kExitRuntime;
  }

  if (argc > 3) std::printf("trace written to %s\n", argv[3]);
  if (argc > 4) std::printf("report written to %s\n", argv[4]);
  return 0;
}
