// Movie-database deduplication on generated data (the paper's Data set 1
// scenario): generate a clean artificial movie collection, pollute it with
// duplicates, run SXNM with the observability layer on, and report
// recall / precision / f-measure against the known ground truth plus the
// engine's own per-pass DetectionReport, metrics, and gold-joined miss
// diagnosis.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "eval/miss_diagnosis.h"
#include "persist/io.h"
#include "sxnm/detector.h"
#include "util/exit_code.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

constexpr char kUsage[] =
    "Usage: movie_dedup [options] [num_movies] [window]\n"
    "\n"
    "Generates a clean movie collection, pollutes it with duplicates, runs\n"
    "SXNM, and scores the result against the known ground truth.\n"
    "\n"
    "Positional arguments:\n"
    "  num_movies        clean movies to generate (default 2000)\n"
    "  window            sliding-window size (default 10)\n"
    "\n"
    "Options:\n"
    "  --trace=PATH      write a Chrome trace_event JSON of the run\n"
    "                    (open in chrome://tracing or Perfetto)\n"
    "  --report=PATH     write the per-pass DetectionReport as JSON\n"
    "  --explain=PATH    write the decision-provenance log (NDJSON: one\n"
    "                    record per pair classification, cluster lineage);\n"
    "                    inspect with tools/sxnm_explain\n"
    "  --gold-out=PATH   write the gold labels as TSV\n"
    "                    (candidate<TAB>ordinal<TAB>eid<TAB>label), the\n"
    "                    join input for `sxnm_explain misses`\n"
    "  --telemetry=PATH  stream live NDJSON telemetry samples (counter\n"
    "                    rates, progress/ETA, RSS) to PATH while the run\n"
    "                    executes; watch with tools/sxnm_top --follow\n"
    "  --telemetry-interval-ms=N\n"
    "                    telemetry sampling period (default 250)\n"
    "  --profile=PATH    sample CPU by span and write a folded-stack\n"
    "                    profile (flamegraph.pl format) to PATH; render\n"
    "                    with tools/sxnm_flame\n"
    "  --profile-hz=N    profiler sampling rate (default 97)\n"
    "  --help            show this help\n";

struct Options {
  size_t num_movies = 2000;
  size_t window = 10;
  std::string trace_path;
  std::string report_path;
  std::string explain_path;
  std::string gold_out_path;
  std::string telemetry_path;
  std::string telemetry_interval_ms;
  std::string profile_path;
  std::string profile_hz;
};

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

// Returns false (after printing usage) on a parse error or --help.
bool ParseArgs(int argc, char** argv, Options* opts, int* exit_code) {
  size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::fputs(kUsage, stdout);
      *exit_code = 0;
      return false;
    }
    if (FlagValue(arg, "--trace", &opts->trace_path) ||
        FlagValue(arg, "--report", &opts->report_path) ||
        FlagValue(arg, "--explain", &opts->explain_path) ||
        FlagValue(arg, "--gold-out", &opts->gold_out_path) ||
        FlagValue(arg, "--telemetry", &opts->telemetry_path) ||
        FlagValue(arg, "--telemetry-interval-ms",
                  &opts->telemetry_interval_ms) ||
        FlagValue(arg, "--profile", &opts->profile_path) ||
        FlagValue(arg, "--profile-hz", &opts->profile_hz)) {
      continue;
    }
    if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "unknown option '%s'\n\n%s", arg, kUsage);
      *exit_code = sxnm::util::kExitUsage;
      return false;
    }
    char* end = nullptr;
    size_t value = std::strtoul(arg, &end, 10);
    if (end == arg || *end != '\0') {
      std::fprintf(stderr, "expected a number, got '%s'\n\n%s", arg, kUsage);
      *exit_code = sxnm::util::kExitUsage;
      return false;
    }
    if (positional == 0) {
      opts->num_movies = value;
    } else if (positional == 1) {
      opts->window = value;
    } else {
      std::fprintf(stderr, "too many positional arguments\n\n%s", kUsage);
      *exit_code = sxnm::util::kExitUsage;
      return false;
    }
    ++positional;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  int exit_code = 0;
  if (!ParseArgs(argc, argv, &opts, &exit_code)) return exit_code;

  // Generate clean data (ToXGene substitute), then pollute it (Dirty XML
  // Data Generator substitute).
  sxnm::datagen::MovieDataOptions gen;
  gen.num_movies = opts.num_movies;
  gen.seed = 20060326;  // EDBT 2006
  sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(gen);

  sxnm::datagen::DirtyStats dirty_stats;
  auto dirty = sxnm::datagen::MakeDirty(
      clean, sxnm::datagen::DataSet1DirtyPreset(/*seed=*/99), &dirty_stats);
  if (!dirty.ok()) {
    std::cerr << dirty.status().ToString() << "\n";
    return sxnm::util::ExitCodeForStatus(dirty.status());
  }
  std::printf("clean movies:      %zu\n", opts.num_movies);
  std::printf("duplicates added:  %zu\n", dirty_stats.duplicates_created);
  std::printf("values polluted:   %zu\n\n", dirty_stats.values_polluted);

  // Configure (Tab. 3(a)) with observability on and run.
  auto config = sxnm::datagen::MovieConfig(opts.window);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return sxnm::util::kExitConfig;
  }
  config->mutable_observability().metrics = true;
  config->mutable_observability().trace_path = opts.trace_path;
  config->mutable_observability().report_path = opts.report_path;
  config->mutable_observability().explain_path = opts.explain_path;
  config->mutable_observability().telemetry_path = opts.telemetry_path;
  if (!opts.telemetry_interval_ms.empty()) {
    double interval =
        sxnm::util::ParseDoubleOr(opts.telemetry_interval_ms, 0.0);
    if (interval <= 0.0) {
      std::fprintf(stderr,
                   "--telemetry-interval-ms: not a positive number\n\n%s",
                   kUsage);
      return sxnm::util::kExitUsage;
    }
    config->mutable_observability().telemetry_interval_ms = interval;
  }
  config->mutable_observability().profile_path = opts.profile_path;
  if (!opts.profile_hz.empty()) {
    double hz = sxnm::util::ParseDoubleOr(opts.profile_hz, 0.0);
    if (hz <= 0.0) {
      std::fprintf(stderr, "--profile-hz: not a positive number\n\n%s",
                   kUsage);
      return sxnm::util::kExitUsage;
    }
    config->mutable_observability().profile_hz = hz;
  }

  auto result = sxnm::core::Detector(config.value()).Run(dirty.value());
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return sxnm::util::ExitCodeForStatus(result.status());
  }
  const sxnm::core::CandidateResult* movie = result->Find("movie");

  auto gold = sxnm::eval::GoldClusterSet(
      dirty.value(), config->Find("movie")->absolute_path.ToString());
  if (!gold.ok()) {
    std::cerr << gold.status().ToString() << "\n";
    return sxnm::util::ExitCodeForStatus(gold.status());
  }
  sxnm::eval::PairMetrics quality =
      sxnm::eval::PairwiseMetrics(gold.value(), movie->clusters);

  std::printf("window size:       %zu\n", opts.window);
  std::printf("movie instances:   %zu\n", movie->num_instances);
  std::printf("comparisons:       %zu  (naive all-pairs: %zu)\n",
              movie->comparisons,
              movie->num_instances * (movie->num_instances - 1) / 2);
  std::printf("quality:           %s\n\n", quality.ToString().c_str());

  sxnm::util::TablePrinter phases({"phase", "seconds"});
  phases.AddRow({"key generation (KG)",
                 sxnm::util::FormatDouble(result->KeyGenerationSeconds(), 4)});
  phases.AddRow({"sliding window (SW)",
                 sxnm::util::FormatDouble(result->SlidingWindowSeconds(), 4)});
  phases.AddRow({"transitive closure (TC)",
                 sxnm::util::FormatDouble(
                     result->TransitiveClosureSeconds(), 4)});
  phases.AddRow({"duplicate detection (SW+TC)",
                 sxnm::util::FormatDouble(
                     result->DuplicateDetectionSeconds(), 4)});
  phases.Print(std::cout);

  // Gold-joined miss diagnosis: why each gold pair was missed, and what
  // each window pass contributed on its own.
  auto diagnosis = sxnm::eval::DiagnoseMisses(config.value(), dirty.value(),
                                              result.value(), "movie");
  if (!diagnosis.ok()) {
    std::cerr << diagnosis.status().ToString() << "\n";
    return sxnm::util::ExitCodeForStatus(diagnosis.status());
  }
  std::printf(
      "\nmiss diagnosis:    %zu missed pair(s): %zu never windowed, "
      "%zu windowed but rejected, %zu shed\n",
      diagnosis->misses.size(),
      diagnosis->CountKind(sxnm::eval::MissKind::kNeverWindowed),
      diagnosis->CountKind(sxnm::eval::MissKind::kWindowedButRejected),
      diagnosis->CountKind(sxnm::eval::MissKind::kShed));
  sxnm::eval::AttachAttribution(diagnosis.value(), result->report);
  std::printf("\nper-pass gold attribution:\n%s",
              result->report.AttributionTable().c_str());

  // The engine's own accounting: one row per (candidate, pass).
  std::printf("\nper-pass detection report:\n%s",
              result->report.ToTable().c_str());

  // The report and the registry describe the same kernel invocations.
  uint64_t counter = result->metrics.CounterOr("sw.comparisons");
  std::printf("\nregistry sw.comparisons:   %llu\n",
              static_cast<unsigned long long>(counter));
  std::printf("report total comparisons:  %llu  (%s)\n",
              static_cast<unsigned long long>(
                  result->report.TotalComparisons()),
              result->report.TotalComparisons() == counter ? "match"
                                                           : "MISMATCH");
  if (result->report.TotalComparisons() != counter) {
    return sxnm::util::kExitRuntime;
  }

  if (!opts.gold_out_path.empty()) {
    auto labels = sxnm::eval::GoldLabels(
        dirty.value(), config->Find("movie")->absolute_path.ToString());
    if (!labels.ok()) {
      std::cerr << labels.status().ToString() << "\n";
      return sxnm::util::ExitCodeForStatus(labels.status());
    }
    std::string tsv;
    for (size_t i = 0; i < labels->size(); ++i) {
      tsv += "movie\t" + std::to_string(i) + "\t" +
             std::to_string(movie->gk.rows[i].eid) + "\t" + (*labels)[i] +
             "\n";
    }
    auto wrote = sxnm::persist::AtomicWriteFile(opts.gold_out_path, tsv);
    if (!wrote.ok()) {
      std::fprintf(stderr, "failed writing gold labels to %s: %s\n",
                   opts.gold_out_path.c_str(), wrote.ToString().c_str());
      return sxnm::util::ExitCodeForStatus(wrote);
    }
    std::printf("gold labels written to %s\n", opts.gold_out_path.c_str());
  }
  if (!opts.trace_path.empty()) {
    std::printf("trace written to %s\n", opts.trace_path.c_str());
  }
  if (!opts.report_path.empty()) {
    std::printf("report written to %s\n", opts.report_path.c_str());
  }
  if (!opts.explain_path.empty()) {
    std::printf("explain log written to %s\n", opts.explain_path.c_str());
  }
  if (!opts.telemetry_path.empty()) {
    std::printf("telemetry written to %s (render with tools/sxnm_top)\n",
                opts.telemetry_path.c_str());
  }
  if (!opts.profile_path.empty()) {
    std::printf(
        "profile written to %s (%llu samples via %s; render with "
        "tools/sxnm_flame)\n",
        opts.profile_path.c_str(),
        static_cast<unsigned long long>(result->profile.total_samples),
        result->profile.backend.c_str());
  }
  return 0;
}
