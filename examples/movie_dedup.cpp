// Movie-database deduplication on generated data (the paper's Data set 1
// scenario): generate a clean artificial movie collection, pollute it with
// duplicates, run SXNM, and report recall / precision / f-measure against
// the known ground truth, plus the phase timing breakdown.
//
// Usage: movie_dedup [num_movies] [window]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/experiment.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "sxnm/detector.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_movies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  size_t window = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;

  // Generate clean data (ToXGene substitute), then pollute it (Dirty XML
  // Data Generator substitute).
  sxnm::datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = 20060326;  // EDBT 2006
  sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(gen);

  sxnm::datagen::DirtyStats dirty_stats;
  auto dirty = sxnm::datagen::MakeDirty(
      clean, sxnm::datagen::DataSet1DirtyPreset(/*seed=*/99), &dirty_stats);
  if (!dirty.ok()) {
    std::cerr << dirty.status().ToString() << "\n";
    return 1;
  }
  std::printf("clean movies:      %zu\n", num_movies);
  std::printf("duplicates added:  %zu\n", dirty_stats.duplicates_created);
  std::printf("values polluted:   %zu\n\n", dirty_stats.values_polluted);

  // Configure (Tab. 3(a)) and run.
  auto config = sxnm::datagen::MovieConfig(window);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }

  auto eval = sxnm::eval::RunAndEvaluate(config.value(), dirty.value(),
                                         "movie");
  if (!eval.ok()) {
    std::cerr << eval.status().ToString() << "\n";
    return 1;
  }

  std::printf("window size:       %zu\n", window);
  std::printf("movie instances:   %zu\n", eval->instances);
  std::printf("comparisons:       %zu  (naive all-pairs: %zu)\n",
              eval->comparisons,
              eval->instances * (eval->instances - 1) / 2);
  std::printf("quality:           %s\n\n", eval->metrics.ToString().c_str());

  sxnm::util::TablePrinter phases({"phase", "seconds"});
  phases.AddRow({"key generation (KG)",
                 sxnm::util::FormatDouble(eval->kg_seconds, 4)});
  phases.AddRow({"sliding window (SW)",
                 sxnm::util::FormatDouble(eval->sw_seconds, 4)});
  phases.AddRow({"transitive closure (TC)",
                 sxnm::util::FormatDouble(eval->tc_seconds, 4)});
  phases.AddRow({"duplicate detection (SW+TC)",
                 sxnm::util::FormatDouble(
                     eval->sw_seconds + eval->tc_seconds, 4)});
  phases.Print(std::cout);
  return 0;
}
