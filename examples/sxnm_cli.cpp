// sxnm_cli — end-to-end command-line deduplicator.
//
//   sxnm_cli <config.xml> <data.xml> [-o out.xml] [--fuse|--first|--richest]
//            [--report [--gold]] [--advise] [--metrics-out metrics.prom]
//            [--telemetry run.tlm.ndjsonl] [--telemetry-interval-ms N]
//            [--profile run.folded] [--profile-hz N]
//            [--shards N] [--memory-budget BYTES] [--spill-dir DIR]
//
// Loads an SXNM configuration (see examples/config_tool for the format),
// runs detection over the data file, prints a per-candidate report
// (instances, comparisons, clusters, phase timings) and optionally writes
// the de-duplicated document.
//
// --shards / --memory-budget / --spill-dir override the config's
// out-of-core attributes (docs/CONFIG.md): N key-range shards per
// sliding-window pass and an external-sort memory budget (binary
// suffixes k/m/g accepted) under which generated-key rows spill to DIR.
// Detection output is bit-identical for every shard count and budget.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "eval/report.h"
#include "persist/io.h"
#include "eval/window_advisor.h"
#include "sxnm/config_xml.h"
#include "sxnm/dedup_writer.h"
#include "sxnm/detector.h"
#include "util/exit_code.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <config.xml> <data.xml> [-o out.xml] "
               "[--fuse|--first|--richest]\n"
               "       [--report [--gold]] [--advise] "
               "[--metrics-out metrics.prom]\n"
               "       [--telemetry run.tlm.ndjsonl] "
               "[--telemetry-interval-ms N]\n"
               "       [--profile run.folded] [--profile-hz N]\n"
               "       [--shards N] [--memory-budget BYTES] "
               "[--spill-dir DIR]\n",
               argv0);
  return 2;
}

// "268435456", "64K", "256M", "4G" (binary multiples, case-insensitive)
// -> bytes; -1 on malformed input. Mirrors the config's memory-budget
// attribute grammar.
long long ParseByteSizeArg(std::string_view text) {
  unsigned long long multiplier = 1;
  if (!text.empty()) {
    switch (text.back()) {
      case 'k': case 'K': multiplier = 1ull << 10; break;
      case 'm': case 'M': multiplier = 1ull << 20; break;
      case 'g': case 'G': multiplier = 1ull << 30; break;
      default: break;
    }
    if (multiplier != 1) text.remove_suffix(1);
  }
  if (text.empty()) return -1;
  unsigned long long value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + static_cast<unsigned long long>(c - '0');
  }
  return static_cast<long long>(value * multiplier);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  std::string config_path = argv[1];
  std::string data_path = argv[2];
  std::string out_path;
  auto strategy = sxnm::core::RepresentativeStrategy::kRichest;
  bool report = false;
  bool with_gold = false;
  bool advise = false;
  std::string metrics_out_path;
  std::string telemetry_path;
  double telemetry_interval_ms = 0.0;  // 0 = keep the config's value
  std::string profile_path;
  double profile_hz = 0.0;             // 0 = keep the config's value
  long long shards = 0;                // 0 = keep the config's value
  long long memory_budget = -1;        // -1 = keep the config's value
  std::string spill_dir;

  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fuse") == 0) {
      strategy = sxnm::core::RepresentativeStrategy::kFuse;
    } else if (std::strcmp(argv[i], "--first") == 0) {
      strategy = sxnm::core::RepresentativeStrategy::kFirst;
    } else if (std::strcmp(argv[i], "--richest") == 0) {
      strategy = sxnm::core::RepresentativeStrategy::kRichest;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else if (std::strcmp(argv[i], "--gold") == 0) {
      with_gold = true;
    } else if (std::strcmp(argv[i], "--advise") == 0) {
      advise = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry-interval-ms") == 0 &&
               i + 1 < argc) {
      telemetry_interval_ms = sxnm::util::ParseDoubleOr(argv[++i], 0.0);
      if (telemetry_interval_ms <= 0.0) {
        std::fprintf(stderr, "--telemetry-interval-ms: not a positive number\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-hz") == 0 && i + 1 < argc) {
      profile_hz = sxnm::util::ParseDoubleOr(argv[++i], 0.0);
      if (profile_hz <= 0.0) {
        std::fprintf(stderr, "--profile-hz: not a positive number\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = sxnm::util::ParseNonNegativeInt(argv[++i]);
      if (shards < 1) {
        std::fprintf(stderr, "--shards: not a positive integer\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--memory-budget") == 0 && i + 1 < argc) {
      memory_budget = ParseByteSizeArg(argv[++i]);
      if (memory_budget < 0) {
        std::fprintf(stderr,
                     "--memory-budget: not a byte size (try 256M, 4G)\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--spill-dir") == 0 && i + 1 < argc) {
      spill_dir = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  auto config = sxnm::core::ConfigFromXmlFile(config_path);
  if (!config.ok()) {
    std::cerr << "config error: " << config.status().ToString() << "\n";
    return sxnm::util::kExitConfig;
  }
  sxnm::core::Config loaded_config = std::move(config).value();
  // Prometheus export and live telemetry both need the metrics registry
  // regardless of what the config's <observability> says.
  if (!metrics_out_path.empty()) {
    loaded_config.mutable_observability().metrics = true;
  }
  if (!telemetry_path.empty()) {
    loaded_config.mutable_observability().metrics = true;
    loaded_config.mutable_observability().telemetry_path = telemetry_path;
  }
  if (telemetry_interval_ms > 0.0) {
    loaded_config.mutable_observability().telemetry_interval_ms =
        telemetry_interval_ms;
  }
  if (!profile_path.empty()) {
    loaded_config.mutable_observability().profile_path = profile_path;
  }
  if (profile_hz > 0.0) {
    loaded_config.mutable_observability().profile_hz = profile_hz;
  }
  if (shards > 0) {
    loaded_config.set_shards(static_cast<size_t>(shards));
  }
  if (memory_budget >= 0) {
    loaded_config.set_memory_budget_bytes(
        static_cast<uint64_t>(memory_budget));
  }
  if (!spill_dir.empty()) {
    loaded_config.set_spill_dir(spill_dir);
  }

  // Ingest under the configured <limits>: hard caps always apply; with
  // recover="true" malformed subtrees are skipped and reported with their
  // line/column instead of failing the whole file.
  const sxnm::core::RunLimits& limits = loaded_config.limits();
  sxnm::xml::ParseOptions parse_options = limits.ToParseOptions();
  sxnm::xml::Document data_doc;
  if (limits.recover_parse) {
    auto recovered = sxnm::xml::ParseFileRecovering(data_path, parse_options);
    if (!recovered.ok()) {
      std::cerr << "data error: " << recovered.status().ToString() << "\n";
      return sxnm::util::ExitCodeForStatus(recovered.status());
    }
    for (const auto& diag : recovered->diagnostics) {
      std::fprintf(stderr, "%s: %s\n", data_path.c_str(),
                   diag.ToString().c_str());
    }
    if (!recovered->clean()) {
      std::fprintf(stderr, "recovered parse: skipped %zu problem(s)\n",
                   recovered->diagnostics.size());
    }
    data_doc = std::move(recovered->doc);
  } else {
    auto doc = sxnm::xml::ParseFile(data_path, parse_options);
    if (!doc.ok()) {
      std::cerr << "data error: " << doc.status().ToString() << "\n";
      return sxnm::util::ExitCodeForStatus(doc.status());
    }
    data_doc = std::move(doc).value();
  }

  sxnm::core::Detector detector(loaded_config);
  auto result = detector.Run(data_doc);
  if (!result.ok()) {
    std::cerr << "detection error: " << result.status().ToString() << "\n";
    return sxnm::util::ExitCodeForStatus(result.status());
  }
  if (result->degraded()) {
    std::fprintf(stderr, "%s", result->degradation.ToString().c_str());
  }

  sxnm::util::TablePrinter report_table({"candidate", "instances",
                                         "comparisons", "duplicate pairs",
                                         "clusters(>1)"});
  for (const auto& cand : result->candidates) {
    report_table.AddRow({cand.name, std::to_string(cand.num_instances),
                   std::to_string(cand.comparisons),
                   std::to_string(cand.duplicate_pairs.size()),
                   std::to_string(cand.clusters.NonTrivialClusters().size())});
  }
  report_table.Print(std::cout);
  std::printf("phases: KG=%.3fs SW=%.3fs TC=%.3fs (DD=%.3fs)\n",
              result->KeyGenerationSeconds(),
              result->SlidingWindowSeconds(),
              result->TransitiveClosureSeconds(),
              result->DuplicateDetectionSeconds());

  if (advise) {
    // Sampling-based window advice per candidate (outlook, Sec. 5).
    std::printf("\nwindow advice (95%% coverage of sampled similar-pair "
                "rank distances):\n");
    for (const auto& cand : loaded_config.candidates()) {
      auto advice = sxnm::eval::AdviseWindow(loaded_config, data_doc,
                                             cand.name);
      if (!advice.ok()) {
        std::printf("  %-12s <error: %s>\n", cand.name.c_str(),
                    advice.status().ToString().c_str());
        continue;
      }
      if (advice->similar_pairs == 0) {
        std::printf("  %-12s no similar pairs in sample (keep window %zu)\n",
                    cand.name.c_str(), cand.window_size);
      } else {
        std::printf("  %-12s configured=%zu advised=%zu (max observed "
                    "distance %zu over %zu pairs)\n",
                    cand.name.c_str(), cand.window_size,
                    advice->recommended_window, advice->max_distance,
                    advice->similar_pairs);
      }
    }
  }

  if (report) {
    sxnm::eval::ReportOptions report_options;
    report_options.with_gold = with_gold;
    auto rendered = sxnm::eval::RenderReport(loaded_config, data_doc,
                                             result.value(), report_options);
    if (!rendered.ok()) {
      std::cerr << "report error: " << rendered.status().ToString() << "\n";
      return sxnm::util::ExitCodeForStatus(rendered.status());
    }
    std::printf("\n%s", rendered->c_str());
  }

  if (!metrics_out_path.empty()) {
    std::ostringstream metrics_text;
    result->metrics.ToPrometheusText(metrics_text);
    auto wrote =
        sxnm::persist::AtomicWriteFile(metrics_out_path, metrics_text.str());
    if (!wrote.ok()) {
      std::cerr << "cannot write " << metrics_out_path << ": "
                << wrote.ToString() << "\n";
      return sxnm::util::ExitCodeForStatus(wrote);
    }
    std::printf("wrote %s (Prometheus text exposition)\n",
                metrics_out_path.c_str());
  }
  if (!telemetry_path.empty()) {
    std::printf("wrote %s (telemetry time series; render with tools/sxnm_top)\n",
                telemetry_path.c_str());
  }
  if (!profile_path.empty()) {
    std::printf(
        "wrote %s (%llu CPU samples via %s; render with tools/sxnm_flame)\n",
        profile_path.c_str(),
        static_cast<unsigned long long>(result->profile.total_samples),
        result->profile.backend.c_str());
  }

  if (!out_path.empty()) {
    sxnm::core::DedupStats stats;
    auto deduped =
        sxnm::core::Deduplicate(data_doc, result.value(), strategy, &stats);
    if (!deduped.ok()) {
      std::cerr << "dedup error: " << deduped.status().ToString() << "\n";
      return sxnm::util::ExitCodeForStatus(deduped.status());
    }
    if (!sxnm::xml::WriteDocumentToFile(deduped.value(), out_path)) {
      std::cerr << "cannot write " << out_path << "\n";
      return sxnm::util::kExitRuntime;
    }
    std::printf("wrote %s: removed %zu elements across %zu clusters",
                out_path.c_str(), stats.elements_removed,
                stats.clusters_collapsed);
    if (strategy == sxnm::core::RepresentativeStrategy::kFuse) {
      std::printf(" (fused %zu attributes, %zu children)",
                  stats.attributes_fused, stats.children_fused);
    }
    std::printf("\n");
  }
  return 0;
}
