// Quickstart: deduplicate a small inline XML movie collection with SXNM.
//
// Demonstrates the complete public API surface in ~100 lines:
//   1. parse an XML document,
//   2. configure a candidate (paths, object description, keys),
//   3. run the detector,
//   4. inspect duplicate pairs and clusters,
//   5. write the de-duplicated document.

#include <cstdio>
#include <iostream>

#include "sxnm/config.h"
#include "sxnm/dedup_writer.h"
#include "sxnm/detector.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace {

constexpr const char* kMovies = R"xml(
<movie_database>
  <movies>
    <movie year="1999" length="136">
      <title>The Matrix</title>
      <people>
        <person><lastname>Reeves</lastname><firstname>Keanu</firstname></person>
        <person><lastname>Fishburne</lastname><firstname>Laurence</firstname></person>
      </people>
    </movie>
    <movie year="1999" length="136">
      <title>Matrix, The</title>
      <people>
        <person><lastname>Reevs</lastname><firstname>Keanu</firstname></person>
      </people>
    </movie>
    <movie year="1998" length="137">
      <title>Mask of Zorro</title>
      <people>
        <person><lastname>Banderas</lastname><firstname>Antonio</firstname></person>
      </people>
    </movie>
    <movie year="1998" length="137">
      <title>The Mask of Zoro</title>
    </movie>
    <movie year="2001" length="112">
      <title>Ocean Storm</title>
    </movie>
  </movies>
</movie_database>
)xml";

}  // namespace

int main() {
  // 1. Parse.
  auto doc = sxnm::xml::Parse(kMovies);
  if (!doc.ok()) {
    std::cerr << "parse failed: " << doc.status().ToString() << "\n";
    return 1;
  }

  // 2. Configure one candidate: <movie>, identified by its title (weight
  //    0.8) and year (0.2), with two sort keys for a multi-pass run.
  auto movie =
      sxnm::core::CandidateBuilder("movie", "movie_database/movies/movie")
          .Path(1, "title/text()")
          .Path(2, "@year")
          .Od(1, 0.8, "edit")
          .Od(2, 0.2, "numeric:5")
          .Key({{1, "K1-K5"}, {2, "D3,D4"}})  // MSKFZ98-style keys
          .Key({{2, "D3,D4"}, {1, "K1,K2"}})
          .Window(3)
          .OdThreshold(0.55)
          .Build();
  if (!movie.ok()) {
    std::cerr << "config error: " << movie.status().ToString() << "\n";
    return 1;
  }
  sxnm::core::Config config;
  if (auto s = config.AddCandidate(std::move(movie).value()); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  // 3. Detect.
  sxnm::core::Detector detector(std::move(config));
  auto result = detector.Run(doc.value());
  if (!result.ok()) {
    std::cerr << "detection failed: " << result.status().ToString() << "\n";
    return 1;
  }
  const sxnm::core::CandidateResult* movies = result->Find("movie");

  // 4. Report.
  std::printf("instances:   %zu\n", movies->num_instances);
  std::printf("comparisons: %zu\n", movies->comparisons);
  std::printf("pairs found: %zu\n", movies->duplicate_pairs.size());
  for (const auto& [a, b] : movies->duplicate_pairs) {
    std::printf("  duplicate pair: instance %zu ~ instance %zu\n", a, b);
  }
  for (const auto& cluster : movies->clusters.NonTrivialClusters()) {
    std::printf("  cluster:");
    for (size_t member : cluster) std::printf(" %zu", member);
    std::printf("\n");
  }

  // 5. De-duplicate and print the cleaned document.
  auto deduped = sxnm::core::Deduplicate(doc.value(), result.value());
  if (!deduped.ok()) {
    std::cerr << "dedup failed: " << deduped.status().ToString() << "\n";
    return 1;
  }
  std::printf("\nDe-duplicated document:\n%s",
              sxnm::xml::WriteDocument(deduped.value()).c_str());
  return 0;
}
