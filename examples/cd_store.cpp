// CD-catalog deduplication (the paper's Data set 2 scenario), showing the
// *bottom-up* use of descendants: track titles are deduplicated first, and
// the resulting cluster IDs let two discs match through their shared
// tracks even when disc-level fields are dirty (the paper's Fig. 2(b)
// Keanu Reeves / Don Davis example, at scale).
//
// Usage: cd_store [num_discs] [window]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/freedb.h"
#include "eval/experiment.h"
#include "sxnm/config.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_discs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  size_t window = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;

  auto doc = sxnm::datagen::GenerateDataSet2(num_discs, /*seed=*/7);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }
  auto config = sxnm::datagen::CdConfig(window);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }

  std::printf("discs (clean + dirty duplicates): ~%zu\n\n", num_discs * 2);

  sxnm::util::TablePrinter table(
      {"configuration", "precision", "recall", "f1", "comparisons"});

  // OD only: disc fields alone decide.
  {
    sxnm::core::ClassifierConfig cls =
        config->Find("disc")->classifier;
    cls.mode = sxnm::core::CombineMode::kOdOnly;
    auto od_only = sxnm::eval::WithClassifier(config.value(), "disc", cls);
    auto eval =
        sxnm::eval::RunAndEvaluate(od_only.value(), doc.value(), "disc");
    if (!eval.ok()) {
      std::cerr << eval.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({"OD only",
                  sxnm::util::FormatDouble(eval->metrics.precision, 4),
                  sxnm::util::FormatDouble(eval->metrics.recall, 4),
                  sxnm::util::FormatDouble(eval->metrics.f1, 4),
                  std::to_string(eval->comparisons)});
  }

  // OD + descendants: track-title clusters feed the disc comparison.
  {
    sxnm::core::ClassifierConfig cls = config->Find("disc")->classifier;
    cls.mode = sxnm::core::CombineMode::kDescGate;
    cls.desc_threshold = 0.3;  // the paper's best value (Fig. 6(b))
    auto with_desc = sxnm::eval::WithClassifier(config.value(), "disc", cls);
    auto eval =
        sxnm::eval::RunAndEvaluate(with_desc.value(), doc.value(), "disc");
    if (!eval.ok()) {
      std::cerr << eval.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({"OD + descendants (desc_gate 0.3)",
                  sxnm::util::FormatDouble(eval->metrics.precision, 4),
                  sxnm::util::FormatDouble(eval->metrics.recall, 4),
                  sxnm::util::FormatDouble(eval->metrics.f1, 4),
                  std::to_string(eval->comparisons)});
  }

  table.Print(std::cout);
  std::printf(
      "Descendant information lets dirty discs match through shared track\n"
      "clusters, the bottom-up effect of Sec. 3.4 / Experiment set 3.\n");
  return 0;
}
