// Fuzz target for the subtree hash-consing pool: interned id equality
// must coincide exactly with xml::StructurallyEqual (sxnm/subtree_pool.h
// promises a collision-free canonical encoding, not a probabilistic
// hash). The input drives a little stack machine twice — two length
// halves build two trees over a deliberately tiny vocabulary plus raw
// payload bytes (NULs and high-bit bytes included) — and both directions
// of the equivalence are checked, along with clone/re-intern stability.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sxnm/subtree_pool.h"
#include "xml/node.h"
#include "xml/structure.h"

namespace {

// Byte-stream-driven tree builder. Every byte is one instruction; the
// vocabulary is tiny so that the two halves of an input frequently build
// structurally identical trees and the equality direction gets exercised.
std::unique_ptr<sxnm::xml::Element> BuildTree(const uint8_t* data,
                                              size_t size) {
  static constexpr const char* kNames[] = {"a", "b", "c"};
  static constexpr const char* kAttrs[] = {"k", "kk"};

  auto root = std::make_unique<sxnm::xml::Element>("r");
  std::vector<sxnm::xml::Element*> stack = {root.get()};

  for (size_t i = 0; i < size; ++i) {
    const uint8_t b = data[i];
    sxnm::xml::Element* top = stack.back();
    // Payload: one raw byte derived from the instruction, so NULs and
    // high-bit bytes flow into names, texts and attribute values.
    const std::string payload(1, static_cast<char>(b >> 3));
    switch (b % 6) {
      case 0: {  // descend into a new child element (bounded depth)
        sxnm::xml::Element* child = top->AddElement(kNames[(b >> 3) % 3]);
        if (stack.size() < 16) stack.push_back(child);
        break;
      }
      case 1:  // ascend
        if (stack.size() > 1) stack.pop_back();
        break;
      case 2:
        top->AddText(payload);
        break;
      case 3:
        top->AddChild(
            std::make_unique<sxnm::xml::TextNode>(payload, /*cdata=*/true));
        break;
      case 4:
        top->AddChild(std::make_unique<sxnm::xml::CommentNode>(payload));
        break;
      case 5:
        top->SetAttribute(kAttrs[(b >> 3) % 2], payload);
        break;
    }
  }
  return root;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  size_t split_seed = (size_t(data[0]) << 8) | data[1];
  data += 2;
  size -= 2;
  size = std::min<size_t>(size, 2048);
  size_t split = size == 0 ? 0 : split_seed % (size + 1);

  std::unique_ptr<sxnm::xml::Element> a = BuildTree(data, split);
  std::unique_ptr<sxnm::xml::Element> b =
      BuildTree(data + split, size - split);

  sxnm::core::SubtreePool pool;
  sxnm::core::SubtreeRef ra = pool.Intern(*a);
  sxnm::core::SubtreeRef rb = pool.Intern(*b);
  if (!ra.valid() || !rb.valid()) __builtin_trap();

  // The core equivalence, both directions.
  if ((ra == rb) != sxnm::xml::StructurallyEqual(*a, *b)) __builtin_trap();

  // Clones are structurally identical by construction: same id, and the
  // pool learns no new DAG nodes from re-interning.
  size_t nodes_before = pool.num_nodes();
  if (pool.Intern(*a->Clone()) != ra) __builtin_trap();
  if (pool.Intern(*b) != rb) __builtin_trap();
  if (pool.num_nodes() != nodes_before) __builtin_trap();

  // Accounting invariants: every walked node is either new or shared.
  if (pool.num_nodes() > pool.nodes_seen()) __builtin_trap();
  if (pool.num_nodes() == 0 || pool.bytes() == 0) __builtin_trap();
  return 0;
}
