// Fuzz target for the XML parser: feeds arbitrary bytes through both the
// strict and the recovering entry points under tight resource limits and
// checks the cross-mode invariants:
//
//   * neither mode crashes, overflows the stack, or trips a sanitizer;
//   * a strict success implies a recovering success with zero diagnostics
//     (recovery only ever engages on malformed input);
//   * any successful parse yields a document with a root element.
//
// Build with -fsanitize=fuzzer under clang (SXNM_LIBFUZZER=ON), or link
// against replay_main.cc to replay the checked-in corpus as a plain test.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "xml/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  sxnm::xml::ParseOptions options;
  options.max_depth = 512;          // keep hostile nesting cheap to reject
  options.max_input_bytes = 1 << 20;
  options.max_nodes = 1 << 16;
  options.max_attr_count = 64;
  options.max_diagnostics = 64;

  auto strict = sxnm::xml::Parse(input, options);
  if (strict.ok() && strict->root() == nullptr) __builtin_trap();

  auto recovered = sxnm::xml::ParseRecovering(input, options);
  if (recovered.ok()) {
    if (recovered->doc.root() == nullptr) __builtin_trap();
    if (strict.ok() && !recovered->clean()) __builtin_trap();
  } else if (strict.ok()) {
    __builtin_trap();  // recovery must not fail where strict succeeded
  }
  return 0;
}
