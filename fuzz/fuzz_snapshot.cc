// Fuzz target for the snapshot container and every checkpoint frame
// decoder: arbitrary bytes must parse to a structured status — never a
// crash, never an out-of-bounds read, never a multi-gigabyte allocation
// from a corrupt length prefix. Any snapshot that does parse must
// round-trip: re-serializing its frames yields the same frame sequence.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "persist/snapshot.h"
#include "sxnm/checkpoint.h"

namespace persist = sxnm::persist;
namespace core = sxnm::core;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // Layer 1: the container. Magic, version, frame lengths, checksums,
  // end-frame commit marker.
  auto reader = persist::SnapshotReader::Parse(input);

  // Layer 2: frame payloads. Decoders are bounds-checked; feed every
  // decoder both the frames the container accepted and the raw input
  // (a frame payload extracted from a hostile file is hostile too).
  auto decode_all = [](std::string_view payload) {
    (void)core::DecodeFingerprint(payload);
    (void)core::DecodeCursor(payload);
    (void)core::DecodeGkTable(payload);
    (void)core::DecodeCandidateResult(payload);
    (void)core::DecodeDegradation(payload);
    (void)core::DecodeReportRows(payload);
    (void)core::DecodeMetricsSnapshot(payload);
    (void)core::DecodeVerdictEntries(payload);
  };
  decode_all(input);
  if (!reader.ok()) return 0;
  for (const persist::Frame& frame : reader->frames()) {
    decode_all(frame.payload);
  }

  // Round trip: a parsed snapshot re-serializes to a parseable snapshot
  // with the same frames.
  persist::SnapshotWriter writer;
  for (const persist::Frame& frame : reader->frames()) {
    writer.AddFrame(frame.type, frame.payload);
  }
  std::string bytes = writer.Serialize();
  auto again = persist::SnapshotReader::Parse(bytes);
  if (!again.ok()) __builtin_trap();
  if (again->frames().size() != reader->frames().size()) __builtin_trap();
  for (size_t i = 0; i < again->frames().size(); ++i) {
    if (again->frames()[i].type != reader->frames()[i].type ||
        again->frames()[i].payload != reader->frames()[i].payload) {
      __builtin_trap();
    }
  }
  return 0;
}
