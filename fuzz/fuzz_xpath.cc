// Fuzz target for the XPath-subset parser: arbitrary bytes must either be
// rejected with a clean status or produce an expression whose ToString()
// re-parses successfully (print/parse round trip).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "xml/xpath.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  auto parsed = sxnm::xml::XPath::Parse(input);
  if (!parsed.ok()) return 0;

  auto again = sxnm::xml::XPath::Parse(parsed->ToString());
  if (!again.ok()) __builtin_trap();
  return 0;
}
