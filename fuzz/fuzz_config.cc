// Fuzz target for configuration loading: ConfigFromXmlString must reject
// arbitrary bytes with a structured status (never crash), and any config
// it does accept must survive an XML round trip.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sxnm/config_xml.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  auto config = sxnm::core::ConfigFromXmlString(input);
  if (!config.ok()) return 0;

  auto round_trip = sxnm::core::ConfigFromXmlString(
      sxnm::core::ConfigToXmlString(config.value()));
  if (!round_trip.ok()) __builtin_trap();
  return 0;
}
