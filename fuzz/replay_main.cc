// Standalone corpus-replay driver: a main() for the LLVMFuzzerTestOneInput
// targets on toolchains without libFuzzer (the default gcc build). Each
// argument is a corpus file or a directory scanned recursively; every
// input is executed once. This is what the fuzz_replay_* ctest entries
// run — under ASan/UBSan in the `asan` preset it doubles as a regression
// gate over the checked-in seed corpus.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path path(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path.string());
    } else {
      std::fprintf(stderr, "no such corpus input: %s\n", argv[i]);
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", file.c_str());
      return 1;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
  }

  if (files.empty()) {
    std::fprintf(stderr, "corpus is empty\n");
    return 1;
  }
  std::printf("replayed %zu corpus input(s)\n", files.size());
  return 0;
}
