// Fuzz target for the edit-distance kernels: the bit-parallel Myers
// implementation must agree with the classic row-DP reference on every
// input (any byte values, including NULs and high-bit bytes), and the
// bounded variant must honor its min(distance, limit + 1) contract for a
// spread of limits. Input format: two length-prefix bytes select the
// split point between the two strings; the payload is capped so replay
// stays fast even on adversarially long corpus entries.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "text/edit_distance.h"
#include "text/myers.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  size_t split_seed = (size_t(data[0]) << 8) | data[1];
  data += 2;
  size -= 2;
  size = std::min<size_t>(size, 1024);

  size_t split = size == 0 ? 0 : split_seed % (size + 1);
  std::string_view a(reinterpret_cast<const char*>(data), split);
  std::string_view b(reinterpret_cast<const char*>(data) + split,
                     size - split);

  size_t reference = sxnm::text::LevenshteinDistance(a, b);
  if (sxnm::text::MyersDistance(a, b) != reference) __builtin_trap();

  for (size_t limit : {size_t{0}, size_t{2}, size_t{7}, size_t{64},
                       size_t{300}}) {
    size_t bounded = sxnm::text::MyersBoundedDistance(a, b, limit);
    if (bounded != std::min(reference, limit + 1)) __builtin_trap();
  }

  // The similarity wrapper's decision must match the exact similarity:
  // never pruned when the true value clears the threshold.
  constexpr double kMinSim = 0.8;
  bool pruned = false;
  double bounded_sim =
      sxnm::text::BoundedEditSimilarity(a, b, kMinSim, &pruned);
  double exact_sim = sxnm::text::EditSimilarity(a, b);
  if (pruned && exact_sim >= kMinSim) __builtin_trap();
  if (!pruned && bounded_sim != exact_sim) __builtin_trap();
  return 0;
}
