// M1: microbenchmarks for the similarity functions (google-benchmark).
// The sliding window's cost is dominated by φ^OD evaluations, so their
// per-call cost drives the SW curves of Fig. 5.

#include <benchmark/benchmark.h>

#include <string>

#include "text/edit_distance.h"
#include "text/jaro_winkler.h"
#include "text/qgram.h"
#include "text/soundex.h"
#include "util/rng.h"

namespace {

std::string MakeString(size_t length, uint64_t seed) {
  sxnm::util::Rng rng(seed);
  static constexpr char kAlpha[] = "abcdefghijklmnopqrstuvwxyz ";
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(kAlpha[rng.NextBelow(sizeof(kAlpha) - 1)]);
  }
  return s;
}

void BM_Levenshtein(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 1);
  std::string b = MakeString(size_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::LevenshteinDistance(a, b));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_BoundedLevenshtein(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 1);
  std::string b = MakeString(size_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sxnm::text::BoundedLevenshteinDistance(a, b, 3));
  }
}
BENCHMARK(BM_BoundedLevenshtein)->Arg(16)->Arg(64)->Arg(128);

void BM_NormalizedEdit(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 3);
  std::string b = MakeString(size_t(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::NormalizedEditSimilarity(a, b));
  }
}
BENCHMARK(BM_NormalizedEdit)->Arg(16)->Arg(64);

void BM_Osa(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 5);
  std::string b = MakeString(size_t(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::OsaDistance(a, b));
  }
}
BENCHMARK(BM_Osa)->Arg(16)->Arg(64);

void BM_JaroWinkler(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 7);
  std::string b = MakeString(size_t(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler)->Arg(16)->Arg(64);

void BM_QGram(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 9);
  std::string b = MakeString(size_t(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::QGramSimilarity(a, b, 3));
  }
}
BENCHMARK(BM_QGram)->Arg(16)->Arg(64);

void BM_Soundex(benchmark::State& state) {
  std::string a = MakeString(16, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::Soundex(a));
  }
}
BENCHMARK(BM_Soundex);

}  // namespace
