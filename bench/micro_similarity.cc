// M1: microbenchmarks for the similarity functions (google-benchmark).
// The sliding window's cost is dominated by φ^OD evaluations, so their
// per-call cost drives the SW curves of Fig. 5.
//
// Usage:
//   micro_similarity [google-benchmark flags]   runs the microbenchmarks
//   micro_similarity --json <path>              writes the edit-distance
//       kernel comparison (classic row-DP vs Myers bit-parallel, ns/op at
//       several string lengths) to <path>; format in docs/BENCHMARKS.md.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "text/edit_distance.h"
#include "text/jaro_winkler.h"
#include "text/myers.h"
#include "text/qgram.h"
#include "text/soundex.h"
#include "util/rng.h"

namespace {

std::string MakeString(size_t length, uint64_t seed) {
  sxnm::util::Rng rng(seed);
  static constexpr char kAlpha[] = "abcdefghijklmnopqrstuvwxyz ";
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(kAlpha[rng.NextBelow(sizeof(kAlpha) - 1)]);
  }
  return s;
}

void BM_Levenshtein(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 1);
  std::string b = MakeString(size_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::LevenshteinDistance(a, b));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MyersDistance(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 1);
  std::string b = MakeString(size_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::MyersDistance(a, b));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_MyersDistance)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MyersBounded(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 1);
  std::string b = MakeString(size_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::MyersBoundedDistance(a, b, 3));
  }
}
BENCHMARK(BM_MyersBounded)->Arg(16)->Arg(64)->Arg(128);

void BM_BoundedLevenshtein(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 1);
  std::string b = MakeString(size_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sxnm::text::BoundedLevenshteinDistance(a, b, 3));
  }
}
BENCHMARK(BM_BoundedLevenshtein)->Arg(16)->Arg(64)->Arg(128);

void BM_NormalizedEdit(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 3);
  std::string b = MakeString(size_t(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::NormalizedEditSimilarity(a, b));
  }
}
BENCHMARK(BM_NormalizedEdit)->Arg(16)->Arg(64);

void BM_Osa(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 5);
  std::string b = MakeString(size_t(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::OsaDistance(a, b));
  }
}
BENCHMARK(BM_Osa)->Arg(16)->Arg(64);

void BM_JaroWinkler(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 7);
  std::string b = MakeString(size_t(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler)->Arg(16)->Arg(64);

void BM_QGram(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 9);
  std::string b = MakeString(size_t(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::QGramSimilarity(a, b, 3));
  }
}
BENCHMARK(BM_QGram)->Arg(16)->Arg(64);

void BM_Soundex(benchmark::State& state) {
  std::string a = MakeString(16, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::Soundex(a));
  }
}
BENCHMARK(BM_Soundex);

// ---------------------------------------------------------------------------
// --json: edit-distance kernel comparison (docs/BENCHMARKS.md).

// Best-of-`repeats` ns/op of `fn(a, b)` over `iters` calls. A handful of
// alternating inputs keeps the branch predictor honest without letting
// the working set leave L1.
template <typename Fn>
double KernelNsPerOp(const std::vector<std::pair<std::string, std::string>>&
                         inputs,
                     int iters, int repeats, Fn fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      const auto& [a, b] = inputs[size_t(i) % inputs.size()];
      benchmark::DoNotOptimize(fn(a, b));
    }
    auto elapsed = std::chrono::duration<double, std::nano>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    double ns = elapsed / iters;
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

int WriteKernelJson(const std::string& path) {
  constexpr size_t kLengths[] = {8, 16, 24, 32, 48, 64, 96, 128, 192, 256};
  constexpr int kRepeats = 5;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  sxnm::bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "micro_similarity");
  json.Field("schema_version", size_t{4});
  json.Field("repeats", size_t{kRepeats});
  json.BeginArray("kernels");
  for (size_t length : kLengths) {
    // Several random same-length pairs; random text over a 27-letter
    // alphabet keeps distances large (the kernels' worst case).
    std::vector<std::pair<std::string, std::string>> inputs;
    for (uint64_t seed = 0; seed < 8; ++seed) {
      inputs.emplace_back(MakeString(length, 2 * seed + 1),
                          MakeString(length, 2 * seed + 2));
    }
    bool match = true;
    for (const auto& [a, b] : inputs) {
      match = match &&
              sxnm::text::MyersDistance(a, b) ==
                  sxnm::text::LevenshteinDistance(a, b);
    }
    // Aim for roughly comparable wall time per length: the DP is
    // quadratic, so scale iterations down with the square of the length.
    int iters = int(std::max<size_t>(2000, 40000000 / (length * length)));
    double classic_ns =
        KernelNsPerOp(inputs, iters, kRepeats, [](const auto& a,
                                                  const auto& b) {
          return sxnm::text::LevenshteinDistance(a, b);
        });
    double myers_ns =
        KernelNsPerOp(inputs, iters, kRepeats, [](const auto& a,
                                                  const auto& b) {
          return sxnm::text::MyersDistance(a, b);
        });
    json.BeginObject();
    json.Field("length", length);
    json.Field("classic_dp_ns", classic_ns);
    json.Field("myers_ns", myers_ns);
    json.Field("speedup", classic_ns / myers_ns);
    json.Field("distances_match", match);
    json.EndObject();
    std::printf("len %3zu: classic %9.1f ns  myers %8.1f ns  (%5.2fx)%s\n",
                length, classic_ns, myers_ns, classic_ns / myers_ns,
                match ? "" : "  DISTANCE MISMATCH");
  }
  json.EndArray();
  json.EndObject();
  std::printf("kernel profile written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = sxnm::bench::ExtractJsonFlag(&argc, argv);
  if (!json_path.empty()) return WriteKernelJson(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
