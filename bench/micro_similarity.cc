// M1: microbenchmarks for the similarity functions (google-benchmark).
// The sliding window's cost is dominated by φ^OD evaluations, so their
// per-call cost drives the SW curves of Fig. 5.
//
// Usage:
//   micro_similarity [google-benchmark flags]   runs the microbenchmarks
//   micro_similarity --json <path>              writes the edit-distance
//       kernel comparison (classic row-DP vs Myers bit-parallel, ns/op at
//       several string lengths) to <path>; format in docs/BENCHMARKS.md.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "sxnm/similarity_measure.h"
#include "text/edit_distance.h"
#include "text/jaro_winkler.h"
#include "text/myers.h"
#include "text/qgram.h"
#include "text/soundex.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace {

std::string MakeString(size_t length, uint64_t seed) {
  sxnm::util::Rng rng(seed);
  static constexpr char kAlpha[] = "abcdefghijklmnopqrstuvwxyz ";
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(kAlpha[rng.NextBelow(sizeof(kAlpha) - 1)]);
  }
  return s;
}

void BM_Levenshtein(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 1);
  std::string b = MakeString(size_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::LevenshteinDistance(a, b));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MyersDistance(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 1);
  std::string b = MakeString(size_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::MyersDistance(a, b));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_MyersDistance)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MyersBounded(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 1);
  std::string b = MakeString(size_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::MyersBoundedDistance(a, b, 3));
  }
}
BENCHMARK(BM_MyersBounded)->Arg(16)->Arg(64)->Arg(128);

void BM_BoundedLevenshtein(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 1);
  std::string b = MakeString(size_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sxnm::text::BoundedLevenshteinDistance(a, b, 3));
  }
}
BENCHMARK(BM_BoundedLevenshtein)->Arg(16)->Arg(64)->Arg(128);

void BM_NormalizedEdit(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 3);
  std::string b = MakeString(size_t(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::NormalizedEditSimilarity(a, b));
  }
}
BENCHMARK(BM_NormalizedEdit)->Arg(16)->Arg(64);

void BM_Osa(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 5);
  std::string b = MakeString(size_t(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::OsaDistance(a, b));
  }
}
BENCHMARK(BM_Osa)->Arg(16)->Arg(64);

void BM_JaroWinkler(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 7);
  std::string b = MakeString(size_t(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler)->Arg(16)->Arg(64);

void BM_QGram(benchmark::State& state) {
  std::string a = MakeString(size_t(state.range(0)), 9);
  std::string b = MakeString(size_t(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::QGramSimilarity(a, b, 3));
  }
}
BENCHMARK(BM_QGram)->Arg(16)->Arg(64);

void BM_Soundex(benchmark::State& state) {
  std::string a = MakeString(16, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sxnm::text::Soundex(a));
  }
}
BENCHMARK(BM_Soundex);

// ---------------------------------------------------------------------------
// Batched SoA pre-filter (sxnm/similarity_measure.h BatchFilter): rows of
// window-pair candidates screened in bulk before the Myers kernel.

struct FilterFixture {
  sxnm::core::CandidateConfig cand;
  sxnm::core::CandidateInstances instances;
  sxnm::core::OdPool pool;
  std::vector<sxnm::core::GkRow> rows;
  std::vector<sxnm::core::OrdinalPair> pairs;

  // `num_rows` OD values between `length`/2 and `length` chars (window
  // neighbours sort near each other but their payloads still differ in
  // size); every fourth row is a light corruption of its predecessor, so
  // the pair population mixes clear rejects with near-duplicates the
  // screen must let through.
  FilterFixture(size_t length, size_t num_rows)
      : cand(sxnm::core::CandidateBuilder("m", "db/m")
                 .Path(1, "t/text()")
                 .Od(1, 1.0)
                 .Key({{1, "C1"}})
                 .OdThreshold(0.9)
                 .Build()
                 .value()) {
    instances.config = &cand;
    instances.elements.resize(num_rows, nullptr);
    instances.eids.resize(num_rows, 0);
    for (size_t i = 0; i < num_rows; ++i) {
      std::string value;
      if (i % 4 == 3 && i > 0) {
        value = rows[i - 1].ods[0];
        value[value.size() / 2] ^= 1;  // one-char edit
      } else {
        size_t len = length / 2 + (i * 7919) % (length / 2 + 1);
        value = MakeString(std::max<size_t>(len, 1), 1000 + i);
      }
      sxnm::core::GkRow row;
      row.ordinal = i;
      row.eid = sxnm::xml::ElementId(i + 1);
      row.ods = {std::move(value)};
      row.norm_ods = {pool.Intern(sxnm::util::ToLower(
          sxnm::util::NormalizeWhitespace(row.ods[0])))};
      rows.push_back(std::move(row));
    }
    for (size_t i = 0; i < num_rows; ++i) {
      for (size_t j = i + 1; j < num_rows; ++j) pairs.push_back({i, j});
    }
  }
};

void BM_BatchFilter(benchmark::State& state) {
  FilterFixture fixture(size_t(state.range(0)), 64);
  sxnm::core::SimilarityMeasure measure(fixture.cand, fixture.instances, {},
                                        &fixture.pool);
  sxnm::core::BatchFilterScratch scratch;
  for (auto _ : state) {
    measure.BatchFilter(fixture.rows, fixture.pairs.data(),
                        fixture.pairs.size(), &scratch);
    benchmark::DoNotOptimize(scratch.reject.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(fixture.pairs.size()));
}
BENCHMARK(BM_BatchFilter)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// ---------------------------------------------------------------------------
// --json: edit-distance kernel comparison (docs/BENCHMARKS.md).

// Best-of-`repeats` ns/op of `fn(a, b)` over `iters` calls. A handful of
// alternating inputs keeps the branch predictor honest without letting
// the working set leave L1.
template <typename Fn>
double KernelNsPerOp(const std::vector<std::pair<std::string, std::string>>&
                         inputs,
                     int iters, int repeats, Fn fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      const auto& [a, b] = inputs[size_t(i) % inputs.size()];
      benchmark::DoNotOptimize(fn(a, b));
    }
    auto elapsed = std::chrono::duration<double, std::nano>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    double ns = elapsed / iters;
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

int WriteKernelJson(const std::string& path) {
  constexpr size_t kLengths[] = {8, 16, 24, 32, 48, 64, 96, 128, 192, 256};
  constexpr int kRepeats = 5;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  sxnm::bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "micro_similarity");
  json.Field("schema_version", size_t{9});
  json.Field("repeats", size_t{kRepeats});
  json.BeginArray("kernels");
  for (size_t length : kLengths) {
    // Several random same-length pairs; random text over a 27-letter
    // alphabet keeps distances large (the kernels' worst case).
    std::vector<std::pair<std::string, std::string>> inputs;
    for (uint64_t seed = 0; seed < 8; ++seed) {
      inputs.emplace_back(MakeString(length, 2 * seed + 1),
                          MakeString(length, 2 * seed + 2));
    }
    bool match = true;
    for (const auto& [a, b] : inputs) {
      match = match &&
              sxnm::text::MyersDistance(a, b) ==
                  sxnm::text::LevenshteinDistance(a, b);
    }
    // Aim for roughly comparable wall time per length: the DP is
    // quadratic, so scale iterations down with the square of the length.
    int iters = int(std::max<size_t>(2000, 40000000 / (length * length)));
    double classic_ns =
        KernelNsPerOp(inputs, iters, kRepeats, [](const auto& a,
                                                  const auto& b) {
          return sxnm::text::LevenshteinDistance(a, b);
        });
    double myers_ns =
        KernelNsPerOp(inputs, iters, kRepeats, [](const auto& a,
                                                  const auto& b) {
          return sxnm::text::MyersDistance(a, b);
        });
    json.BeginObject();
    json.Field("length", length);
    json.Field("classic_dp_ns", classic_ns);
    json.Field("myers_ns", myers_ns);
    json.Field("speedup", classic_ns / myers_ns);
    json.Field("distances_match", match);
    json.EndObject();
    std::printf("len %3zu: classic %9.1f ns  myers %8.1f ns  (%5.2fx)%s\n",
                length, classic_ns, myers_ns, classic_ns / myers_ns,
                match ? "" : "  DISTANCE MISMATCH");
  }
  json.EndArray();

  // Batched pre-filter profile: how much of a random-pair population the
  // SoA screen rejects before the kernel, what the screen costs per pair
  // next to one CompareFast call, and a soundness audit (every rejected
  // pair re-checked against the kernel).
  json.BeginObject("filters");
  json.Field("backend", sxnm::util::simd::BackendName());
  json.BeginArray("lengths");
  for (size_t length : {size_t{8}, size_t{16}, size_t{32}, size_t{64}}) {
    FilterFixture fixture(length, 64);
    sxnm::core::SimilarityMeasure measure(fixture.cand, fixture.instances,
                                          {}, &fixture.pool);
    sxnm::core::BatchFilterScratch scratch;
    const size_t num_pairs = fixture.pairs.size();

    double filter_ns = 0.0;
    for (int r = 0; r < kRepeats; ++r) {
      auto start = std::chrono::steady_clock::now();
      measure.BatchFilter(fixture.rows, fixture.pairs.data(), num_pairs,
                          &scratch);
      benchmark::DoNotOptimize(scratch.reject.data());
      double ns = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - start)
                      .count() /
                  double(num_pairs);
      if (r == 0 || ns < filter_ns) filter_ns = ns;
    }

    size_t rejects = 0;
    bool sound = true;
    for (size_t p = 0; p < num_pairs; ++p) {
      if (!scratch.reject[p]) continue;
      ++rejects;
      sound = sound && !measure
                            .CompareFast(fixture.rows[fixture.pairs[p].first],
                                         fixture.rows[fixture.pairs[p].second])
                            .is_duplicate;
    }

    double kernel_ns = 0.0;
    for (int r = 0; r < kRepeats; ++r) {
      auto start = std::chrono::steady_clock::now();
      for (const auto& [a, b] : fixture.pairs) {
        benchmark::DoNotOptimize(
            measure.CompareFast(fixture.rows[a], fixture.rows[b]));
      }
      double ns = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - start)
                      .count() /
                  double(num_pairs);
      if (r == 0 || ns < kernel_ns) kernel_ns = ns;
    }

    json.BeginObject();
    json.Field("length", length);
    json.Field("pairs", num_pairs);
    json.Field("reject_rate", double(rejects) / double(num_pairs));
    json.Field("filter_ns_per_pair", filter_ns);
    json.Field("kernel_ns_per_pair", kernel_ns);
    json.Field("sound", sound);
    json.EndObject();
    std::printf(
        "filter len %3zu: reject %5.1f%%  screen %7.2f ns/pair  kernel "
        "%8.1f ns/pair%s\n",
        length, 100.0 * double(rejects) / double(num_pairs), filter_ns,
        kernel_ns, sound ? "" : "  UNSOUND REJECT");
  }
  json.EndArray();
  json.EndObject();

  json.EndObject();
  std::printf("kernel profile written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = sxnm::bench::ExtractJsonFlag(&argc, argv);
  if (!json_path.empty()) return WriteKernelJson(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
