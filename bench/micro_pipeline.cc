// M3: microbenchmarks for the SXNM pipeline stages — key generation,
// GK sorting, one full detector run, and the transitive closure — on
// generated movie data. These are the building blocks of Fig. 5's curves.
//
// Usage:
//   micro_pipeline [google-benchmark flags]   runs the microbenchmarks
//   micro_pipeline --json <path>              writes the pipeline engine
//       profile (phase timings + comparison counts for the serial legacy
//       kernels, serial fast kernels, and multi-threaded fast kernels)
//       to <path> instead; format in docs/BENCHMARKS.md.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "obs/profiler.h"
#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "persist/io.h"
#include "sxnm/candidate_tree.h"
#include "sxnm/checkpoint.h"
#include "sxnm/detector.h"
#include "sxnm/key_generation.h"
#include "sxnm/transitive_closure.h"
#include "util/fault_injection.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace {

sxnm::xml::Document DirtyMovies(size_t n) {
  sxnm::datagen::MovieDataOptions options;
  options.num_movies = n;
  options.seed = 7;
  sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(options);
  return sxnm::datagen::MakeDirty(clean,
                                  sxnm::datagen::DataSet1DirtyPreset(1))
      .value();
}

void BM_KeyGeneration(benchmark::State& state) {
  sxnm::xml::Document doc = DirtyMovies(size_t(state.range(0)));
  auto config = sxnm::datagen::MovieConfig(10).value();
  auto forest = sxnm::core::CandidateForest::Build(config, doc).value();
  const auto& instances = forest.candidates()[0];
  for (auto _ : state) {
    auto gk = sxnm::core::GenerateKeys(*instances.config, instances);
    benchmark::DoNotOptimize(gk.rows.size());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(instances.NumInstances()));
}
BENCHMARK(BM_KeyGeneration)->Arg(500)->Arg(2000);

void BM_GkSort(benchmark::State& state) {
  sxnm::xml::Document doc = DirtyMovies(2000);
  auto config = sxnm::datagen::MovieConfig(10).value();
  auto forest = sxnm::core::CandidateForest::Build(config, doc).value();
  auto gk = sxnm::core::GenerateKeys(*forest.candidates()[0].config,
                                     forest.candidates()[0]);
  for (auto _ : state) {
    auto order = gk.SortedOrder(0);
    benchmark::DoNotOptimize(order.size());
  }
}
BENCHMARK(BM_GkSort);

void BM_DetectorFullRun(benchmark::State& state) {
  sxnm::xml::Document doc = DirtyMovies(size_t(state.range(0)));
  sxnm::core::Detector detector(sxnm::datagen::MovieConfig(10).value());
  for (auto _ : state) {
    auto result = detector.Run(doc);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_DetectorFullRun)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_TransitiveClosure(benchmark::State& state) {
  // Random pair soup over n instances.
  size_t n = size_t(state.range(0));
  sxnm::util::Rng rng(3);
  std::vector<sxnm::core::OrdinalPair> pairs;
  for (size_t i = 0; i < n / 2; ++i) {
    size_t a = rng.NextBelow(n);
    size_t b = rng.NextBelow(n);
    if (a != b) pairs.push_back(std::minmax(a, b));
  }
  for (auto _ : state) {
    auto clusters = sxnm::core::ComputeTransitiveClosure(n, pairs);
    benchmark::DoNotOptimize(clusters.num_clusters());
  }
}
BENCHMARK(BM_TransitiveClosure)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CandidateForestBuild(benchmark::State& state) {
  sxnm::xml::Document doc = DirtyMovies(size_t(state.range(0)));
  auto config = sxnm::datagen::MovieScalabilityConfig(3).value();
  for (auto _ : state) {
    auto forest = sxnm::core::CandidateForest::Build(config, doc);
    benchmark::DoNotOptimize(forest.ok());
  }
}
BENCHMARK(BM_CandidateForestBuild)->Arg(500)->Arg(2000);

// ---------------------------------------------------------------------------
// --json: pipeline engine profile (docs/BENCHMARKS.md).

struct EngineVariant {
  const char* name;
  size_t num_threads;
  bool fast_paths;
  bool dag;    // subtree hash-consing + identical-subtree shortcut
  bool batch;  // batched SoA pre-filter (requires fast_paths)
};

struct EngineProfile {
  double kg = 0, sw = 0, tc = 0;
  size_t duplicate_pairs = 0;
  // Engine metrics of the first repeat (counts are run-deterministic;
  // only the timings vary, and those take the best-of-repeats).
  sxnm::obs::MetricsSnapshot metrics;
  // Governance outcome of the first repeat: the bench runs without
  // limits, so this documents that the ungoverned path sheds nothing.
  sxnm::core::DegradationReport degradation;

  size_t comparisons() const {
    return size_t(metrics.CounterOr("sw.unique_comparisons"));
  }
};

// Best-of-`repeats` phase timings of one engine variant over `doc`.
// Comparison counts come from the observability registry rather than
// hand-maintained bench counters.
EngineProfile ProfileVariant(const sxnm::xml::Document& doc,
                             const sxnm::core::Config& base_config,
                             const EngineVariant& variant, int repeats) {
  sxnm::core::Config config = base_config;
  config.set_num_threads(variant.num_threads);
  config.mutable_observability().metrics = true;
  for (auto& cand : config.mutable_candidates()) {
    cand.enable_fast_paths = variant.fast_paths;
    cand.dag_compression = variant.dag;
    cand.batch_scoring = variant.batch;
  }
  sxnm::core::Detector detector(std::move(config));

  EngineProfile best;
  for (int r = 0; r < repeats; ++r) {
    auto result = detector.Run(doc);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      std::exit(1);
    }
    if (r == 0) {
      best.metrics = result->metrics;
      best.degradation = result->degradation;
      best.duplicate_pairs = result->Find("movie")->duplicate_pairs.size();
      best.kg = result->KeyGenerationSeconds();
      best.sw = result->SlidingWindowSeconds();
      best.tc = result->TransitiveClosureSeconds();
    } else {
      best.kg = std::min(best.kg, result->KeyGenerationSeconds());
      best.sw = std::min(best.sw, result->SlidingWindowSeconds());
      best.tc = std::min(best.tc, result->TransitiveClosureSeconds());
    }
  }
  return best;
}

// One arm of the telemetry overhead A/B: best-of-repeats wall-clock of a
// full detector run, with the periodic sampler either streaming to
// `telemetry_path` or (empty path) off.
struct TelemetryProbe {
  double seconds = 0;
  size_t duplicate_pairs = 0;
  size_t samples = 0;  // sample records in the stream (on-arm only)
};

// Runs the off arm and the on arm strictly interleaved (off, on, off,
// on, ...) and reports each arm's MEDIAN wall clock. Interleaving makes
// both arms sample the same frequency/scheduler drift instead of each
// arm eating a different phase of it, and the median shrugs off the
// occasional descheduled run that best-of-N turns into a coin flip.
std::pair<TelemetryProbe, TelemetryProbe> ProfileTelemetryAb(
    const sxnm::xml::Document& doc, const sxnm::core::Config& base_config,
    const std::string& telemetry_path, double interval_ms, int repeats) {
  auto make_detector = [&](const std::string& path) {
    sxnm::core::Config config = base_config;
    config.mutable_observability().metrics = true;
    config.mutable_observability().telemetry_path = path;
    config.mutable_observability().telemetry_interval_ms = interval_ms;
    return sxnm::core::Detector(std::move(config));
  };
  sxnm::core::Detector off_detector = make_detector("");
  sxnm::core::Detector on_detector = make_detector(telemetry_path);

  TelemetryProbe off;
  TelemetryProbe on;
  std::vector<double> off_times;
  std::vector<double> on_times;
  for (int r = 0; r < repeats; ++r) {
    for (bool with_telemetry : {false, true}) {
      sxnm::core::Detector& detector =
          with_telemetry ? on_detector : off_detector;
      auto start = std::chrono::steady_clock::now();
      auto result = detector.Run(doc);
      double seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        std::exit(1);
      }
      TelemetryProbe& probe = with_telemetry ? on : off;
      (with_telemetry ? on_times : off_times).push_back(seconds);
      probe.duplicate_pairs = result->Find("movie")->duplicate_pairs.size();
    }
  }
  std::sort(off_times.begin(), off_times.end());
  std::sort(on_times.begin(), on_times.end());
  off.seconds = off_times[off_times.size() / 2];
  on.seconds = on_times[on_times.size() / 2];
  // Each run truncates the stream, so this counts the last repeat's.
  std::ifstream in(telemetry_path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"type\": \"sample\"") != std::string::npos) {
      ++on.samples;
    }
  }
  return {off, on};
}

// One arm pair of the sampling-profiler overhead A/B, interleaved like
// ProfileTelemetryAb (off, on, off, on, ...) with per-arm medians. The
// on arm additionally keeps the last repeat's span-attributed profile
// for the JSON block's sample table.
struct ProfilerProbe {
  double seconds = 0;
  size_t duplicate_pairs = 0;
  sxnm::obs::CpuProfile profile;  // on arm only
};

std::pair<ProfilerProbe, ProfilerProbe> ProfileProfilerAb(
    const sxnm::xml::Document& doc, const sxnm::core::Config& base_config,
    const std::string& folded_path, double hz, int repeats) {
  auto make_detector = [&](const std::string& path) {
    sxnm::core::Config config = base_config;
    config.mutable_observability().metrics = true;
    config.mutable_observability().profile_path = path;
    config.mutable_observability().profile_hz = hz;
    return sxnm::core::Detector(std::move(config));
  };
  sxnm::core::Detector off_detector = make_detector("");
  sxnm::core::Detector on_detector = make_detector(folded_path);

  ProfilerProbe off;
  ProfilerProbe on;
  std::vector<double> off_times;
  std::vector<double> on_times;
  for (int r = 0; r < repeats; ++r) {
    for (bool with_profiler : {false, true}) {
      sxnm::core::Detector& detector =
          with_profiler ? on_detector : off_detector;
      auto start = std::chrono::steady_clock::now();
      auto result = detector.Run(doc);
      double seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        std::exit(1);
      }
      ProfilerProbe& probe = with_profiler ? on : off;
      (with_profiler ? on_times : off_times).push_back(seconds);
      probe.duplicate_pairs = result->Find("movie")->duplicate_pairs.size();
      if (with_profiler) probe.profile = std::move(result->profile);
    }
  }
  std::sort(off_times.begin(), off_times.end());
  std::sort(on_times.begin(), on_times.end());
  off.seconds = off_times[off_times.size() / 2];
  on.seconds = on_times[on_times.size() / 2];
  return {off, on};
}

// Snapshot cost at the post-KG durability point: the GK relation (rows,
// keys, interned OD pool) dominates snapshot size, so this measures the
// worst-case frame payload a checkpoint of a `movies`-sized corpus
// commits and reloads.
struct SnapshotProbe {
  uint64_t bytes = 0;
  uint64_t frames = 0;
  double write_ms = 0;
  double load_ms = 0;
};

SnapshotProbe ProfileSnapshot(size_t movies, const std::string& path) {
  sxnm::xml::Document doc = DirtyMovies(movies);
  auto config = sxnm::datagen::MovieConfig(10).value();
  auto forest = sxnm::core::CandidateForest::Build(config, doc).value();
  std::vector<sxnm::core::GkTable> gk;
  std::vector<char> kg_done;
  for (const auto& cand : forest.candidates()) {
    gk.push_back(sxnm::core::GenerateKeys(*cand.config, cand));
    kg_done.push_back(1);
  }
  sxnm::core::EngineSnapshotView view;
  view.fingerprint.config_fingerprint = sxnm::core::ConfigFingerprint(config);
  view.fingerprint.doc_fingerprint = sxnm::core::DocumentFingerprint(doc);
  view.gk = &gk;
  view.kg_done = &kg_done;

  SnapshotProbe probe;
  probe.write_ms = 1e100;
  probe.load_ms = 1e100;
  constexpr int kProbeRepeats = 5;
  for (int r = 0; r < kProbeRepeats; ++r) {
    sxnm::core::SnapshotWriteStats stats;
    auto start = std::chrono::steady_clock::now();
    auto status = sxnm::core::SaveEngineSnapshot(view, path, &stats);
    std::chrono::duration<double, std::milli> write =
        std::chrono::steady_clock::now() - start;
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      std::exit(1);
    }
    probe.bytes = stats.bytes;
    probe.frames = stats.frames;
    probe.write_ms = std::min(probe.write_ms, write.count());

    start = std::chrono::steady_clock::now();
    auto loaded = sxnm::core::LoadEngineSnapshot(path, view.fingerprint);
    std::chrono::duration<double, std::milli> load =
        std::chrono::steady_clock::now() - start;
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      std::exit(1);
    }
    probe.load_ms = std::min(probe.load_ms, load.count());
  }
  sxnm::persist::RemoveFile(path);
  return probe;
}

// One arm of the checkpoint overhead A/B: best-of-repeats wall-clock of
// a full detector run with every-pass checkpointing on (`ckpt_path`
// non-empty) or off. Phase timers exclude the snapshot commits, so this
// measures the real wall, not the phase sum.
std::pair<double, size_t> ProfileCheckpointArm(
    const sxnm::xml::Document& doc, const sxnm::core::Config& base_config,
    const std::string& ckpt_path, int repeats) {
  sxnm::core::Config config = base_config;
  config.mutable_checkpoint().path = ckpt_path;
  config.mutable_checkpoint().every_pass = !ckpt_path.empty();
  sxnm::core::Detector detector(std::move(config));
  double best = 1e100;
  size_t pairs = 0;
  for (int r = 0; r < repeats; ++r) {
    auto start = std::chrono::steady_clock::now();
    auto result = detector.Run(doc);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      std::exit(1);
    }
    best = std::min(best, wall.count());
    pairs = result->Find("movie")->duplicate_pairs.size();
  }
  return {best, pairs};
}

// Title-only OD at a high threshold over the repeated-subtree corpus:
// the batched filter's length/byte screens can prove most unrelated
// neighbor pairs below 0.9, and the DAG shortcut replays the memoized
// verdict for the exact copies.
sxnm::core::Config RepeatedSubtreeConfig() {
  auto movie =
      sxnm::core::CandidateBuilder("movie", "movie_database/movies/movie")
          .Path(1, "title/text()")
          .Path(2, "@year")
          .Path(3, "@length")
          .Od(1, 1.0)
          .Key({{1, "K1-K5"}, {2, "D3,D4"}})
          .Key({{2, "D3,D4"}, {1, "K1,K2"}})
          .Key({{3, "D1,D2"}, {1, "K1,K2"}})
          .Window(30)
          .OdThreshold(0.9)
          .Mode(sxnm::core::CombineMode::kOdOnly)
          .Build();
  if (!movie.ok()) {
    std::cerr << movie.status().ToString() << "\n";
    std::exit(1);
  }
  sxnm::core::Config config;
  if (auto status = config.AddCandidate(std::move(movie).value());
      !status.ok()) {
    std::cerr << status.ToString() << "\n";
    std::exit(1);
  }
  return config;
}

int WritePipelineJson(const std::string& path) {
  constexpr size_t kMovies = 2000;
  constexpr int kRepeats = 3;
  sxnm::xml::Document doc = DirtyMovies(kMovies);
  auto movie_config = sxnm::datagen::MovieConfig(10).value();

  // "serial_legacy" is the pre-fast-path engine: one thread, set-based
  // descendant Jaccard, unbounded edit distances, per-pair OD
  // normalization, no subtree interning. The other variants isolate, in
  // order: the kernel fast paths, the DAG shortcut + batched SoA
  // pre-filter on top of them, and the thread scaling on top of that.
  const EngineVariant variants[] = {
      {"serial_legacy", 1, false, false, false},
      {"serial_fast", 1, true, false, false},
      {"serial_dag_batch", 1, true, true, true},
      {"threads4_fast", 4, true, true, true},
  };

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  sxnm::bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "micro_pipeline");
  json.Field("schema_version", size_t{9});
  json.BeginObject("dataset");
  json.Field("generator", "movies+DataSet1DirtyPreset");
  json.Field("clean_movies", kMovies);
  json.Field("window", size_t{10});
  json.Field("repeats", size_t{kRepeats});
  json.EndObject();
  json.Field("hardware_threads", sxnm::util::HardwareThreads());

  EngineProfile baseline;
  EngineProfile last;
  json.BeginArray("engines");
  for (const EngineVariant& variant : variants) {
    EngineProfile profile = ProfileVariant(doc, movie_config, variant, kRepeats);
    if (variant.num_threads == 1 && !variant.fast_paths) baseline = profile;
    last = profile;

    json.BeginObject();
    json.Field("name", variant.name);
    json.Field("num_threads", variant.num_threads);
    json.Field("fast_paths", variant.fast_paths);
    json.Field("dag", variant.dag);
    json.Field("batch_scoring", variant.batch);
    json.BeginObject("phases");
    json.Field("key_generation_s", profile.kg);
    json.Field("sliding_window_s", profile.sw);
    json.Field("transitive_closure_s", profile.tc);
    json.Field("duplicate_detection_s", profile.sw + profile.tc);
    json.EndObject();
    json.Field("comparisons", profile.comparisons());
    json.Field("movie_duplicate_pairs", profile.duplicate_pairs);
    if (baseline.sw > 0) {
      json.Field("sliding_window_speedup_vs_serial_legacy",
                 baseline.sw / profile.sw);
    }
    sxnm::bench::WriteMetricsField(json, "metrics", profile.metrics);
    json.BeginObject("degradation");
    json.Field("degraded", profile.degradation.degraded);
    json.Field("reason",
               sxnm::util::StatusCodeName(profile.degradation.reason));
    json.Field("comparison_budget", profile.degradation.comparison_budget);
    json.Field("passes_skipped", profile.degradation.PassesSkipped());
    json.Field("passes_shrunk", profile.degradation.PassesShrunk());
    json.Field("rows_skipped", profile.degradation.RowsSkipped());
    json.Field("pairs_elided", profile.degradation.PairsElided());
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();

  // Repeated-subtree corpus: copy-paste-heavy data (70% of created
  // duplicates byte-exact), dag+batch off vs on, isolating the DAG
  // shortcut and the batched pre-filter against the plain fast kernels.
  constexpr size_t kRepeatedMovies = 1500;
  sxnm::datagen::MovieDataOptions repeated_options;
  repeated_options.num_movies = kRepeatedMovies;
  repeated_options.seed = 11;
  sxnm::xml::Document repeated =
      sxnm::datagen::MakeDirty(
          sxnm::datagen::GenerateCleanMovies(repeated_options),
          sxnm::datagen::RepeatedSubtreePreset(11))
          .value();
  sxnm::core::Config repeated_config = RepeatedSubtreeConfig();
  // The off arm runs first, straight after corpus generation, and eats
  // the CPU-frequency ramp: one untimed warm-up plus a deeper best-of
  // keeps the recorded ratio from drifting with scheduler noise.
  constexpr int kAbRepeats = 7;
  (void)ProfileVariant(repeated, repeated_config,
                       {"warmup", 1, true, false, false}, 1);
  EngineProfile off =
      ProfileVariant(repeated, repeated_config,
                     {"dag_batch_off", 1, true, false, false}, kAbRepeats);
  EngineProfile on =
      ProfileVariant(repeated, repeated_config,
                     {"dag_batch_on", 1, true, true, true}, kAbRepeats);
  json.BeginObject("repeated_subtree");
  json.Field("generator", "movies+RepeatedSubtreePreset");
  json.Field("clean_movies", kRepeatedMovies);
  json.Field("window", size_t{30});
  json.Field("od_threshold", 0.9);
  json.Field("sliding_window_off_s", off.sw);
  json.Field("sliding_window_on_s", on.sw);
  json.Field("sliding_window_speedup", off.sw / on.sw);
  json.Field("duplicate_pairs_off", off.duplicate_pairs);
  json.Field("duplicate_pairs_on", on.duplicate_pairs);
  json.Field("dag_equal", size_t(on.metrics.CounterOr("sw.dag_equal")));
  json.Field("batch_rejects",
             size_t(on.metrics.CounterOr("sw.batch_rejects")));
  json.Field("subtree_pool_nodes",
             size_t(on.metrics.CounterOr("kg.subtree_pool_nodes")));
  json.Field("subtree_pool_bytes",
             size_t(on.metrics.CounterOr("kg.subtree_pool_bytes")));
  json.EndObject();

  // Live-telemetry overhead A/B: the sampler only reads the registry, so
  // the detection output must be identical with it on, and the wall-clock
  // cost at the default interval must stay under 2%
  // (tools/check_bench_json.py enforces both). The sampler's cost is
  // per-run fixed (worker spawn/join, stream creation, final sample)
  // plus per-tick, so the probe uses a corpus big enough for a run to
  // span several sampling intervals — on a short run the fixed cost is
  // all you would measure, and no real monitoring target is that short.
  constexpr size_t kTelemetryMovies = 12000;
  sxnm::datagen::MovieDataOptions tlm_options;
  tlm_options.num_movies = kTelemetryMovies;
  tlm_options.seed = 7;
  sxnm::xml::Document tlm_doc =
      sxnm::datagen::MakeDirty(
          sxnm::datagen::GenerateCleanMovies(tlm_options),
          sxnm::datagen::DataSet1DirtyPreset(7))
          .value();
  constexpr double kTelemetryIntervalMs = 250.0;
  std::string tlm_path = path + ".tlm.ndjsonl";
  constexpr int kTelemetryRepeats = 9;
  auto [tlm_off, tlm_on] = ProfileTelemetryAb(
      tlm_doc, movie_config, tlm_path, kTelemetryIntervalMs, kTelemetryRepeats);
  std::remove(tlm_path.c_str());
  json.BeginObject("telemetry");
  json.Field("interval_ms", kTelemetryIntervalMs);
  json.Field("repeats", size_t{kTelemetryRepeats});
  json.Field("clean_movies", kTelemetryMovies);
  json.Field("window", size_t{10});
  json.Field("samples", tlm_on.samples);
  json.Field("telemetry_off_s", tlm_off.seconds);
  json.Field("telemetry_on_s", tlm_on.seconds);
  json.Field("overhead_pct", (tlm_on.seconds - tlm_off.seconds) /
                                 tlm_off.seconds * 100.0);
  json.Field("duplicate_pairs_off", tlm_off.duplicate_pairs);
  json.Field("duplicate_pairs_on", tlm_on.duplicate_pairs);
  json.EndObject();

  // Sampling-profiler overhead A/B (schema version 9): the profiler is
  // timer-driven and its handler only snapshots a per-thread span array
  // into a ring buffer, so detection must be bit-identical with it on
  // and the wall-clock cost at the default 97 Hz must stay under 3%
  // (tools/check_bench_json.py enforces both). Reuses the telemetry
  // corpus: long enough for hundreds of samples to land.
  constexpr double kProfileHz = 97.0;
  constexpr int kProfileRepeats = 9;
  std::string folded_path = path + ".folded";
  auto [prof_off, prof_on] = ProfileProfilerAb(
      tlm_doc, movie_config, folded_path, kProfileHz, kProfileRepeats);
  std::remove(folded_path.c_str());
  json.BeginObject("profile");
  json.Field("hz", kProfileHz);
  json.Field("backend", prof_on.profile.backend);
  json.Field("repeats", size_t{kProfileRepeats});
  json.Field("clean_movies", kTelemetryMovies);
  json.Field("window", size_t{10});
  json.Field("samples", size_t{prof_on.profile.total_samples});
  json.Field("dropped_samples", size_t{prof_on.profile.dropped_samples});
  json.Field("profile_off_s", prof_off.seconds);
  json.Field("profile_on_s", prof_on.seconds);
  json.Field("overhead_pct", (prof_on.seconds - prof_off.seconds) /
                                 prof_off.seconds * 100.0);
  json.Field("duplicate_pairs_off", prof_off.duplicate_pairs);
  json.Field("duplicate_pairs_on", prof_on.duplicate_pairs);
  json.BeginArray("top_spans");
  {
    size_t emitted = 0;
    for (const auto& entry : prof_on.profile.entries) {
      if (emitted++ == 10) break;
      json.BeginObject();
      json.Field("path", entry.path);
      json.Field("self_samples", size_t{entry.self_samples});
      json.Field("total_samples", size_t{entry.total_samples});
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();

  // Checkpoint block (schema version 7): (a) snapshot size and
  // write/load cost at two corpus scales, (b) wall-clock overhead of
  // every-pass checkpointing vs the same run cold — must stay within 5%,
  // check_bench_json.py enforces it — and (c) a fault-injected
  // interrupt + resume proving the persist.* counters and that resumed
  // output equals the cold run.
  SnapshotProbe snap_1k = ProfileSnapshot(1000, path + ".ckpt1k");
  SnapshotProbe snap_10k = ProfileSnapshot(10000, path + ".ckpt10k");
  json.BeginObject("checkpoint");
  json.BeginArray("snapshots");
  for (const auto& [movies, probe] :
       {std::pair<size_t, const SnapshotProbe&>{1000, snap_1k},
        {10000, snap_10k}}) {
    json.BeginObject();
    json.Field("clean_movies", movies);
    json.Field("snapshot_bytes", size_t{probe.bytes});
    json.Field("frames", size_t{probe.frames});
    json.Field("write_ms", probe.write_ms);
    json.Field("load_ms", probe.load_ms);
    json.EndObject();
  }
  json.EndArray();

  // The overhead A/B runs a corpus/window sized like the long jobs
  // checkpointing exists for: a snapshot commit costs a fixed ~tens of
  // ms (encode + checksum + fsync), so on a sub-100ms toy run it reads
  // as a huge percentage while on any run worth checkpointing it
  // vanishes. 12k movies at window 30 keeps the bench honest without
  // minutes of wall-clock.
  constexpr int kCkptRepeats = 5;
  constexpr size_t kCkptWindow = 30;
  auto ckpt_ab_config = sxnm::datagen::MovieConfig(kCkptWindow).value();
  std::string ckpt_path = path + ".ckpt";
  sxnm::persist::RemoveFile(ckpt_path);
  auto [ckpt_off_s, ckpt_off_pairs] =
      ProfileCheckpointArm(tlm_doc, ckpt_ab_config, "", kCkptRepeats);
  auto [ckpt_on_s, ckpt_on_pairs] =
      ProfileCheckpointArm(tlm_doc, ckpt_ab_config, ckpt_path, kCkptRepeats);
  json.BeginObject("overhead");
  json.Field("clean_movies", kTelemetryMovies);
  json.Field("window", kCkptWindow);
  json.Field("repeats", size_t{kCkptRepeats});
  json.Field("checkpoint_off_s", ckpt_off_s);
  json.Field("checkpoint_on_s", ckpt_on_s);
  json.Field("overhead_pct", (ckpt_on_s - ckpt_off_s) / ckpt_off_s * 100.0);
  json.Field("duplicate_pairs_off", ckpt_off_pairs);
  json.Field("duplicate_pairs_on", ckpt_on_pairs);
  json.EndObject();

  // Interrupt the multi-level scalability config entering its final
  // window pass (detector.pass fails after the level-1 commit landed),
  // then rerun: the second run must load the durable level-1 checkpoint
  // and finish with output identical to a cold run.
  auto scal_config = sxnm::datagen::MovieScalabilityConfig(5).value();
  scal_config.mutable_observability().metrics = true;
  auto cold = sxnm::core::Detector(scal_config).Run(doc);
  if (!cold.ok()) {
    std::cerr << cold.status().ToString() << "\n";
    return 1;
  }
  sxnm::core::Config resume_config = scal_config;
  resume_config.mutable_checkpoint().path = ckpt_path;
  resume_config.mutable_checkpoint().every_pass = true;
  sxnm::persist::RemoveFile(ckpt_path);
  sxnm::util::FaultInjector::Instance().Arm("detector.pass", 3);
  auto interrupted = sxnm::core::Detector(resume_config).Run(doc);
  sxnm::util::FaultInjector::Instance().DisarmAll();
  if (interrupted.ok()) {
    std::cerr << "checkpoint resume probe: interrupt arm did not fire\n";
    return 1;
  }
  auto resumed = sxnm::core::Detector(resume_config).Run(doc);
  if (!resumed.ok()) {
    std::cerr << resumed.status().ToString() << "\n";
    return 1;
  }
  sxnm::persist::RemoveFile(ckpt_path + ".tmp");
  json.BeginObject("resume");
  json.Field("clean_movies", kMovies);
  json.Field("duplicate_pairs_cold",
             cold->Find("movie")->duplicate_pairs.size());
  json.Field("duplicate_pairs_resumed",
             resumed->Find("movie")->duplicate_pairs.size());
  json.BeginObject("counters");
  for (const char* name :
       {"persist.resume_loads", "persist.resume_levels_restored",
        "persist.snapshot_writes", "persist.snapshot_bytes_total"}) {
    json.Field(name, size_t(resumed->metrics.CounterOr(name)));
  }
  json.EndObject();
  json.EndObject();
  json.EndObject();
  json.EndObject();

  std::printf("pipeline profile written to %s\n", path.c_str());
  std::printf("checkpoint overhead: off %.4fs -> on %.4fs (%+.2f%%)\n",
              ckpt_off_s, ckpt_on_s,
              (ckpt_on_s - ckpt_off_s) / ckpt_off_s * 100.0);
  std::printf("telemetry overhead: off %.4fs -> on %.4fs (%+.2f%%)\n",
              tlm_off.seconds, tlm_on.seconds,
              (tlm_on.seconds - tlm_off.seconds) / tlm_off.seconds * 100.0);
  std::printf("profiler overhead:  off %.4fs -> on %.4fs (%+.2f%%), "
              "%llu samples via %s\n",
              prof_off.seconds, prof_on.seconds,
              (prof_on.seconds - prof_off.seconds) / prof_off.seconds * 100.0,
              static_cast<unsigned long long>(prof_on.profile.total_samples),
              prof_on.profile.backend.c_str());
  std::printf("SW: serial_legacy %.4fs -> threads4_fast %.4fs (%.2fx)\n",
              baseline.sw, last.sw, baseline.sw / last.sw);
  std::printf("repeated-subtree SW: off %.4fs -> on %.4fs (%.2fx)\n", off.sw,
              on.sw, off.sw / on.sw);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = sxnm::bench::ExtractJsonFlag(&argc, argv);
  if (!json_path.empty()) return WritePipelineJson(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
