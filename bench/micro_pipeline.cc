// M3: microbenchmarks for the SXNM pipeline stages — key generation,
// GK sorting, one full detector run, and the transitive closure — on
// generated movie data. These are the building blocks of Fig. 5's curves.

#include <benchmark/benchmark.h>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "sxnm/candidate_tree.h"
#include "sxnm/detector.h"
#include "sxnm/key_generation.h"
#include "sxnm/transitive_closure.h"
#include "util/rng.h"

namespace {

sxnm::xml::Document DirtyMovies(size_t n) {
  sxnm::datagen::MovieDataOptions options;
  options.num_movies = n;
  options.seed = 7;
  sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(options);
  return sxnm::datagen::MakeDirty(clean,
                                  sxnm::datagen::DataSet1DirtyPreset(1))
      .value();
}

void BM_KeyGeneration(benchmark::State& state) {
  sxnm::xml::Document doc = DirtyMovies(size_t(state.range(0)));
  auto config = sxnm::datagen::MovieConfig(10).value();
  auto forest = sxnm::core::CandidateForest::Build(config, doc).value();
  const auto& instances = forest.candidates()[0];
  for (auto _ : state) {
    auto gk = sxnm::core::GenerateKeys(*instances.config, instances);
    benchmark::DoNotOptimize(gk.rows.size());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(instances.NumInstances()));
}
BENCHMARK(BM_KeyGeneration)->Arg(500)->Arg(2000);

void BM_GkSort(benchmark::State& state) {
  sxnm::xml::Document doc = DirtyMovies(2000);
  auto config = sxnm::datagen::MovieConfig(10).value();
  auto forest = sxnm::core::CandidateForest::Build(config, doc).value();
  auto gk = sxnm::core::GenerateKeys(*forest.candidates()[0].config,
                                     forest.candidates()[0]);
  for (auto _ : state) {
    auto order = gk.SortedOrder(0);
    benchmark::DoNotOptimize(order.size());
  }
}
BENCHMARK(BM_GkSort);

void BM_DetectorFullRun(benchmark::State& state) {
  sxnm::xml::Document doc = DirtyMovies(size_t(state.range(0)));
  sxnm::core::Detector detector(sxnm::datagen::MovieConfig(10).value());
  for (auto _ : state) {
    auto result = detector.Run(doc);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_DetectorFullRun)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_TransitiveClosure(benchmark::State& state) {
  // Random pair soup over n instances.
  size_t n = size_t(state.range(0));
  sxnm::util::Rng rng(3);
  std::vector<sxnm::core::OrdinalPair> pairs;
  for (size_t i = 0; i < n / 2; ++i) {
    size_t a = rng.NextBelow(n);
    size_t b = rng.NextBelow(n);
    if (a != b) pairs.push_back(std::minmax(a, b));
  }
  for (auto _ : state) {
    auto clusters = sxnm::core::ComputeTransitiveClosure(n, pairs);
    benchmark::DoNotOptimize(clusters.num_clusters());
  }
}
BENCHMARK(BM_TransitiveClosure)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CandidateForestBuild(benchmark::State& state) {
  sxnm::xml::Document doc = DirtyMovies(size_t(state.range(0)));
  auto config = sxnm::datagen::MovieScalabilityConfig(3).value();
  for (auto _ : state) {
    auto forest = sxnm::core::CandidateForest::Build(config, doc);
    benchmark::DoNotOptimize(forest.ok());
  }
}
BENCHMARK(BM_CandidateForestBuild)->Arg(500)->Arg(2000);

}  // namespace
