// Ablation A6: edit-distance filters (the outlook's [17]) — plain
// normalized edit similarity vs the thresholded variant (length filter +
// bounded DP). Same data, keys, thresholds; decisions must coincide while
// the sliding-window time drops.
//
// Usage: ablation_filters [num_discs]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/freedb.h"
#include "eval/experiment.h"
#include "text/similarity.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_discs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;

  std::printf("=== Ablation A6: edit-distance filters (Data set 2 shape, "
              "%zu+%zu discs, window 8) ===\n\n",
              num_discs, num_discs);

  auto doc = sxnm::datagen::GenerateDataSet2(num_discs, 7);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }

  sxnm::util::TablePrinter table(
      {"phi", "recall", "precision", "f1", "SW time(s)"});

  for (const char* phi : {"edit", "edit_filtered:0.65"}) {
    auto config = sxnm::datagen::CdConfig(8);
    if (!config.ok()) {
      std::cerr << config.status().ToString() << "\n";
      return 1;
    }
    sxnm::core::CandidateConfig* disc = config->Find("disc");
    disc->classifier.mode = sxnm::core::CombineMode::kOdOnly;
    disc->classifier.od_threshold = 0.65;
    for (sxnm::core::OdEntry& od : disc->od) {
      od.similarity_name = phi;
      od.similarity = sxnm::text::GetSimilarity(phi).value();
    }
    // Best-of-3 sliding-window time to smooth scheduler noise.
    double best_sw = 1e9;
    sxnm::eval::CandidateEvaluation last;
    for (int run = 0; run < 3; ++run) {
      auto eval =
          sxnm::eval::RunAndEvaluate(config.value(), doc.value(), "disc");
      if (!eval.ok()) {
        std::cerr << eval.status().ToString() << "\n";
        return 1;
      }
      best_sw = std::min(best_sw, eval->sw_seconds);
      last = eval.value();
    }
    table.AddRow({phi, sxnm::util::FormatDouble(last.metrics.recall, 4),
                  sxnm::util::FormatDouble(last.metrics.precision, 4),
                  sxnm::util::FormatDouble(last.metrics.f1, 4),
                  sxnm::util::FormatDouble(best_sw, 4)});
  }
  table.Print(std::cout);
  std::printf("The filtered phi clamps sub-threshold similarities to 0;\n"
              "weighted-sum decisions can differ marginally near the\n"
              "threshold, the window time drops on dissimilar pairs.\n");
  return 0;
}
