// Figure 6(a): impact of the object-description threshold on Data set 2
// (disc candidate, OD only — no descendant information). The threshold
// sweeps 0.5 .. 1.0.
//
// Expected shape (paper): low thresholds give high recall / low precision
// (many false positives); raising the threshold trades recall for
// precision; the f-measure peaks around 0.65.
//
// Usage: fig6a_od_threshold [num_discs] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/freedb.h"
#include "eval/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_discs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::printf("=== Figure 6(a): OD threshold impact (Data set 2) ===\n");
  std::printf("CD data: %zu clean + %zu duplicates; disc OD = did(0.4), "
              "artist(0.3), dtitle(0.3); window 4; OD only\n\n",
              num_discs, num_discs);

  auto doc = sxnm::datagen::GenerateDataSet2(num_discs, seed);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }
  auto config = sxnm::datagen::CdConfig(/*window=*/4);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }

  sxnm::util::TablePrinter table(
      {"od_threshold", "recall", "precision", "f_measure"});
  double best_f = 0.0, best_threshold = 0.0;

  for (double raw = 0.50; raw <= 1.0001; raw += 0.05) {
    double threshold = std::min(raw, 1.0);
    sxnm::core::ClassifierConfig cls = config->Find("disc")->classifier;
    cls.mode = sxnm::core::CombineMode::kOdOnly;
    cls.od_threshold = threshold;
    auto swept = sxnm::eval::WithClassifier(config.value(), "disc", cls);
    if (!swept.ok()) {
      std::cerr << swept.status().ToString() << "\n";
      return 1;
    }
    auto eval = sxnm::eval::RunAndEvaluate(swept.value(), doc.value(), "disc");
    if (!eval.ok()) {
      std::cerr << eval.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({sxnm::util::FormatDouble(threshold, 2),
                  sxnm::util::FormatDouble(eval->metrics.recall, 4),
                  sxnm::util::FormatDouble(eval->metrics.precision, 4),
                  sxnm::util::FormatDouble(eval->metrics.f1, 4)});
    if (eval->metrics.f1 > best_f) {
      best_f = eval->metrics.f1;
      best_threshold = threshold;
    }
  }
  table.Print(std::cout);
  std::printf("best f-measure %.4f at OD threshold %.2f "
              "(paper: peak near 0.65)\n",
              best_f, best_threshold);
  std::printf("CSV:\n%s", table.ToCsv().c_str());
  return 0;
}
