// Minimal streaming JSON writer for benchmark outputs (--json flags).
// Emits machine-readable phase timings and comparison counts next to the
// human-readable tables; see docs/BENCHMARKS.md for the file formats.
//
// Deliberately tiny: objects/arrays with string, integer, double, and
// bool fields, pretty-printed with two-space indentation. Not a general
// JSON library — benchmark names and keys must not need escaping beyond
// the basic characters handled here.

#ifndef SXNM_BENCH_BENCH_JSON_H_
#define SXNM_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace sxnm::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void BeginObject(std::string_view key = {}) { Open('{', key); }
  void EndObject() { Close('}'); }
  void BeginArray(std::string_view key = {}) { Open('[', key); }
  void EndArray() { Close(']'); }

  void Field(std::string_view key, std::string_view value) {
    Prefix(key);
    WriteString(value);
  }
  void Field(std::string_view key, const char* value) {
    Field(key, std::string_view(value));
  }
  void Field(std::string_view key, double value) {
    Prefix(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out_ << buf;
  }
  void Field(std::string_view key, size_t value) {
    Prefix(key);
    out_ << value;
  }
  void Field(std::string_view key, bool value) {
    Prefix(key);
    out_ << (value ? "true" : "false");
  }

 private:
  void Open(char bracket, std::string_view key) {
    Prefix(key);
    out_ << bracket;
    needs_comma_.push_back(false);
  }

  void Close(char bracket) {
    needs_comma_.pop_back();
    out_ << '\n';
    Indent();
    out_ << bracket;
    if (needs_comma_.empty()) out_ << '\n';
  }

  // Comma/newline/indent bookkeeping before a value; writes `"key": `
  // inside objects (pass an empty key for array elements).
  void Prefix(std::string_view key) {
    if (!needs_comma_.empty()) {
      if (needs_comma_.back()) out_ << ',';
      needs_comma_.back() = true;
      out_ << '\n';
      Indent();
    }
    if (!key.empty()) {
      WriteString(key);
      out_ << ": ";
    }
  }

  void Indent() {
    for (size_t i = 0; i < needs_comma_.size(); ++i) out_ << "  ";
  }

  void WriteString(std::string_view s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        default: out_ << c;
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<bool> needs_comma_;
};

/// Writes an engine metrics snapshot (DetectionResult::metrics) as one
/// object field: counters and gauges flat by name, histograms summarized
/// as {count, sum, p50, p90, p99}. Empty snapshots write an empty object
/// so the schema shape is stable.
inline void WriteMetricsField(JsonWriter& json, std::string_view key,
                              const sxnm::obs::MetricsSnapshot& snapshot) {
  json.BeginObject(key);
  json.BeginObject("counters");
  for (const auto& counter : snapshot.counters) {
    json.Field(counter.name, size_t{counter.value});
  }
  json.EndObject();
  json.BeginObject("gauges");
  for (const auto& gauge : snapshot.gauges) {
    json.Field(gauge.name, gauge.value);
  }
  json.EndObject();
  json.BeginObject("histograms");
  for (const auto& histogram : snapshot.histograms) {
    json.BeginObject(histogram.name);
    json.Field("count", size_t{histogram.total_count});
    json.Field("sum", histogram.sum);
    json.Field("p50", histogram.Quantile(0.5));
    json.Field("p90", histogram.Quantile(0.9));
    json.Field("p99", histogram.Quantile(0.99));
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

/// Pulls `--json <path>` (or `--json=<path>`) out of argv, compacting the
/// remaining arguments in place. Returns the path, or "" when absent.
inline std::string ExtractJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < *argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = std::string(arg.substr(7));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

}  // namespace sxnm::bench

#endif  // SXNM_BENCH_BENCH_JSON_H_
