// Ablation A5: fixed vs adaptive-prefix windows (the outlook's [20]) on
// Data set 2 disc data, whose did/dtitle keys produce runs of equal
// prefixes. For each base window: recall/precision/f and comparisons for
// the fixed policy and for the adaptive policy (prefix 4, max window 60).
//
// Usage: ablation_adaptive_window [num_discs]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/freedb.h"
#include "eval/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_discs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;

  std::printf("=== Ablation A5: fixed vs adaptive windows (Data set 2, "
              "%zu+%zu discs) ===\n\n",
              num_discs, num_discs);

  auto doc = sxnm::datagen::GenerateDataSet2(num_discs, 7);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }

  sxnm::util::TablePrinter table({"base window", "policy", "recall",
                                  "precision", "f1", "comparisons"});

  for (size_t window : {2u, 4u, 8u}) {
    for (bool adaptive : {false, true}) {
      auto config = sxnm::datagen::CdConfig(window);
      if (!config.ok()) {
        std::cerr << config.status().ToString() << "\n";
        return 1;
      }
      sxnm::core::CandidateConfig* disc = config->Find("disc");
      if (adaptive) {
        disc->window_policy = sxnm::core::WindowPolicy::kAdaptivePrefix;
        disc->adaptive_prefix_len = 4;
        disc->max_window = 60;
      }
      auto eval =
          sxnm::eval::RunAndEvaluate(config.value(), doc.value(), "disc");
      if (!eval.ok()) {
        std::cerr << eval.status().ToString() << "\n";
        return 1;
      }
      table.AddRow({std::to_string(window),
                    adaptive ? "adaptive(p=4,max=60)" : "fixed",
                    sxnm::util::FormatDouble(eval->metrics.recall, 4),
                    sxnm::util::FormatDouble(eval->metrics.precision, 4),
                    sxnm::util::FormatDouble(eval->metrics.f1, 4),
                    std::to_string(eval->comparisons)});
    }
  }
  table.Print(std::cout);
  std::printf("Adaptive windows spend extra comparisons only inside\n"
              "equal-prefix key blocks, buying recall at small base "
              "windows.\n");
  return 0;
}
