// Figure 4(c): f-measure vs window size on Data set 2 (real-world-shaped
// CD data: 500 clean discs + 500 artificially polluted duplicates),
// single-pass per key of Tab. 3(b) and multi-pass, disc candidate.
//
// Expected shape (paper): single keys land between ~0.75 and ~0.87; Key 3
// (genre+year-led) is worst, Key 2 (disc-id-led) is best; multi-pass at
// the smallest window already beats the largest single-pass windows; f
// increases with window size throughout.
//
// Usage: fig4c_fmeasure_ds2 [num_discs] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>

#include "datagen/freedb.h"
#include "eval/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_discs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::printf("=== Figure 4(c): Data set 2 f-measure vs window size ===\n");
  std::printf("CD data: %zu clean discs + %zu dirty duplicates, "
              "keys per Tab. 3(b)\n\n",
              num_discs, num_discs);

  auto doc = sxnm::datagen::GenerateDataSet2(num_discs, seed);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }
  auto config = sxnm::datagen::CdConfig(/*window=*/6);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }

  std::vector<size_t> windows = {2, 4, 6, 8, 10, 12};
  auto points =
      sxnm::eval::WindowSweep(config.value(), doc.value(), "disc", windows);
  if (!points.ok()) {
    std::cerr << points.status().ToString() << "\n";
    return 1;
  }

  std::map<size_t, std::map<std::string, double>> f1;
  for (const auto& point : points.value()) {
    f1[point.window][point.label] = point.eval.metrics.f1;
  }

  sxnm::util::TablePrinter table({"window", "f1(SP Key 1)", "f1(SP Key 2)",
                                  "f1(SP Key 3)", "f1(MP)"});
  for (size_t w : windows) {
    table.AddRow({std::to_string(w),
                  sxnm::util::FormatDouble(f1[w]["Key 1"], 4),
                  sxnm::util::FormatDouble(f1[w]["Key 2"], 4),
                  sxnm::util::FormatDouble(f1[w]["Key 3"], 4),
                  sxnm::util::FormatDouble(f1[w]["MP"], 4)});
  }
  table.Print(std::cout);

  std::printf("CSV:\n%s", table.ToCsv().c_str());
  return 0;
}
