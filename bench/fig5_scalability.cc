// Figure 5: scalability of the SXNM phases with data size and duplicate
// density. Four panels:
//   (a) clean data            — no duplicates at all
//   (b) "few duplicates"      — 20% dupProb for movie/title/person, 1 dup
//   (c) "many duplicates"     — 100% dupProb movie/person (up to 2), 20% title
//   (d) key-generation + sliding-window overhead of (b)/(c) vs clean
//
// Phases: KG = key generation, SW = sliding window, TC = transitive
// closure, DD = SW + TC (the paper's "duplicate detection"). Window = 3,
// candidates movie/title/person, exactly as Experiment set 2.
//
// Expected shape (paper): KG linear in size; SW dominates DD and grows
// with dirty-data volume; TC is negligible on clean data but grows
// sharply with "many duplicates"; few-duplicates overhead stays below
// ~20% while many-duplicates costs several times the clean run.
//
// Usage: fig5_scalability [--json <path>] [max_movies] [seed]
//
// --json additionally writes the panels machine-readably (per-size phase
// timings and comparison counts); format in docs/BENCHMARKS.md.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_json.h"
#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "sxnm/detector.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

struct PanelRow {
  size_t clean_movies = 0;
  size_t instances = 0;  // movie instances after pollution
  double kg = 0, sw = 0, tc = 0;
  // From the observability registry (the engine's own counters, not
  // bench-side bookkeeping):
  size_t comparisons = 0;         // unique merged comparisons
  size_t kernel_comparisons = 0;  // per-pass kernel invocations
  size_t pairs_windowed = 0;      // windowed pairs enumerated
  size_t ed_bailouts = 0;         // bounded edit-distance bailouts
  double dd() const { return sw + tc; }
};

sxnm::util::Result<PanelRow> RunOne(const sxnm::xml::Document& doc,
                                    size_t clean_movies) {
  auto config = sxnm::datagen::MovieScalabilityConfig(/*window=*/3);
  if (!config.ok()) return config.status();
  config->mutable_observability().metrics = true;
  sxnm::core::Detector detector(std::move(config).value());
  auto result = detector.Run(doc);
  if (!result.ok()) return result.status();
  PanelRow row;
  row.clean_movies = clean_movies;
  row.instances = result->Find("movie")->num_instances;
  row.kg = result->KeyGenerationSeconds();
  row.sw = result->SlidingWindowSeconds();
  row.tc = result->TransitiveClosureSeconds();
  row.comparisons = size_t(result->metrics.CounterOr("sw.unique_comparisons"));
  row.kernel_comparisons = size_t(result->metrics.CounterOr("sw.comparisons"));
  row.pairs_windowed = size_t(result->metrics.CounterOr("sw.pairs_windowed"));
  row.ed_bailouts = size_t(result->metrics.CounterOr("sw.ed_bailouts"));
  return row;
}

void WritePanelJson(sxnm::bench::JsonWriter& json, const char* name,
                    const std::vector<PanelRow>& rows) {
  json.BeginArray(name);
  for (const PanelRow& row : rows) {
    json.BeginObject();
    json.Field("clean_movies", row.clean_movies);
    json.Field("movie_instances", row.instances);
    json.BeginObject("phases");
    json.Field("key_generation_s", row.kg);
    json.Field("sliding_window_s", row.sw);
    json.Field("transitive_closure_s", row.tc);
    json.Field("duplicate_detection_s", row.dd());
    json.EndObject();
    json.Field("comparisons", row.comparisons);
    json.Field("kernel_comparisons", row.kernel_comparisons);
    json.Field("pairs_windowed", row.pairs_windowed);
    json.Field("ed_bailouts", row.ed_bailouts);
    json.EndObject();
  }
  json.EndArray();
}

void PrintPanel(const char* title, const std::vector<PanelRow>& rows) {
  std::printf("%s\n", title);
  sxnm::util::TablePrinter table({"movies(clean)", "movie instances",
                                  "KG(s)", "SW(s)", "TC(s)", "DD(s)"});
  for (const PanelRow& row : rows) {
    table.AddRow({std::to_string(row.clean_movies),
                  std::to_string(row.instances),
                  sxnm::util::FormatDouble(row.kg, 4),
                  sxnm::util::FormatDouble(row.sw, 4),
                  sxnm::util::FormatDouble(row.tc, 4),
                  sxnm::util::FormatDouble(row.dd(), 4)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = sxnm::bench::ExtractJsonFlag(&argc, argv);
  size_t max_movies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  std::printf("=== Figure 5: scalability of the SXNM phases (window 3) ===\n\n");

  std::vector<size_t> sizes;
  for (size_t n = 500; n <= max_movies; n *= 2) sizes.push_back(n);

  std::vector<PanelRow> clean_rows, few_rows, many_rows;
  for (size_t n : sizes) {
    sxnm::datagen::MovieDataOptions gen;
    gen.num_movies = n;
    gen.seed = seed + n;
    sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(gen);

    auto clean_row = RunOne(clean, n);
    if (!clean_row.ok()) {
      std::cerr << clean_row.status().ToString() << "\n";
      return 1;
    }
    clean_rows.push_back(clean_row.value());

    auto few =
        sxnm::datagen::MakeDirty(clean, sxnm::datagen::FewDuplicatesPreset(seed));
    if (!few.ok()) {
      std::cerr << few.status().ToString() << "\n";
      return 1;
    }
    auto few_row = RunOne(few.value(), n);
    if (!few_row.ok()) {
      std::cerr << few_row.status().ToString() << "\n";
      return 1;
    }
    few_rows.push_back(few_row.value());

    auto many = sxnm::datagen::MakeDirty(
        clean, sxnm::datagen::ManyDuplicatesPreset(seed));
    if (!many.ok()) {
      std::cerr << many.status().ToString() << "\n";
      return 1;
    }
    auto many_row = RunOne(many.value(), n);
    if (!many_row.ok()) {
      std::cerr << many_row.status().ToString() << "\n";
      return 1;
    }
    many_rows.push_back(many_row.value());
  }

  PrintPanel("--- Panel (a): clean data ---", clean_rows);
  PrintPanel("--- Panel (b): few duplicates (20% dupProb) ---", few_rows);
  PrintPanel("--- Panel (c): many duplicates (100% movie/person dupProb) ---",
             many_rows);

  std::printf("--- Panel (d): KG+SW overhead vs clean data ---\n");
  sxnm::util::TablePrinter overhead({"movies(clean)", "few dups overhead",
                                     "many dups overhead"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    double base = clean_rows[i].kg + clean_rows[i].sw;
    double few = few_rows[i].kg + few_rows[i].sw;
    double many = many_rows[i].kg + many_rows[i].sw;
    auto pct = [base](double v) {
      return sxnm::util::FormatDouble(100.0 * (v - base) / base, 1) + "%";
    };
    overhead.AddRow({std::to_string(sizes[i]), pct(few), pct(many)});
  }
  overhead.Print(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open " << json_path << "\n";
      return 1;
    }
    sxnm::bench::JsonWriter json(out);
    json.BeginObject();
    json.Field("bench", "fig5_scalability");
    json.Field("schema_version", size_t{7});
    json.Field("window", size_t{3});
    json.Field("seed", size_t(seed));
    WritePanelJson(json, "clean", clean_rows);
    WritePanelJson(json, "few_duplicates", few_rows);
    WritePanelJson(json, "many_duplicates", many_rows);
    json.EndObject();
    std::printf("panel data written to %s\n", json_path.c_str());
  }
  return 0;
}
