// Figure 5: scalability of the SXNM phases with data size and duplicate
// density. Four panels:
//   (a) clean data            — no duplicates at all
//   (b) "few duplicates"      — 20% dupProb for movie/title/person, 1 dup
//   (c) "many duplicates"     — 100% dupProb movie/person (up to 2), 20% title
//   (d) key-generation + sliding-window overhead of (b)/(c) vs clean
//
// Phases: KG = key generation, SW = sliding window, TC = transitive
// closure, DD = SW + TC (the paper's "duplicate detection"). Window = 3,
// candidates movie/title/person, exactly as Experiment set 2.
//
// Expected shape (paper): KG linear in size; SW dominates DD and grows
// with dirty-data volume; TC is negligible on clean data but grows
// sharply with "many duplicates"; few-duplicates overhead stays below
// ~20% while many-duplicates costs several times the clean run.
//
// Usage: fig5_scalability [--json <path>] [--scale-movies N]
//                         [--scale-budget BYTES] [--scale-shards S]
//                         [--profile <path.folded>] [--profile-hz N]
//                         [max_movies] [seed]
//
// --json additionally writes the panels machine-readably (per-size phase
// timings and comparison counts); format in docs/BENCHMARKS.md.
//
// --scale-movies N adds the out-of-core point (schema version 8): one
// sharded run over N clean movies with an external-sort memory budget
// (--scale-budget, default 2 GiB; suffixes k/m/g) and --scale-shards
// key-range shards (default 4), preceded by a small shards=1-vs-N
// identity sub-check. The JSON gains an `out_of_core` block with the
// engine's extsort/shard counters and the process's peak RSS
// (util::ReadProcMemory). The opt-in `bench_scale` ctest drives this
// at >= 1M generated-key rows.
//
// --profile attaches the sampling profiler (schema version 9) to every
// panel run and leaves the last (largest) run's folded-stack profile at
// <path.folded>; render with tools/sxnm_flame. --profile-hz overrides
// the 97 Hz default.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_json.h"
#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "sxnm/detector.h"
#include "util/proc_stat.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

struct PanelRow {
  size_t clean_movies = 0;
  size_t instances = 0;  // movie instances after pollution
  double kg = 0, sw = 0, tc = 0;
  // From the observability registry (the engine's own counters, not
  // bench-side bookkeeping):
  size_t comparisons = 0;         // unique merged comparisons
  size_t kernel_comparisons = 0;  // per-pass kernel invocations
  size_t pairs_windowed = 0;      // windowed pairs enumerated
  size_t ed_bailouts = 0;         // bounded edit-distance bailouts
  double dd() const { return sw + tc; }
};

// Set by --profile / --profile-hz; every panel run is profiled and the
// folded file holds the last (largest) run's spans.
std::string g_profile_path;
double g_profile_hz = 97.0;

sxnm::util::Result<PanelRow> RunOne(const sxnm::xml::Document& doc,
                                    size_t clean_movies) {
  auto config = sxnm::datagen::MovieScalabilityConfig(/*window=*/3);
  if (!config.ok()) return config.status();
  config->mutable_observability().metrics = true;
  config->mutable_observability().profile_path = g_profile_path;
  config->mutable_observability().profile_hz = g_profile_hz;
  sxnm::core::Detector detector(std::move(config).value());
  auto result = detector.Run(doc);
  if (!result.ok()) return result.status();
  PanelRow row;
  row.clean_movies = clean_movies;
  row.instances = result->Find("movie")->num_instances;
  row.kg = result->KeyGenerationSeconds();
  row.sw = result->SlidingWindowSeconds();
  row.tc = result->TransitiveClosureSeconds();
  row.comparisons = size_t(result->metrics.CounterOr("sw.unique_comparisons"));
  row.kernel_comparisons = size_t(result->metrics.CounterOr("sw.comparisons"));
  row.pairs_windowed = size_t(result->metrics.CounterOr("sw.pairs_windowed"));
  row.ed_bailouts = size_t(result->metrics.CounterOr("sw.ed_bailouts"));
  return row;
}

void WritePanelJson(sxnm::bench::JsonWriter& json, const char* name,
                    const std::vector<PanelRow>& rows) {
  json.BeginArray(name);
  for (const PanelRow& row : rows) {
    json.BeginObject();
    json.Field("clean_movies", row.clean_movies);
    json.Field("movie_instances", row.instances);
    json.BeginObject("phases");
    json.Field("key_generation_s", row.kg);
    json.Field("sliding_window_s", row.sw);
    json.Field("transitive_closure_s", row.tc);
    json.Field("duplicate_detection_s", row.dd());
    json.EndObject();
    json.Field("comparisons", row.comparisons);
    json.Field("kernel_comparisons", row.kernel_comparisons);
    json.Field("pairs_windowed", row.pairs_windowed);
    json.Field("ed_bailouts", row.ed_bailouts);
    json.EndObject();
  }
  json.EndArray();
}

void PrintPanel(const char* title, const std::vector<PanelRow>& rows) {
  std::printf("%s\n", title);
  sxnm::util::TablePrinter table({"movies(clean)", "movie instances",
                                  "KG(s)", "SW(s)", "TC(s)", "DD(s)"});
  for (const PanelRow& row : rows) {
    table.AddRow({std::to_string(row.clean_movies),
                  std::to_string(row.instances),
                  sxnm::util::FormatDouble(row.kg, 4),
                  sxnm::util::FormatDouble(row.sw, 4),
                  sxnm::util::FormatDouble(row.tc, 4),
                  sxnm::util::FormatDouble(row.dd(), 4)});
  }
  table.Print(std::cout);
}

// Parses `--name N` / `--name=N` out of argv (binary byte suffixes
// k/m/g accepted); returns `fallback` when absent. Mirrors
// bench::ExtractJsonFlag's in-place argv compaction.
uint64_t ExtractSizeFlag(int* argc, char** argv, std::string_view name,
                         uint64_t fallback) {
  uint64_t value = fallback;
  auto parse = [&](std::string_view text) {
    uint64_t multiplier = 1;
    if (!text.empty()) {
      switch (text.back()) {
        case 'k': case 'K': multiplier = uint64_t{1} << 10; break;
        case 'm': case 'M': multiplier = uint64_t{1} << 20; break;
        case 'g': case 'G': multiplier = uint64_t{1} << 30; break;
        default: break;
      }
      if (multiplier != 1) text.remove_suffix(1);
    }
    value = std::strtoull(std::string(text).c_str(), nullptr, 10) * multiplier;
  };
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == name && i + 1 < *argc) {
      parse(argv[++i]);
    } else if (arg.size() > name.size() + 1 && arg.substr(0, name.size()) == name &&
               arg[name.size()] == '=') {
      parse(arg.substr(name.size() + 1));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return value;
}

// Parses `--name VALUE` / `--name=VALUE` out of argv, compacting argv
// like ExtractSizeFlag; returns "" when absent.
std::string ExtractStringFlag(int* argc, char** argv, std::string_view name) {
  std::string value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == name && i + 1 < *argc) {
      value = argv[++i];
    } else if (arg.size() > name.size() + 1 &&
               arg.substr(0, name.size()) == name &&
               arg[name.size()] == '=') {
      value = std::string(arg.substr(name.size() + 1));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return value;
}

struct OutOfCoreRun {
  PanelRow row;  // timings + detection counters of the sharded run
  uint64_t gk_rows = 0;
  uint64_t spilled_runs = 0;
  uint64_t spill_bytes = 0;
  uint64_t merge_fanin_max = 0;
  uint64_t overlap_rows = 0;
  uint64_t duplicate_pairs = 0;
  uint64_t clusters = 0;
};

sxnm::util::Result<OutOfCoreRun> RunOutOfCore(const sxnm::xml::Document& doc,
                                              size_t clean_movies,
                                              size_t shards,
                                              uint64_t budget_bytes) {
  auto config = sxnm::datagen::MovieScalabilityConfig(/*window=*/3);
  if (!config.ok()) return config.status();
  config->mutable_observability().metrics = true;
  config->set_shards(shards);
  config->set_memory_budget_bytes(budget_bytes);
  sxnm::core::Detector detector(std::move(config).value());
  auto result = detector.Run(doc);
  if (!result.ok()) return result.status();
  OutOfCoreRun run;
  run.row.clean_movies = clean_movies;
  run.row.instances = result->Find("movie")->num_instances;
  run.row.kg = result->KeyGenerationSeconds();
  run.row.sw = result->SlidingWindowSeconds();
  run.row.tc = result->TransitiveClosureSeconds();
  run.row.comparisons =
      size_t(result->metrics.CounterOr("sw.unique_comparisons"));
  run.row.kernel_comparisons =
      size_t(result->metrics.CounterOr("sw.comparisons"));
  run.row.pairs_windowed =
      size_t(result->metrics.CounterOr("sw.pairs_windowed"));
  run.row.ed_bailouts = size_t(result->metrics.CounterOr("sw.ed_bailouts"));
  run.gk_rows = uint64_t(result->metrics.CounterOr("extsort.rows"));
  run.spilled_runs = uint64_t(result->metrics.CounterOr("extsort.spilled_runs"));
  run.spill_bytes = uint64_t(result->metrics.CounterOr("extsort.spill_bytes"));
  run.merge_fanin_max =
      uint64_t(result->metrics.GaugeOr("extsort.merge_fanin_max"));
  run.overlap_rows = uint64_t(result->metrics.CounterOr("shard.overlap_rows"));
  run.duplicate_pairs =
      uint64_t(result->metrics.CounterOr("sw.unique_duplicates"));
  run.clusters = uint64_t(result->metrics.CounterOr("tc.clusters"));
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = sxnm::bench::ExtractJsonFlag(&argc, argv);
  uint64_t scale_movies =
      ExtractSizeFlag(&argc, argv, "--scale-movies", 0);
  uint64_t scale_budget = ExtractSizeFlag(&argc, argv, "--scale-budget",
                                          uint64_t{2} << 30);
  uint64_t scale_shards = ExtractSizeFlag(&argc, argv, "--scale-shards", 4);
  g_profile_path = ExtractStringFlag(&argc, argv, "--profile");
  uint64_t profile_hz = ExtractSizeFlag(&argc, argv, "--profile-hz", 0);
  if (profile_hz > 0) g_profile_hz = double(profile_hz);
  size_t max_movies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  std::printf("=== Figure 5: scalability of the SXNM phases (window 3) ===\n\n");

  std::vector<size_t> sizes;
  for (size_t n = 500; n <= max_movies; n *= 2) sizes.push_back(n);

  std::vector<PanelRow> clean_rows, few_rows, many_rows;
  for (size_t n : sizes) {
    sxnm::datagen::MovieDataOptions gen;
    gen.num_movies = n;
    gen.seed = seed + n;
    sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(gen);

    auto clean_row = RunOne(clean, n);
    if (!clean_row.ok()) {
      std::cerr << clean_row.status().ToString() << "\n";
      return 1;
    }
    clean_rows.push_back(clean_row.value());

    auto few =
        sxnm::datagen::MakeDirty(clean, sxnm::datagen::FewDuplicatesPreset(seed));
    if (!few.ok()) {
      std::cerr << few.status().ToString() << "\n";
      return 1;
    }
    auto few_row = RunOne(few.value(), n);
    if (!few_row.ok()) {
      std::cerr << few_row.status().ToString() << "\n";
      return 1;
    }
    few_rows.push_back(few_row.value());

    auto many = sxnm::datagen::MakeDirty(
        clean, sxnm::datagen::ManyDuplicatesPreset(seed));
    if (!many.ok()) {
      std::cerr << many.status().ToString() << "\n";
      return 1;
    }
    auto many_row = RunOne(many.value(), n);
    if (!many_row.ok()) {
      std::cerr << many_row.status().ToString() << "\n";
      return 1;
    }
    many_rows.push_back(many_row.value());
  }

  PrintPanel("--- Panel (a): clean data ---", clean_rows);
  PrintPanel("--- Panel (b): few duplicates (20% dupProb) ---", few_rows);
  PrintPanel("--- Panel (c): many duplicates (100% movie/person dupProb) ---",
             many_rows);

  std::printf("--- Panel (d): KG+SW overhead vs clean data ---\n");
  sxnm::util::TablePrinter overhead({"movies(clean)", "few dups overhead",
                                     "many dups overhead"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    double base = clean_rows[i].kg + clean_rows[i].sw;
    double few = few_rows[i].kg + few_rows[i].sw;
    double many = many_rows[i].kg + many_rows[i].sw;
    auto pct = [base](double v) {
      return sxnm::util::FormatDouble(100.0 * (v - base) / base, 1) + "%";
    };
    overhead.AddRow({std::to_string(sizes[i]), pct(few), pct(many)});
  }
  overhead.Print(std::cout);

  // Out-of-core point: a small identity sub-check (shards=1 in-memory
  // vs sharded+spilling must detect identically), then the big sharded
  // run under the memory budget.
  bool have_scale = scale_movies > 0;
  OutOfCoreRun identity_single, identity_sharded, scale_run;
  size_t identity_movies = 0;
  sxnm::util::ProcMemory scale_mem;
  double rss_slack = 1.25;
  if (have_scale) {
    identity_movies = std::min<size_t>(scale_movies, 20000);
    std::printf("\n--- Out-of-core: identity sub-check (%zu movies) ---\n",
                identity_movies);
    sxnm::datagen::MovieDataOptions gen;
    gen.num_movies = identity_movies;
    gen.seed = seed + identity_movies;
    sxnm::xml::Document small = sxnm::datagen::GenerateCleanMovies(gen);
    auto single = RunOutOfCore(small, identity_movies, /*shards=*/1,
                               /*budget_bytes=*/0);
    // A tight budget forces the sub-check through the spill path even
    // at this small size.
    auto sharded = RunOutOfCore(small, identity_movies, scale_shards,
                                /*budget_bytes=*/4 << 20);
    if (!single.ok() || !sharded.ok()) {
      std::cerr << (single.ok() ? sharded.status() : single.status())
                       .ToString()
                << "\n";
      return 1;
    }
    identity_single = single.value();
    identity_sharded = sharded.value();
    bool identical =
        identity_single.duplicate_pairs == identity_sharded.duplicate_pairs &&
        identity_single.row.comparisons == identity_sharded.row.comparisons &&
        identity_single.clusters == identity_sharded.clusters;
    std::printf("shards=1: %llu duplicate pairs, %zu comparisons; "
                "shards=%llu+spill: %llu pairs, %zu comparisons -> %s\n",
                (unsigned long long)identity_single.duplicate_pairs,
                identity_single.row.comparisons,
                (unsigned long long)scale_shards,
                (unsigned long long)identity_sharded.duplicate_pairs,
                identity_sharded.row.comparisons,
                identical ? "identical" : "MISMATCH");
    if (!identical) return 1;

    std::printf("\n--- Out-of-core: %llu movies, %llu shards, budget %llu "
                "bytes ---\n",
                (unsigned long long)scale_movies,
                (unsigned long long)scale_shards,
                (unsigned long long)scale_budget);
    gen.num_movies = scale_movies;
    gen.seed = seed + scale_movies;
    sxnm::xml::Document big = sxnm::datagen::GenerateCleanMovies(gen);
    auto scaled =
        RunOutOfCore(big, scale_movies, scale_shards, scale_budget);
    if (!scaled.ok()) {
      std::cerr << scaled.status().ToString() << "\n";
      return 1;
    }
    scale_run = scaled.value();
    scale_mem = sxnm::util::ReadProcMemory();
    std::printf("gk rows %llu  spilled runs %llu (%llu bytes)  "
                "max merge fan-in %llu\n",
                (unsigned long long)scale_run.gk_rows,
                (unsigned long long)scale_run.spilled_runs,
                (unsigned long long)scale_run.spill_bytes,
                (unsigned long long)scale_run.merge_fanin_max);
    std::printf("KG %.2fs  SW %.2fs  TC %.2fs  peak RSS %.1f MiB "
                "(budget %.1f MiB, slack %.2fx)\n",
                scale_run.row.kg, scale_run.row.sw, scale_run.row.tc,
                scale_mem.peak_rss_bytes / 1048576.0,
                scale_budget / 1048576.0, rss_slack);
    if (scale_mem.sampled &&
        scale_mem.peak_rss_bytes >
            static_cast<size_t>(scale_budget * rss_slack)) {
      std::fprintf(stderr,
                   "peak RSS %zu breaches the budget envelope %llu * %.2f\n",
                   scale_mem.peak_rss_bytes,
                   (unsigned long long)scale_budget, rss_slack);
      return 1;
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open " << json_path << "\n";
      return 1;
    }
    sxnm::bench::JsonWriter json(out);
    json.BeginObject();
    json.Field("bench", "fig5_scalability");
    json.Field("schema_version", size_t{9});
    json.Field("window", size_t{3});
    json.Field("seed", size_t(seed));
    WritePanelJson(json, "clean", clean_rows);
    WritePanelJson(json, "few_duplicates", few_rows);
    WritePanelJson(json, "many_duplicates", many_rows);
    if (have_scale) {
      json.BeginObject("out_of_core");
      json.Field("clean_movies", size_t(scale_movies));
      json.Field("movie_instances", scale_run.row.instances);
      json.Field("gk_rows", size_t(scale_run.gk_rows));
      json.Field("shards", size_t(scale_shards));
      json.Field("memory_budget_bytes", size_t(scale_budget));
      json.Field("peak_rss_bytes", scale_mem.peak_rss_bytes);
      json.Field("rss_sampled", scale_mem.sampled);
      json.Field("rss_slack", rss_slack);
      json.Field("spilled_runs", size_t(scale_run.spilled_runs));
      json.Field("spill_bytes", size_t(scale_run.spill_bytes));
      json.Field("merge_fanin_max", size_t(scale_run.merge_fanin_max));
      json.Field("overlap_rows", size_t(scale_run.overlap_rows));
      json.Field("duplicate_pairs", size_t(scale_run.duplicate_pairs));
      json.BeginObject("phases");
      json.Field("key_generation_s", scale_run.row.kg);
      json.Field("sliding_window_s", scale_run.row.sw);
      json.Field("transitive_closure_s", scale_run.row.tc);
      json.Field("duplicate_detection_s", scale_run.row.dd());
      json.EndObject();
      json.BeginObject("identity");
      json.Field("clean_movies", identity_movies);
      json.Field("shards", size_t(scale_shards));
      json.Field("duplicate_pairs_single",
                 size_t(identity_single.duplicate_pairs));
      json.Field("duplicate_pairs_sharded",
                 size_t(identity_sharded.duplicate_pairs));
      json.Field("comparisons_single", identity_single.row.comparisons);
      json.Field("comparisons_sharded", identity_sharded.row.comparisons);
      json.Field("identical", true);
      json.EndObject();
      json.EndObject();
    }
    json.EndObject();
    std::printf("panel data written to %s\n", json_path.c_str());
  }
  if (!g_profile_path.empty()) {
    std::printf("profile written to %s (last run's spans; render with "
                "tools/sxnm_flame)\n",
                g_profile_path.c_str());
  }
  return 0;
}
