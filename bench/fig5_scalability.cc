// Figure 5: scalability of the SXNM phases with data size and duplicate
// density. Four panels:
//   (a) clean data            — no duplicates at all
//   (b) "few duplicates"      — 20% dupProb for movie/title/person, 1 dup
//   (c) "many duplicates"     — 100% dupProb movie/person (up to 2), 20% title
//   (d) key-generation + sliding-window overhead of (b)/(c) vs clean
//
// Phases: KG = key generation, SW = sliding window, TC = transitive
// closure, DD = SW + TC (the paper's "duplicate detection"). Window = 3,
// candidates movie/title/person, exactly as Experiment set 2.
//
// Expected shape (paper): KG linear in size; SW dominates DD and grows
// with dirty-data volume; TC is negligible on clean data but grows
// sharply with "many duplicates"; few-duplicates overhead stays below
// ~20% while many-duplicates costs several times the clean run.
//
// Usage: fig5_scalability [max_movies] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "sxnm/detector.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

struct PanelRow {
  size_t clean_movies = 0;
  size_t instances = 0;  // movie instances after pollution
  double kg = 0, sw = 0, tc = 0;
  double dd() const { return sw + tc; }
};

sxnm::util::Result<PanelRow> RunOne(const sxnm::xml::Document& doc,
                                    size_t clean_movies) {
  auto config = sxnm::datagen::MovieScalabilityConfig(/*window=*/3);
  if (!config.ok()) return config.status();
  sxnm::core::Detector detector(std::move(config).value());
  auto result = detector.Run(doc);
  if (!result.ok()) return result.status();
  PanelRow row;
  row.clean_movies = clean_movies;
  row.instances = result->Find("movie")->num_instances;
  row.kg = result->KeyGenerationSeconds();
  row.sw = result->SlidingWindowSeconds();
  row.tc = result->TransitiveClosureSeconds();
  return row;
}

void PrintPanel(const char* title, const std::vector<PanelRow>& rows) {
  std::printf("%s\n", title);
  sxnm::util::TablePrinter table({"movies(clean)", "movie instances",
                                  "KG(s)", "SW(s)", "TC(s)", "DD(s)"});
  for (const PanelRow& row : rows) {
    table.AddRow({std::to_string(row.clean_movies),
                  std::to_string(row.instances),
                  sxnm::util::FormatDouble(row.kg, 4),
                  sxnm::util::FormatDouble(row.sw, 4),
                  sxnm::util::FormatDouble(row.tc, 4),
                  sxnm::util::FormatDouble(row.dd(), 4)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  size_t max_movies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  std::printf("=== Figure 5: scalability of the SXNM phases (window 3) ===\n\n");

  std::vector<size_t> sizes;
  for (size_t n = 500; n <= max_movies; n *= 2) sizes.push_back(n);

  std::vector<PanelRow> clean_rows, few_rows, many_rows;
  for (size_t n : sizes) {
    sxnm::datagen::MovieDataOptions gen;
    gen.num_movies = n;
    gen.seed = seed + n;
    sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(gen);

    auto clean_row = RunOne(clean, n);
    if (!clean_row.ok()) {
      std::cerr << clean_row.status().ToString() << "\n";
      return 1;
    }
    clean_rows.push_back(clean_row.value());

    auto few =
        sxnm::datagen::MakeDirty(clean, sxnm::datagen::FewDuplicatesPreset(seed));
    if (!few.ok()) {
      std::cerr << few.status().ToString() << "\n";
      return 1;
    }
    auto few_row = RunOne(few.value(), n);
    if (!few_row.ok()) {
      std::cerr << few_row.status().ToString() << "\n";
      return 1;
    }
    few_rows.push_back(few_row.value());

    auto many = sxnm::datagen::MakeDirty(
        clean, sxnm::datagen::ManyDuplicatesPreset(seed));
    if (!many.ok()) {
      std::cerr << many.status().ToString() << "\n";
      return 1;
    }
    auto many_row = RunOne(many.value(), n);
    if (!many_row.ok()) {
      std::cerr << many_row.status().ToString() << "\n";
      return 1;
    }
    many_rows.push_back(many_row.value());
  }

  PrintPanel("--- Panel (a): clean data ---", clean_rows);
  PrintPanel("--- Panel (b): few duplicates (20% dupProb) ---", few_rows);
  PrintPanel("--- Panel (c): many duplicates (100% movie/person dupProb) ---",
             many_rows);

  std::printf("--- Panel (d): KG+SW overhead vs clean data ---\n");
  sxnm::util::TablePrinter overhead({"movies(clean)", "few dups overhead",
                                     "many dups overhead"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    double base = clean_rows[i].kg + clean_rows[i].sw;
    double few = few_rows[i].kg + few_rows[i].sw;
    double many = many_rows[i].kg + many_rows[i].sw;
    auto pct = [base](double v) {
      return sxnm::util::FormatDouble(100.0 * (v - base) / base, 1) + "%";
    };
    overhead.AddRow({std::to_string(sizes[i]), pct(few), pct(many)});
  }
  overhead.Print(std::cout);
  return 0;
}
