// Ablation A4: how OD similarity and descendant similarity combine
// (Sec. 3.4 leaves this open; DESIGN.md documents the modes). Compares
// od_only, average, weighted, desc_boost and desc_gate on Data set 2 with
// identical thresholds.
//
// Usage: ablation_combine_modes [num_discs]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/freedb.h"
#include "eval/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_discs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;

  std::printf("=== Ablation A4: OD/descendant combination modes (Data set "
              "2, %zu+%zu discs, window 4) ===\n",
              num_discs, num_discs);
  std::printf("OD threshold 0.65, desc threshold 0.3, od weight 0.5\n\n");

  auto doc = sxnm::datagen::GenerateDataSet2(num_discs, 7);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }
  auto base = sxnm::datagen::CdConfig(4);
  if (!base.ok()) {
    std::cerr << base.status().ToString() << "\n";
    return 1;
  }

  sxnm::util::TablePrinter table(
      {"mode", "recall", "precision", "f_measure"});
  for (sxnm::core::CombineMode mode :
       {sxnm::core::CombineMode::kOdOnly, sxnm::core::CombineMode::kAverage,
        sxnm::core::CombineMode::kWeighted,
        sxnm::core::CombineMode::kDescBoost,
        sxnm::core::CombineMode::kDescGate}) {
    sxnm::core::ClassifierConfig cls;
    cls.mode = mode;
    cls.od_threshold = 0.65;
    cls.desc_threshold = 0.3;
    cls.od_weight = 0.5;
    auto config = sxnm::eval::WithClassifier(base.value(), "disc", cls);
    if (!config.ok()) {
      std::cerr << config.status().ToString() << "\n";
      return 1;
    }
    auto eval =
        sxnm::eval::RunAndEvaluate(config.value(), doc.value(), "disc");
    if (!eval.ok()) {
      std::cerr << eval.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({sxnm::core::CombineModeName(mode),
                  sxnm::util::FormatDouble(eval->metrics.recall, 4),
                  sxnm::util::FormatDouble(eval->metrics.precision, 4),
                  sxnm::util::FormatDouble(eval->metrics.f1, 4)});
  }
  table.Print(std::cout);
  std::printf("desc_gate trades a little recall for precision; with a low\n"
              "threshold it yields the best f (the paper's Fig. 6(b)).\n");
  return 0;
}
