// Figure 6(b): impact of the descendants threshold on Data set 2. The OD
// threshold is fixed at 0.65 (the optimum of Fig. 6(a)); track <title>
// descendants of <disc> participate via their cluster IDs; the
// descendants threshold sweeps 0.1 .. 0.9.
//
// Expected shape (paper): the best f-measure with descendants exceeds the
// best OD-only f-measure (≈0.96 in the paper); a low threshold (~0.3) is
// optimal because a small overlap in children suffices; very high
// thresholds downgrade the result (true duplicates with partially
// differing track lists are vetoed).
//
// Usage: fig6b_desc_threshold [num_discs] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/freedb.h"
#include "eval/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_discs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::printf("=== Figure 6(b): descendants threshold impact (Data set 2) "
              "===\n");
  std::printf("CD data: %zu clean + %zu duplicates; OD threshold fixed at "
              "0.65; disc + tracks/title candidates; window 4; desc_gate\n\n",
              num_discs, num_discs);

  auto doc = sxnm::datagen::GenerateDataSet2(num_discs, seed);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }
  auto config = sxnm::datagen::CdConfig(/*window=*/4);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }

  // OD-only reference at the fixed threshold.
  double od_only_f = 0.0;
  {
    sxnm::core::ClassifierConfig cls = config->Find("disc")->classifier;
    cls.mode = sxnm::core::CombineMode::kOdOnly;
    cls.od_threshold = 0.65;
    auto swept = sxnm::eval::WithClassifier(config.value(), "disc", cls);
    auto eval =
        sxnm::eval::RunAndEvaluate(swept.value(), doc.value(), "disc");
    if (!eval.ok()) {
      std::cerr << eval.status().ToString() << "\n";
      return 1;
    }
    od_only_f = eval->metrics.f1;
    std::printf("reference (OD only, threshold 0.65): R=%.4f P=%.4f "
                "F=%.4f\n\n",
                eval->metrics.recall, eval->metrics.precision,
                eval->metrics.f1);
  }

  sxnm::util::TablePrinter table(
      {"desc_threshold", "recall", "precision", "f_measure"});
  double best_f = 0.0, best_threshold = 0.0;
  for (double threshold = 0.1; threshold <= 0.9001; threshold += 0.1) {
    sxnm::core::ClassifierConfig cls = config->Find("disc")->classifier;
    cls.mode = sxnm::core::CombineMode::kDescGate;
    cls.od_threshold = 0.65;
    cls.desc_threshold = threshold;
    auto swept = sxnm::eval::WithClassifier(config.value(), "disc", cls);
    if (!swept.ok()) {
      std::cerr << swept.status().ToString() << "\n";
      return 1;
    }
    auto eval =
        sxnm::eval::RunAndEvaluate(swept.value(), doc.value(), "disc");
    if (!eval.ok()) {
      std::cerr << eval.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({sxnm::util::FormatDouble(threshold, 1),
                  sxnm::util::FormatDouble(eval->metrics.recall, 4),
                  sxnm::util::FormatDouble(eval->metrics.precision, 4),
                  sxnm::util::FormatDouble(eval->metrics.f1, 4)});
    if (eval->metrics.f1 > best_f) {
      best_f = eval->metrics.f1;
      best_threshold = threshold;
    }
  }
  table.Print(std::cout);
  std::printf("best f with descendants: %.4f at threshold %.1f; "
              "OD-only reference: %.4f  =>  descendants %s\n",
              best_f, best_threshold, od_only_f,
              best_f > od_only_f ? "HELP (paper's conclusion)" : "do not help");
  std::printf("CSV:\n%s", table.ToCsv().c_str());
  return 0;
}
