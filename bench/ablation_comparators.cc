// Ablation A8: SXNM against the related-work comparator algorithms of
// Sec. 2 — DogmatiX-style all-pairs (with and without filter) and
// DELPHI-style top-down — on dirty movie data with person descendants.
// Reports per-candidate recall/precision and comparisons.
//
// The interesting cell is top-down person recall: persons duplicated
// across *different* movies (the M:N case of Sec. 2) are invisible to the
// top-down pruning but found by bottom-up SXNM.
//
// Usage: ablation_comparators [num_movies]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "sxnm/comparators.h"
#include "sxnm/detector.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_movies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1000;

  std::printf("=== Ablation A8: SXNM vs all-pairs (DogmatiX-style) vs "
              "top-down (DELPHI-style) ===\n");
  std::printf("%zu movies with a SHARED actor pool (M:N parent/child, "
              "Sec. 2); candidates person & movie; window 6\n\n",
              num_movies);

  // Shared-cast data: the same real-world actor appears in several
  // movies, so duplicate persons exist across non-duplicate parents.
  sxnm::datagen::SharedCastOptions gen;
  gen.num_movies = num_movies;
  gen.pool_size = num_movies / 4 + 10;
  gen.seed = 20060326;
  auto dirty = sxnm::util::Result<sxnm::xml::Document>(
      sxnm::datagen::GenerateSharedCastMovies(gen));

  auto config = sxnm::datagen::MovieScalabilityConfig(6);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }

  sxnm::util::TablePrinter table({"algorithm", "candidate", "recall",
                                  "precision", "comparisons",
                                  "compare time(s)"});

  auto add_rows = [&](const char* label,
                      const sxnm::core::DetectionResult& result)
      -> sxnm::util::Status {
    for (const char* cand_name : {"person", "movie"}) {
      const sxnm::core::CandidateResult* cand = result.Find(cand_name);
      if (cand == nullptr) continue;
      auto gold = sxnm::eval::GoldClusterSet(
          dirty.value(), config->Find(cand_name)->absolute_path_str);
      if (!gold.ok()) return gold.status();
      auto metrics = sxnm::eval::PairwiseMetrics(gold.value(), cand->clusters);
      table.AddRow({label, cand_name,
                    sxnm::util::FormatDouble(metrics.recall, 4),
                    sxnm::util::FormatDouble(metrics.precision, 4),
                    std::to_string(cand->comparisons),
                    sxnm::util::FormatDouble(result.SlidingWindowSeconds(),
                                             4)});
    }
    return sxnm::util::Status::Ok();
  };

  {
    auto result = sxnm::core::Detector(config.value()).Run(dirty.value());
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    if (auto s = add_rows("SXNM (bottom-up)", result.value()); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  {
    auto result =
        sxnm::core::AllPairsDetector(config.value()).Run(dirty.value());
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    if (auto s = add_rows("All-pairs + filter", result.value()); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  {
    sxnm::core::AllPairsOptions no_filter;
    no_filter.use_filter = false;
    auto result = sxnm::core::AllPairsDetector(config.value(), no_filter)
                      .Run(dirty.value());
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    if (auto s = add_rows("All-pairs (exhaustive)", result.value());
        !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  {
    sxnm::core::TopDownOptions options;
    options.root_window = 6;
    auto result = sxnm::core::TopDownDetector(config.value(), options)
                      .Run(dirty.value());
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    if (auto s = add_rows("Top-down (DELPHI-style)", result.value());
        !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }

  table.Print(std::cout);
  std::printf(
      "Top-down misses person duplicates across non-duplicate movies\n"
      "(the M:N argument of Sec. 2); SXNM approaches the all-pairs recall\n"
      "at a fraction of its comparisons.\n");
  return 0;
}
