// Ablation A1: the relational substrate's algorithm zoo on one dirty
// person table — multi-pass SNM vs DE-SNM vs blocking vs naive all-pairs.
// Charts the comparisons/recall/time trade-off that motivates sorted
// neighborhoods (Sec. 2.2) and the DE-SNM idea from the paper's outlook.
//
// Usage: ablation_relational_baselines [num_records] [window]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/dirty_gen.h"
#include "datagen/vocab.h"
#include "relational/snm.h"
#include "sxnm/key_pattern.h"
#include "text/edit_distance.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/union_find.h"

namespace {

using sxnm::relational::Record;
using sxnm::relational::Table;

std::pair<Table, std::vector<int>> BuildTable(size_t n, uint64_t seed) {
  sxnm::util::Rng rng(seed);
  sxnm::datagen::ErrorModel errors;
  errors.field_error_probability = 0.6;
  errors.max_edits = 2;

  Table table(sxnm::relational::Schema({"name", "city", "year"}));
  std::vector<int> gold;
  static constexpr const char* kCities[] = {"Berlin",  "Hamburg", "Munich",
                                            "Cologne", "Dresden", "Leipzig"};
  int next_gold = 0;
  while (table.NumRecords() < n) {
    std::string name = sxnm::datagen::RandomPersonName(rng);
    std::string city = kCities[rng.NextBelow(std::size(kCities))];
    std::string year = std::to_string(rng.NextInt(1940, 2000));
    int id = next_gold++;
    table.AddRow({name, city, year});
    gold.push_back(id);
    if (rng.NextBool(0.3) && table.NumRecords() < n) {
      table.AddRow({sxnm::datagen::PolluteValue(name, errors, rng),
                    sxnm::datagen::PolluteValue(city, errors, rng), year});
      gold.push_back(id);
    }
  }
  return {std::move(table), std::move(gold)};
}

double PairRecall(const sxnm::relational::SnmResult& result,
                  const std::vector<int>& gold) {
  sxnm::util::UnionFind uf(gold.size());
  for (const auto& [a, b] : result.duplicate_pairs) uf.Union(a, b);
  size_t gold_pairs = 0, hit = 0;
  for (size_t i = 0; i < gold.size(); ++i) {
    for (size_t j = i + 1; j < gold.size(); ++j) {
      if (gold[i] != gold[j]) continue;
      ++gold_pairs;
      if (uf.Connected(i, j)) ++hit;
    }
  }
  return gold_pairs == 0 ? 1.0 : double(hit) / double(gold_pairs);
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;
  size_t window = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;

  std::printf("=== Ablation A1: relational baselines (%zu records, "
              "window %zu) ===\n\n",
              n, window);

  auto [table, gold] = BuildTable(n, 0xABCD);

  auto name_pattern = sxnm::core::KeyPattern::Parse("K1-K5").value();
  auto year_pattern = sxnm::core::KeyPattern::Parse("D3,D4").value();
  std::vector<sxnm::relational::KeyFn> keys = {
      [name_pattern](const Record& r) {
        return name_pattern.Apply(r.field(0)) + r.field(1).substr(0, 2);
      },
      [year_pattern, name_pattern](const Record& r) {
        return year_pattern.Apply(r.field(2)) +
               name_pattern.Apply(r.field(0)).substr(0, 2);
      },
  };

  sxnm::relational::MatchFn match = sxnm::relational::MakeWeightedFieldMatch(
      {0, 1, 2}, {0.6, 0.2, 0.2},
      {sxnm::text::NormalizedEditSimilarity,
       sxnm::text::NormalizedEditSimilarity,
       sxnm::text::NormalizedEditSimilarity},
      0.8);

  sxnm::relational::SnmOptions options;
  options.window_size = window;

  sxnm::util::TablePrinter out({"algorithm", "comparisons", "matched pairs",
                                "recall", "compare time(s)"});
  auto add = [&](const char* label, const sxnm::relational::SnmResult& r) {
    out.AddRow({label, std::to_string(r.stats.comparisons),
                std::to_string(r.duplicate_pairs.size()),
                sxnm::util::FormatDouble(PairRecall(r, gold), 4),
                sxnm::util::FormatDouble(r.stats.timer.Seconds("window"), 4)});
  };

  add("SNM (multi-pass)",
      sxnm::relational::RunSnm(table, keys, match, options));
  add("DE-SNM", sxnm::relational::RunDeSnm(table, keys, match, options));
  add("Blocking (exact key)",
      sxnm::relational::RunBlocking(table, keys, match));
  add("Naive all-pairs", sxnm::relational::RunNaiveAllPairs(table, match));

  out.Print(std::cout);
  std::printf("SNM approaches the naive recall at a small fraction of its "
              "comparisons — the efficiency argument SXNM inherits.\n");
  return 0;
}
