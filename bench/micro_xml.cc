// M2: microbenchmarks for the XML substrate — parse, serialize and XPath
// evaluation throughput on generated movie documents. Key generation
// (Fig. 5's KG phase) is bounded by these.

#include <benchmark/benchmark.h>

#include "datagen/movies.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xml/xpath.h"

namespace {

std::string MovieXml(size_t movies) {
  sxnm::datagen::MovieDataOptions options;
  options.num_movies = movies;
  options.seed = 42;
  return sxnm::xml::WriteDocument(
      sxnm::datagen::GenerateCleanMovies(options));
}

void BM_Parse(benchmark::State& state) {
  std::string text = MovieXml(size_t(state.range(0)));
  for (auto _ : state) {
    auto doc = sxnm::xml::Parse(text);
    benchmark::DoNotOptimize(doc.ok());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(text.size()));
}
BENCHMARK(BM_Parse)->Arg(100)->Arg(1000);

void BM_Write(benchmark::State& state) {
  sxnm::datagen::MovieDataOptions options;
  options.num_movies = size_t(state.range(0));
  options.seed = 42;
  sxnm::xml::Document doc = sxnm::datagen::GenerateCleanMovies(options);
  for (auto _ : state) {
    std::string out = sxnm::xml::WriteDocument(doc);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_Write)->Arg(100)->Arg(1000);

void BM_XPathCandidates(benchmark::State& state) {
  sxnm::datagen::MovieDataOptions options;
  options.num_movies = size_t(state.range(0));
  options.seed = 42;
  sxnm::xml::Document doc = sxnm::datagen::GenerateCleanMovies(options);
  auto path = sxnm::xml::XPath::Parse("movie_database/movies/movie").value();
  for (auto _ : state) {
    auto movies = path.SelectFromRoot(doc);
    benchmark::DoNotOptimize(movies->size());
  }
}
BENCHMARK(BM_XPathCandidates)->Arg(100)->Arg(1000);

void BM_XPathRelativeValues(benchmark::State& state) {
  sxnm::datagen::MovieDataOptions options;
  options.num_movies = 1000;
  options.seed = 42;
  sxnm::xml::Document doc = sxnm::datagen::GenerateCleanMovies(options);
  auto movies = sxnm::xml::XPath::Parse("movie_database/movies/movie")
                    .value()
                    .SelectFromRoot(doc)
                    .value();
  auto title = sxnm::xml::XPath::Parse("title/text()").value();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(title.SelectFirstValue(*movies[i]));
    i = (i + 1) % movies.size();
  }
}
BENCHMARK(BM_XPathRelativeValues);

void BM_DocumentClone(benchmark::State& state) {
  sxnm::datagen::MovieDataOptions options;
  options.num_movies = size_t(state.range(0));
  options.seed = 42;
  sxnm::xml::Document doc = sxnm::datagen::GenerateCleanMovies(options);
  for (auto _ : state) {
    sxnm::xml::Document copy = doc.Clone();
    benchmark::DoNotOptimize(copy.element_count());
  }
}
BENCHMARK(BM_DocumentClone)->Arg(100)->Arg(1000);

}  // namespace
