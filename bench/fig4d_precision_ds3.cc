// Figure 4(d): precision (and number of detected duplicates) vs window
// size on Data set 3 — a large FreeDB-shaped catalog (the paper uses
// 10,000 discs) with series discs, various-artists samplers and
// unreadable entries as false-positive sources, keys per Tab. 3(c).
//
// Expected shape (paper): Key 2 (disc-id-led) has the highest precision
// but detects few duplicates (48 at w=5); Key 1 (title-led) has lower
// precision but detects far more (289 at w=5); multi-pass has the worst
// precision because the false positives of both keys accumulate.
//
// Usage: fig4d_precision_ds3 [num_discs] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>

#include "datagen/freedb.h"
#include "eval/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_discs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 13;

  std::printf("=== Figure 4(d): Data set 3 precision vs window size ===\n");
  std::printf("synthetic FreeDB catalog: %zu discs (+3%% true duplicates; "
              "series/VA/unreadable confusers), keys per Tab. 3(c)\n\n",
              num_discs);

  auto doc = sxnm::datagen::GenerateDataSet3(num_discs, seed, 0.03);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }
  auto config = sxnm::datagen::Ds3Config(/*window=*/5);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  // The paper's Fig. 4(d) evaluates the disc keys alone (no descendant
  // veto): use OD-only so the confusers show up as false positives.
  config->Find("disc")->classifier.mode = sxnm::core::CombineMode::kOdOnly;

  std::vector<size_t> windows = {2, 3, 5, 7, 10};
  auto points =
      sxnm::eval::WindowSweep(config.value(), doc.value(), "disc", windows);
  if (!points.ok()) {
    std::cerr << points.status().ToString() << "\n";
    return 1;
  }

  std::map<size_t, std::map<std::string, const sxnm::eval::SweepPoint*>> grid;
  for (const auto& point : points.value()) {
    grid[point.window][point.label] = &point;
  }

  sxnm::util::TablePrinter table(
      {"window", "prec(Key 1)", "dups(Key 1)", "prec(Key 2)", "dups(Key 2)",
       "prec(MP)", "dups(MP)"});
  for (size_t w : windows) {
    const auto& row = grid[w];
    auto prec = [&](const char* label) {
      return sxnm::util::FormatDouble(
          row.at(label)->eval.metrics.precision, 4);
    };
    auto dups = [&](const char* label) {
      return std::to_string(row.at(label)->eval.detected_pair_count);
    };
    table.AddRow({std::to_string(w), prec("Key 1"), dups("Key 1"),
                  prec("Key 2"), dups("Key 2"), prec("MP"), dups("MP")});
  }
  table.Print(std::cout);

  std::printf("CSV:\n%s", table.ToCsv().c_str());
  std::printf(
      "\nNote: 'dups' counts accepted window pairs before closure, the\n"
      "paper's 'detected duplicates'. Key 2 (disc-id) = precise but few;\n"
      "Key 1 (title) = more finds, lower precision; MP = most finds,\n"
      "lowest precision (false positives accumulate).\n");
  return 0;
}
