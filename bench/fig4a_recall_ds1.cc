// Figure 4(a): recall vs window size on Data set 1 (artificial movies),
// single-pass with each of the three keys of Tab. 3(a) and multi-pass.
//
// Expected shape (paper): recall increases with window size for every
// key; Key 1 (title-led) is best and close to MP; Key 2 (year-led) is
// worst because missing/erroneous years sort duplicates far apart.
//
// Usage: fig4a_recall_ds1 [num_movies] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_movies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20060326;

  std::printf("=== Figure 4(a): Data set 1 recall vs window size ===\n");
  std::printf("artificial movies: %zu clean (+40%% dirty duplicates), "
              "keys per Tab. 3(a)\n\n",
              num_movies);

  sxnm::datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = seed;
  sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(gen);
  auto dirty =
      sxnm::datagen::MakeDirty(clean, sxnm::datagen::DataSet1DirtyPreset(seed + 1));
  if (!dirty.ok()) {
    std::cerr << dirty.status().ToString() << "\n";
    return 1;
  }

  auto config = sxnm::datagen::MovieConfig(/*window=*/10);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }

  std::vector<size_t> windows = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
  auto points = sxnm::eval::WindowSweep(config.value(), dirty.value(),
                                        "movie", windows);
  if (!points.ok()) {
    std::cerr << points.status().ToString() << "\n";
    return 1;
  }

  // Pivot: window x label -> recall.
  std::map<size_t, std::map<std::string, double>> recall;
  for (const auto& point : points.value()) {
    recall[point.window][point.label] = point.eval.metrics.recall;
  }

  sxnm::util::TablePrinter table(
      {"window", "recall(SP Key 1)", "recall(SP Key 2)", "recall(SP Key 3)",
       "recall(MP)"});
  for (size_t w : windows) {
    table.AddRow({std::to_string(w),
                  sxnm::util::FormatDouble(recall[w]["Key 1"], 4),
                  sxnm::util::FormatDouble(recall[w]["Key 2"], 4),
                  sxnm::util::FormatDouble(recall[w]["Key 3"], 4),
                  sxnm::util::FormatDouble(recall[w]["MP"], 4)});
  }
  table.Print(std::cout);

  std::printf("CSV:\n%s", table.ToCsv().c_str());
  return 0;
}
