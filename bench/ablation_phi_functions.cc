// Ablation A3: choice of the φ^OD similarity function (Def. 2 allows any)
// on Data set 2. Compares normalized edit distance (the paper's default),
// transposition-aware OSA, Jaro-Winkler, trigram Dice and word Jaccard on
// identical data/keys/thresholds.
//
// Usage: ablation_phi_functions [num_discs]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/freedb.h"
#include "eval/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_discs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;

  std::printf("=== Ablation A3: phi^OD function choice (Data set 2, "
              "%zu+%zu discs, window 4, OD threshold 0.65) ===\n\n",
              num_discs, num_discs);

  auto doc = sxnm::datagen::GenerateDataSet2(num_discs, 7);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }

  sxnm::util::TablePrinter table(
      {"phi", "recall", "precision", "f_measure", "SW time(s)"});

  for (const char* phi :
       {"edit", "osa", "jaro_winkler", "qgram3", "word_jaccard"}) {
    auto config = sxnm::datagen::CdConfig(4);
    if (!config.ok()) {
      std::cerr << config.status().ToString() << "\n";
      return 1;
    }
    sxnm::core::CandidateConfig* disc = config->Find("disc");
    disc->classifier.mode = sxnm::core::CombineMode::kOdOnly;
    for (sxnm::core::OdEntry& od : disc->od) {
      od.similarity_name = phi;
      od.similarity = sxnm::text::GetSimilarity(phi).value();
    }
    auto eval =
        sxnm::eval::RunAndEvaluate(config.value(), doc.value(), "disc");
    if (!eval.ok()) {
      std::cerr << eval.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({phi, sxnm::util::FormatDouble(eval->metrics.recall, 4),
                  sxnm::util::FormatDouble(eval->metrics.precision, 4),
                  sxnm::util::FormatDouble(eval->metrics.f1, 4),
                  sxnm::util::FormatDouble(eval->sw_seconds, 4)});
  }
  table.Print(std::cout);
  return 0;
}
