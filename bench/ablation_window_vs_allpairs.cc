// Ablation A2: SXNM's window against exhaustive comparison on Data set 1.
// For each window size, reports comparisons, recall, precision and
// sliding-window time, with the final row the all-pairs ceiling
// (window = n). Shows where the window saturates: past a moderate size,
// extra comparisons buy almost no recall.
//
// Usage: ablation_window_vs_allpairs [num_movies]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_movies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;

  std::printf("=== Ablation A2: window size vs all-pairs (Data set 1, "
              "%zu movies, Key 1 single-pass) ===\n\n",
              num_movies);

  sxnm::datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = 321;
  sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(gen);
  auto dirty =
      sxnm::datagen::MakeDirty(clean, sxnm::datagen::DataSet1DirtyPreset(11));
  if (!dirty.ok()) {
    std::cerr << dirty.status().ToString() << "\n";
    return 1;
  }

  auto base = sxnm::datagen::MovieConfig(2);
  if (!base.ok()) {
    std::cerr << base.status().ToString() << "\n";
    return 1;
  }
  auto single = sxnm::eval::WithSingleKey(base.value(), "movie", 0);
  if (!single.ok()) {
    std::cerr << single.status().ToString() << "\n";
    return 1;
  }

  sxnm::util::TablePrinter table({"window", "comparisons", "recall",
                                  "precision", "SW time(s)"});
  std::vector<size_t> windows = {2, 4, 8, 16, 32, 64, 128};
  windows.push_back(1 << 20);  // effectively all-pairs

  for (size_t w : windows) {
    auto config = sxnm::eval::WithWindowFor(single.value(), "movie", w);
    auto eval =
        sxnm::eval::RunAndEvaluate(config.value(), dirty.value(), "movie");
    if (!eval.ok()) {
      std::cerr << eval.status().ToString() << "\n";
      return 1;
    }
    std::string label =
        w >= eval->instances ? "all-pairs" : std::to_string(w);
    table.AddRow({label, std::to_string(eval->comparisons),
                  sxnm::util::FormatDouble(eval->metrics.recall, 4),
                  sxnm::util::FormatDouble(eval->metrics.precision, 4),
                  sxnm::util::FormatDouble(eval->sw_seconds, 4)});
  }
  table.Print(std::cout);
  return 0;
}
