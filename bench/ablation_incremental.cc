// Ablation A7: incremental SNM vs re-running batch SNM from scratch on
// every data packet (Sec. 2.2's incremental variant). Reports cumulative
// comparisons after each packet for both strategies, plus final recall.
//
// Usage: ablation_incremental [num_records] [num_batches]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "datagen/dirty_gen.h"
#include "datagen/vocab.h"
#include "relational/incremental_snm.h"
#include "text/edit_distance.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/union_find.h"

namespace {

using sxnm::relational::Record;

std::pair<std::vector<Record>, std::vector<int>> MakeRecords(size_t n,
                                                             uint64_t seed) {
  sxnm::util::Rng rng(seed);
  sxnm::datagen::ErrorModel errors;
  errors.field_error_probability = 0.6;
  std::vector<Record> records;
  std::vector<int> gold;
  int next = 0;
  while (records.size() < n) {
    std::string name = sxnm::datagen::RandomPersonName(rng);
    int id = next++;
    records.push_back({{name}});
    gold.push_back(id);
    if (rng.NextBool(0.3) && records.size() < n) {
      records.push_back({{sxnm::datagen::PolluteValue(name, errors, rng)}});
      gold.push_back(id);
    }
  }
  // Shuffle so duplicates arrive in different packets.
  std::vector<size_t> perm(records.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.Shuffle(perm);
  std::vector<Record> shuffled;
  std::vector<int> shuffled_gold;
  for (size_t i : perm) {
    shuffled.push_back(records[i]);
    shuffled_gold.push_back(gold[i]);
  }
  return {std::move(shuffled), std::move(shuffled_gold)};
}

double Recall(const std::vector<sxnm::relational::RecordPair>& pairs,
              const std::vector<int>& gold, size_t n) {
  sxnm::util::UnionFind uf(n);
  for (const auto& [a, b] : pairs) uf.Union(a, b);
  size_t gold_pairs = 0, hit = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (gold[i] != gold[j]) continue;
      ++gold_pairs;
      if (uf.Connected(i, j)) ++hit;
    }
  }
  return gold_pairs == 0 ? 1.0 : double(hit) / double(gold_pairs);
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
  size_t num_batches = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;

  std::printf("=== Ablation A7: incremental SNM vs batch re-runs "
              "(%zu records in %zu packets, window 10) ===\n\n",
              n, num_batches);

  auto [records, gold] = MakeRecords(n, 0xFEED);

  sxnm::relational::KeyFn key = [](const Record& r) { return r.field(0); };
  sxnm::relational::MatchFn match = [](const Record& a, const Record& b) {
    return sxnm::text::NormalizedEditSimilarity(a.field(0), b.field(0)) >=
           0.8;
  };
  sxnm::relational::SnmOptions options;
  options.window_size = 10;

  sxnm::relational::IncrementalSnm incremental(
      sxnm::relational::Schema({"name"}), {key}, match, options);
  sxnm::relational::Table accumulated(sxnm::relational::Schema({"name"}));

  sxnm::util::TablePrinter table({"packet", "records so far",
                                  "incremental cmp (cumulative)",
                                  "batch-rerun cmp (this rerun)"});
  size_t batch_size = (records.size() + num_batches - 1) / num_batches;
  size_t rerun_total = 0;
  for (size_t b = 0; b < num_batches; ++b) {
    size_t start = b * batch_size;
    size_t end = std::min(records.size(), start + batch_size);
    std::vector<Record> packet(records.begin() + long(start),
                               records.begin() + long(end));
    incremental.AddBatch(packet);
    for (size_t i = start; i < end; ++i) accumulated.AddRecord(records[i]);

    auto rerun = sxnm::relational::RunSnm(accumulated, {key}, match, options);
    rerun_total += rerun.stats.comparisons;
    table.AddRow({std::to_string(b + 1),
                  std::to_string(accumulated.NumRecords()),
                  std::to_string(incremental.Snapshot().stats.comparisons),
                  std::to_string(rerun.stats.comparisons)});
  }
  table.Print(std::cout);

  auto final_inc = incremental.Snapshot();
  auto final_batch =
      sxnm::relational::RunSnm(accumulated, {key}, match, options);
  std::printf("total comparisons: incremental=%zu, sum of re-runs=%zu\n",
              final_inc.stats.comparisons, rerun_total);
  std::printf("final recall:      incremental=%.4f, single batch=%.4f\n",
              Recall(final_inc.duplicate_pairs, gold, records.size()),
              Recall(final_batch.duplicate_pairs, gold, records.size()));
  std::printf("Incremental SNM matches (or exceeds) batch recall while "
              "avoiding quadratic re-run cost over update packets.\n");
  return 0;
}
