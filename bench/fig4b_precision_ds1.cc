// Figure 4(b): precision vs window size on Data set 1 (artificial
// movies), single-pass per key and multi-pass.
//
// Expected shape (paper): Key 1 / MP precision dips for small windows
// (severely polluted titles whose keys sort far apart are missed, so the
// few pairs found include relatively more FPs) and converges around 0.95
// for larger windows; MP is the lowest of the curves (more comparisons,
// more false positives) but stays high.
//
// Usage: fig4b_precision_ds1 [num_movies] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "eval/experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  size_t num_movies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20060326;

  std::printf("=== Figure 4(b): Data set 1 precision vs window size ===\n");
  std::printf("artificial movies: %zu clean (+40%% dirty duplicates)\n\n",
              num_movies);

  sxnm::datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = seed;
  sxnm::xml::Document clean = sxnm::datagen::GenerateCleanMovies(gen);
  auto dirty = sxnm::datagen::MakeDirty(
      clean, sxnm::datagen::DataSet1DirtyPreset(seed + 1));
  if (!dirty.ok()) {
    std::cerr << dirty.status().ToString() << "\n";
    return 1;
  }

  auto config = sxnm::datagen::MovieConfig(/*window=*/10);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }

  std::vector<size_t> windows = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
  auto points = sxnm::eval::WindowSweep(config.value(), dirty.value(),
                                        "movie", windows);
  if (!points.ok()) {
    std::cerr << points.status().ToString() << "\n";
    return 1;
  }

  std::map<size_t, std::map<std::string, double>> precision;
  for (const auto& point : points.value()) {
    precision[point.window][point.label] = point.eval.metrics.precision;
  }

  sxnm::util::TablePrinter table(
      {"window", "prec(SP Key 1)", "prec(SP Key 2)", "prec(SP Key 3)",
       "prec(MP)"});
  for (size_t w : windows) {
    table.AddRow({std::to_string(w),
                  sxnm::util::FormatDouble(precision[w]["Key 1"], 4),
                  sxnm::util::FormatDouble(precision[w]["Key 2"], 4),
                  sxnm::util::FormatDouble(precision[w]["Key 3"], 4),
                  sxnm::util::FormatDouble(precision[w]["MP"], 4)});
  }
  table.Print(std::cout);

  std::printf("CSV:\n%s", table.ToCsv().c_str());
  return 0;
}
